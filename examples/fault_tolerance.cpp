// Fault tolerance walkthrough: retries, backend failover, and startup
// timeouts (§3.2.1-3.2.2 of the paper).
//
// Scenario: a hybrid pilot runs an ensemble on Flux while Dragon handles
// function tasks. Mid-run, one Flux broker crashes; the agent fails the
// affected tasks over to the surviving backends and finishes the workload.
// A second pilot demonstrates the Dragon startup timeout.
//
//   $ ./fault_tolerance
#include <iostream>

#include "core/flotilla.hpp"
#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"

int main() {
  using namespace flotilla;

  core::Session session(platform::frontier_spec(), 24, 3);
  core::PilotManager pmgr(session);

  // ---- scenario 1: broker crash + failover ------------------------------
  auto& pilot = pmgr.submit({
      .nodes = 16,
      .backends = {{.type = "flux", .partitions = 2, .nodes = 8},
                   {.type = "dragon", .nodes = 8}},
  });
  pilot.launch([](bool ok, const std::string& error) {
    if (!ok) {
      std::cerr << "pilot failed: " << error << "\n";
      std::exit(1);
    }
  });
  session.run(120.0);

  core::TaskManager tmgr(session, pilot.agent());
  int done = 0, failed = 0, retried_tasks = 0;
  tmgr.on_complete([&](const core::Task& task) {
    if (task.state() == core::TaskState::kDone) {
      ++done;
      if (task.attempts() > 1) ++retried_tasks;
    } else {
      ++failed;
    }
  });

  for (int i = 0; i < 64; ++i) {
    core::TaskDescription task;
    task.name = "member." + std::to_string(i);
    task.demand.cores = 7;
    task.duration = 600.0;
    task.max_retries = 3;  // the paper's "basic fault tolerance via retries"
    tmgr.submit(std::move(task));
  }

  session.run(session.now() + 300.0);  // ensemble is running on flux
  auto* fluxb =
      dynamic_cast<flux::FluxBackend*>(pilot.agent().backend("flux"));
  std::cout << "[t=" << session.now() << "s] crashing flux instance 0 ("
            << fluxb->instance(0).running_jobs() << " jobs on it)\n";
  fluxb->crash_instance(0, "node hardware fault");
  session.run();

  std::cout << "ensemble finished: " << done << " done, " << failed
            << " failed, " << retried_tasks
            << " tasks recovered via retry/failover\n"
            << "flux backend still healthy (1 of 2 instances): "
            << std::boolalpha << fluxb->healthy() << "\n";

  // ---- scenario 2: hung Dragon bootstrap + startup timeout ---------------
  auto& pilot2 = pmgr.submit({.nodes = 8, .backends = {{"dragon"}}});
  bool ok2 = true;
  std::string error2;
  pilot2.launch([&](bool ok, const std::string& error) {
    ok2 = ok;
    error2 = error;
  });
  auto* dragonb = dynamic_cast<dragon::DragonBackend*>(
      pilot2.agent().backend("dragon"));
  dragonb->set_fail_bootstrap();  // the runtime hangs during startup
  session.run();
  std::cout << "\nsecond pilot (hung dragon runtime): launch ok=" << ok2
            << ", error=\"" << error2 << "\"\n"
            << "RP's startup timeout prevented a stall (§3.2.2)\n";

  return (done == 64 && failed == 0 && !ok2) ? 0 : 1;
}
