// Local real execution: run an actual high-throughput batch of host
// processes through the bounded process pool — the native, laptop-scale
// seed of the execution model the simulation backends study at Frontier
// scale.
//
//   $ ./local_execution
#include <atomic>
#include <chrono>
#include <iostream>

#include "local/process_pool.hpp"

int main() {
  using namespace flotilla;

  local::ProcessPool pool(/*max_concurrent=*/4);
  std::atomic<int> ok{0}, failed{0};

  const auto start = std::chrono::steady_clock::now();
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    // A mix of successful and failing "science": every 8th task exits 1.
    if (i % 8 == 7) {
      pool.spawn({"/bin/sh", "-c", "exit 1"},
                 [&](const local::ProcessResult& r) {
                   r.success() ? ++ok : ++failed;
                 });
    } else {
      pool.spawn({"/bin/true"}, [&](const local::ProcessResult& r) {
        r.success() ? ++ok : ++failed;
      });
    }
  }
  pool.wait_all();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "executed " << pool.completed() << " real processes in "
            << wall << " s (" << pool.completed() / wall << " tasks/s, "
            << "4 concurrent slots)\n"
            << "  ok: " << ok << ", failed: " << failed << "\n";
  return (ok == 56 && failed == 8) ? 0 : 1;
}
