// Drug-discovery campaign: a scaled-down IMPECCABLE run (§2 of the paper).
//
// Builds the six-workflow campaign (docking -> surrogate training ->
// inference -> physics scoring / ESMACS / REINVENT with the learning
// feedback loop) on a 64-node pilot with Flux, runs three iterations, and
// reports per-stage progress plus end-of-run metrics.
//
//   $ ./drug_discovery
#include <iostream>

#include "core/flotilla.hpp"
#include "workloads/impeccable.hpp"

int main() {
  using namespace flotilla;

  core::Session session(platform::frontier_spec(), 256, 7);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({
      .nodes = 256,
      .backends = {{.type = "flux", .partitions = 2}},
  });
  pilot.launch([](bool ok, const std::string& error) {
    if (!ok) {
      std::cerr << "pilot failed: " << error << "\n";
      std::exit(1);
    }
  });
  session.run(120.0);

  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow campaign(tmgr);

  auto plan = workloads::impeccable_plan(256);
  plan.iterations = 3;       // a short demo campaign
  plan.task_duration = 60.0; // compress the 180 s dummy payloads
  workloads::build_impeccable(campaign, plan);

  std::cout << "campaign: " << plan.total_tasks() << " tasks across "
            << campaign.stages_total() << " stages, " << plan.iterations
            << " iterations\n";

  campaign.on_stage_complete([&](const std::string& stage) {
    std::cout << "  [t=" << static_cast<long>(session.now())
              << "s] stage complete: " << stage << "\n";
  });
  bool finished = false;
  campaign.on_drained([&] { finished = true; });
  campaign.start();
  session.run();

  const auto& metrics = pilot.agent().profiler().metrics();
  std::cout << "\ncampaign " << (finished ? "finished" : "INCOMPLETE")
            << " in " << metrics.makespan() << " virtual seconds\n"
            << "  CPU utilization: "
            << 100.0 * metrics.core_utilization(pilot.total_cores())
            << " %\n"
            << "  GPU utilization: "
            << 100.0 * metrics.gpu_utilization(pilot.total_gpus()) << " %\n"
            << "  failed tasks:    " << metrics.tasks_failed() << "\n";
  return finished ? 0 : 1;
}
