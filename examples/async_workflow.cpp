// Async workflow: the RADICAL-AsyncFlow-style futures API (§5 cites RAF as
// RP's asynchronous workflow layer).
//
// A simulation/analysis race: three simulation replicas start concurrently;
// the first to finish triggers analysis immediately (when_any), while a
// final archive step waits for the whole ensemble (when_all) — exactly the
// "asynchronous ... without blocking synchronization" control flow of §2.
//
//   $ ./async_workflow
#include <iostream>

#include "core/flotilla.hpp"

int main() {
  using namespace flotilla;

  core::Session session(platform::frontier_spec(), 8, 99);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit(
      {.nodes = 8, .backends = {{.type = "flux", .partitions = 2}}});
  pilot.launch([](bool ok, const std::string& error) {
    if (!ok) {
      std::cerr << "pilot failed: " << error << "\n";
      std::exit(1);
    }
  });
  session.run(120.0);

  core::TaskManager tmgr(session, pilot.agent());
  core::AsyncFlow flow(tmgr);

  auto replica = [&](double duration) {
    core::TaskDescription desc;
    desc.demand.cores = 56;
    desc.duration = duration;
    return flow.submit(std::move(desc));
  };

  // Three replicas with different (virtual) runtimes.
  std::vector<core::TaskFuture> ensemble{replica(300.0), replica(180.0),
                                         replica(240.0)};

  // Early analysis on whichever replica lands first.
  bool early_analysis_done = false;
  flow.when_any(ensemble, [&](const core::Task& winner) {
    std::cout << "[t=" << session.now() << "s] first replica done: "
              << winner.uid() << " -> starting early analysis\n";
    core::TaskDescription analysis;
    analysis.demand.cores = 8;
    analysis.duration = 60.0;
    flow.submit(std::move(analysis)).then([&](const core::Task&) {
      early_analysis_done = true;
      std::cout << "[t=" << session.now() << "s] early analysis done\n";
    });
  });

  // Archive once the full ensemble (and nothing else) has landed.
  bool archived = false;
  flow.when_all(ensemble, [&] {
    std::cout << "[t=" << session.now() << "s] ensemble complete -> "
              << "archiving\n";
    core::TaskDescription archive;
    archive.demand.cores = 1;
    archive.duration = 30.0;
    archive.output_mb = 4000.0;  // staged out through the shared FS
    flow.submit(std::move(archive)).then([&](const core::Task& task) {
      archived = task.state() == core::TaskState::kDone;
      std::cout << "[t=" << session.now() << "s] archive "
                << to_string(task.state()) << "\n";
    });
  });

  session.run();
  std::cout << (early_analysis_done && archived ? "async workflow complete"
                                                : "INCOMPLETE")
            << " at t=" << session.now() << "s\n";
  return (early_analysis_done && archived) ? 0 : 1;
}
