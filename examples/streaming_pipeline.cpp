// Streaming pipeline: the §2 "intermediate coupling" pattern, for real.
//
// A generative-design loop in miniature: candidate molecules stream
// through generate -> featurize -> score -> filter stages running on warm
// worker threads with bounded in-memory queues (Dragon's execution model,
// natively in C++). The sink accumulates the accepted candidates.
//
//   $ ./streaming_pipeline
#include <atomic>
#include <cmath>
#include <iostream>
#include <mutex>
#include <vector>

#include "dragon/pipeline.hpp"
#include "sim/random.hpp"

namespace {

struct Candidate {
  int id = 0;
  double features[4] = {};
  double score = 0.0;
};

}  // namespace

int main() {
  using namespace flotilla;

  std::mutex sink_mutex;
  std::vector<Candidate> accepted;

  dragon::Pipeline<Candidate> pipeline(/*queue_capacity=*/128);
  pipeline
      .add_stage("featurize", 2,
                 [](Candidate c) -> std::optional<Candidate> {
                   for (int f = 0; f < 4; ++f) {
                     c.features[f] =
                         std::sin(c.id * (f + 1) * 0.137) * std::sqrt(f + 1.0);
                   }
                   return c;
                 })
      .add_stage("score", 3,
                 [](Candidate c) -> std::optional<Candidate> {
                   double s = 0.0;
                   for (int iter = 0; iter < 200; ++iter) {
                     for (const double f : c.features) {
                       s += std::cos(s + f) * 0.01;
                     }
                   }
                   c.score = s;
                   return c;
                 })
      .add_stage("filter", 1,
                 [](Candidate c) -> std::optional<Candidate> {
                   // Accept only candidates whose first feature is
                   // favourable (roughly half of the stream).
                   if (c.features[0] < 0.0) return std::nullopt;
                   return c;
                 })
      .set_sink([&](Candidate c) {
        std::lock_guard lock(sink_mutex);
        accepted.push_back(c);
      });

  pipeline.start();
  constexpr int kCandidates = 5000;
  for (int i = 0; i < kCandidates; ++i) {
    pipeline.feed(Candidate{i, {}, 0.0});  // backpressure when queues fill
  }
  pipeline.finish();

  std::cout << "streamed " << kCandidates << " candidates: featurized "
            << pipeline.processed("featurize") << ", scored "
            << pipeline.processed("score") << ", accepted "
            << accepted.size() << " (dropped "
            << pipeline.dropped("filter") << " at the filter)\n";

  const bool consistent =
      pipeline.processed("featurize") == kCandidates &&
      pipeline.processed("score") == kCandidates &&
      accepted.size() + pipeline.dropped("filter") ==
          static_cast<std::size_t>(kCandidates);
  std::cout << (consistent ? "pipeline accounting consistent\n"
                           : "ACCOUNTING MISMATCH\n");
  return consistent ? 0 : 1;
}
