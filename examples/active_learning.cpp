// Active-learning loop: the emerging pattern §2 says IMPECCABLE
// anticipates — "reinforcement learning agents, active learning loops ...
// require persistent services (e.g., learners, replay buffers), dynamic
// spawning of short-lived workers, and rapid data exchange".
//
// A persistent learner service runs on GPUs for the whole campaign while
// rounds of simulation workers stream results to it; after each round the
// (simulated) acquisition function decides how many samples the next round
// needs — runtime-adaptive control flow on top of the workflow engine.
//
//   $ ./active_learning
#include <iostream>

#include "core/flotilla.hpp"
#include "core/service.hpp"
#include "util/strfmt.hpp"

int main() {
  using namespace flotilla;

  core::Session session(platform::frontier_spec(), 16, 123);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({
      .nodes = 16,
      .backends = {{.type = "flux", .partitions = 2, .nodes = 8},
                   {.type = "dragon", .nodes = 8}},
  });
  pilot.launch([](bool ok, const std::string& error) {
    if (!ok) {
      std::cerr << "pilot failed: " << error << "\n";
      std::exit(1);
    }
  });
  session.run(120.0);

  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow loop(tmgr);
  core::ServiceManager services(session, tmgr);

  // Persistent learner: holds GPUs for the whole campaign.
  core::ServiceDescription learner;
  learner.name = "learner";
  learner.demand.cores = 8;
  learner.demand.gpus = 8;
  learner.lifetime = 4000.0;
  learner.startup_delay = 12.0;  // model load
  services.start(learner);

  constexpr int kRounds = 5;
  int round = 0;
  int next_round_size = 16;  // acquisition decision, updated per round

  auto sampling_round = [&](int size) {
    std::vector<core::TaskDescription> workers;
    for (int i = 0; i < size; ++i) {
      core::TaskDescription sim_task;
      sim_task.name = util::cat("sample.", round, ".", i);
      sim_task.demand.cores = 7;
      sim_task.duration = 120.0;
      sim_task.output_mb = 200.0;  // trajectory shipped to the learner
      workers.push_back(std::move(sim_task));
    }
    loop.add_stage(util::cat("round.", round), std::move(workers),
                   round == 0 ? std::vector<std::string>{}
                              : std::vector<std::string>{
                                    util::cat("round.", round - 1)});
  };

  loop.on_stage_complete([&](const std::string& stage) {
    std::cout << "  [t=" << static_cast<long>(session.now()) << "s] "
              << stage << " complete\n";
    if (++round < kRounds) {
      // Acquisition function: uncertainty shrinks, later rounds need
      // fewer samples (adaptive task counts, §4.2).
      next_round_size = std::max(4, next_round_size - 3);
      sampling_round(next_round_size);
    }
  });

  // The loop starts only once the learner endpoint is up.
  services.when_ready("learner", [&] {
    std::cout << "learner ready at t=" << session.now() << "s\n";
    sampling_round(next_round_size);
    loop.start();
  });
  session.run();

  const auto& metrics = pilot.agent().profiler().metrics();
  std::cout << "campaign: " << kRounds << " adaptive rounds, "
            << metrics.tasks_done() << " tasks done, makespan "
            << metrics.makespan() << " s\n";
  return round == kRounds ? 0 : 1;
}
