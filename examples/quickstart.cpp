// Quickstart: the smallest complete Flotilla program.
//
// Brings up a 4-node pilot with a single Flux instance, runs 200 synthetic
// single-core tasks through the full RP-style middleware stack, and prints
// throughput/utilization metrics.
//
//   $ ./quickstart
#include <iostream>

#include "core/flotilla.hpp"

int main() {
  using namespace flotilla;

  // 1. A session owns the simulated platform (Frontier profile: 56
  //    schedulable cores + 8 GPUs per node) and the virtual clock.
  core::Session session(platform::frontier_spec(), /*num_nodes=*/4,
                        /*seed=*/42);

  // 2. Submit a pilot: 4 nodes, one Flux instance as the task backend.
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({
      .nodes = 4,
      .backends = {{.type = "flux", .partitions = 1}},
  });
  pilot.launch([](bool ok, const std::string& error) {
    if (!ok) {
      std::cerr << "pilot failed to launch: " << error << "\n";
      std::exit(1);
    }
  });
  session.run(120.0);  // let the backend bootstrap (~20 s of virtual time)
  std::cout << "pilot " << pilot.uid() << " is "
            << to_string(pilot.state()) << " on " << pilot.allocation().count
            << " nodes (" << pilot.total_cores() << " cores)\n";

  // 3. Describe and submit tasks.
  core::TaskManager tmgr(session, pilot.agent());
  int done = 0;
  tmgr.on_complete([&](const core::Task& task) {
    if (task.state() == core::TaskState::kDone) ++done;
  });
  for (int i = 0; i < 200; ++i) {
    core::TaskDescription task;
    task.name = "hello." + std::to_string(i);
    task.demand.cores = 1;
    task.duration = 30.0;  // synthetic 30 s payload
    tmgr.submit(std::move(task));
  }

  // 4. Run the virtual clock until everything drains.
  session.run();

  const auto& metrics = pilot.agent().profiler().metrics();
  std::cout << done << "/200 tasks done at t=" << session.now() << " s\n"
            << "  peak throughput:  " << metrics.peak_throughput()
            << " tasks/s\n"
            << "  peak concurrency: " << metrics.peak_concurrency()
            << " tasks\n"
            << "  core utilization: "
            << 100.0 * metrics.core_utilization(pilot.total_cores())
            << " %\n";
  return done == 200 ? 0 : 1;
}
