// Hybrid AI-HPC pipeline: simulated executables on Flux *plus real C++
// function tasks* on Dragon's threaded function executor.
//
// The paper's headline capability is running MPI-style executables and
// in-memory function tasks side by side (§3.1). This example shows both
// halves of that story:
//
//  1. the simulated control plane: a flux+dragon pilot routes executable
//     tasks to Flux and function tasks to Dragon by modality;
//  2. the real data plane: Dragon's native mode executes actual C++
//     callables (a toy "surrogate inference" over molecule batches) on
//     warm worker threads, with results flowing back over a
//     shared-memory channel — Dragon's Shmem Queue, in-process.
//
//   $ ./hybrid_ai_hpc
#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "core/flotilla.hpp"
#include "dragon/function_executor.hpp"
#include "dragon/shmem_channel.hpp"

namespace {

// Toy surrogate model: score a "molecule" by hashing its id through a
// few transcendental ops (stands in for SST inference).
double surrogate_score(int molecule) {
  double x = molecule * 0.7071;
  for (int i = 0; i < 1000; ++i) x = std::sin(x) + std::cos(x * 0.5) + 1.1;
  return x;
}

}  // namespace

int main() {
  using namespace flotilla;

  // ---- real function execution on warm Dragon workers -------------------
  dragon::FunctionExecutor executor(/*workers=*/4);
  dragon::ShmemChannel<std::pair<int, double>> results(256);

  constexpr int kMolecules = 2000;
  std::vector<std::future<void>> futures;
  futures.reserve(kMolecules);
  for (int m = 0; m < kMolecules; ++m) {
    futures.push_back(executor.submit([m, &results] {
      const double score = surrogate_score(m);
      while (!results.try_send({m, score})) {
        std::this_thread::yield();  // channel full: backpressure
      }
    }));
  }

  // Consumer: pick the best-scoring molecules as they stream in.
  int received = 0, best_molecule = -1;
  double best = -1e300;
  while (received < kMolecules) {
    if (auto item = results.try_receive()) {
      ++received;
      if (item->second > best) {
        best = item->second;
        best_molecule = item->first;
      }
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& f : futures) f.get();
  std::cout << "surrogate screened " << received << " molecules on "
            << executor.worker_count() << " warm workers; best = #"
            << best_molecule << " (score " << best << ")\n";

  // ---- simulated hybrid pilot: executables + functions -------------------
  core::Session session(platform::frontier_spec(), 16, 11);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({
      .nodes = 16,
      .backends = {{.type = "flux", .partitions = 2, .nodes = 8},
                   {.type = "dragon", .nodes = 8}},
  });
  pilot.launch([](bool ok, const std::string& error) {
    if (!ok) {
      std::cerr << "pilot failed: " << error << "\n";
      std::exit(1);
    }
  });
  session.run(120.0);

  core::TaskManager tmgr(session, pilot.agent());
  int on_flux = 0, on_dragon = 0;
  tmgr.on_complete([&](const core::Task& task) {
    task.backend() == "flux" ? ++on_flux : ++on_dragon;
  });

  // An ensemble of MPI-style simulations (executables, multi-node)...
  for (int i = 0; i < 8; ++i) {
    core::TaskDescription sim;
    sim.name = "md_ensemble." + std::to_string(i);
    sim.demand.cores = 112;
    sim.demand.cores_per_node = 56;  // tightly coupled across 2 nodes
    sim.demand.gpus = 16;
    sim.duration = 120.0;
    tmgr.submit(std::move(sim));
  }
  // ...interleaved with bursts of surrogate-inference function tasks.
  for (int i = 0; i < 400; ++i) {
    core::TaskDescription infer;
    infer.name = "inference." + std::to_string(i);
    infer.modality = platform::TaskModality::kFunction;
    infer.demand.cores = 1;
    infer.duration = 2.0;
    tmgr.submit(std::move(infer));
  }
  session.run();

  std::cout << "hybrid pilot executed " << on_flux
            << " executable tasks on flux and " << on_dragon
            << " function tasks on dragon (t=" << session.now() << " s)\n";
  return (on_flux == 8 && on_dragon == 400) ? 0 : 1;
}
