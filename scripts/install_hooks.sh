#!/usr/bin/env bash
# Installs the repo's git hooks. Currently one pre-commit hook: run
# flotilla-analyze over the staged C++ sources against the committed
# baseline, so interprocedural findings (docs/correctness.md,
# "Interprocedural analysis") surface before CI does the full-tree run.
# Usage:
#
#   scripts/install_hooks.sh [build-dir]
#
# The installed hook is deliberately forgiving: if the analyzer binary
# is not built it exits 0 (a fresh clone must still be able to commit —
# CI remains the authoritative gate), and it only scans staged files
# under src/ and tools/, so doc-only commits cost nothing.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${1:-build}

hook_dir=$(git rev-parse --git-path hooks)
mkdir -p "$hook_dir"

cat > "$hook_dir/pre-commit" <<HOOK
#!/usr/bin/env bash
# Installed by scripts/install_hooks.sh — flotilla-analyze on staged
# sources. Re-run that script after moving the build directory.
set -euo pipefail
cd "\$(git rev-parse --show-toplevel)"
analyze="$build_dir/tools/flotilla-analyze"
if [ ! -x "\$analyze" ]; then
  exit 0  # analyzer not built: defer to CI
fi
staged=\$(git diff --cached --name-only --diff-filter=ACMR -- \\
  'src/*.cpp' 'src/*.cc' 'src/*.cxx' 'src/*.hpp' 'src/*.h' 'src/*.hh' \\
  'tools/*.cpp' 'tools/*.hpp')
if [ -z "\$staged" ]; then
  exit 0
fi
# shellcheck disable=SC2086
"\$analyze" --baseline analyze/baseline.txt \$staged
HOOK
chmod +x "$hook_dir/pre-commit"
echo "install_hooks: pre-commit installed at $hook_dir/pre-commit"
