#!/usr/bin/env bash
# clang-tidy over the project's own sources (src/ and tools/), using the
# compile database exported by CMake. Usage:
#
#   scripts/run_clang_tidy.sh [build-dir] [clang-tidy-binary]
#
# Exits non-zero on any finding (the .clang-tidy policy sets
# WarningsAsErrors: '*'), which is how CI gates on it.
set -euo pipefail

build_dir=${1:-build}
tidy=${2:-clang-tidy}

cd "$(dirname "$0")/.."

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$tidy' not found; install clang-tidy" >&2
  exit 2
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json under '$build_dir'" \
       "(configure with cmake -B '$build_dir' first)" >&2
  exit 2
fi

# Only first-party implementation files; headers are covered through the
# TUs that include them (HeaderFilterRegex in .clang-tidy).
files=$(find src tools -name '*.cpp' | sort)

# shellcheck disable=SC2086
exec "$tidy" -p "$build_dir" --quiet $files
