#!/bin/sh
# Builds, tests, and reproduces every figure, leaving CSVs + logs in ./results.
set -e
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
mkdir -p results && cd results
for b in ../build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] && echo "### $b" && "$b"
done | tee bench_output.txt
