#!/usr/bin/env bash
# Scheduling-performance snapshot: runs the placement-bound microbench
# (bench_sched), the ingress tail-latency bench (bench_streaming_latency,
# whose submit->launch SLO percentiles and sustained rate are gated), plus
# the two end-to-end campaign benches the paper's headline figures ride on
# (bench_throughput, bench_impeccable) and writes BENCH_sched.json so the
# perf trajectory is tracked across PRs.
#
#   scripts/bench_snapshot.sh [build-dir] [output-json]
#
# Runs in quick mode (FLOTILLA_BENCH_QUICK) by default so CI smoke runs
# stay in seconds; set FLOTILLA_BENCH_FULL=1 for a full-scale snapshot.
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_sched.json}

cd "$(dirname "$0")/.."

for bench in bench_sched bench_streaming_latency bench_throughput \
             bench_impeccable; do
  if [ ! -x "$build_dir/bench/$bench" ]; then
    echo "bench_snapshot: $build_dir/bench/$bench missing" \
         "(cmake --build $build_dir --target $bench first)" >&2
    exit 2
  fi
done

if [ -n "${FLOTILLA_BENCH_FULL:-}" ]; then
  unset FLOTILLA_BENCH_QUICK
  quick=false
else
  export FLOTILLA_BENCH_QUICK=1
  quick=true
fi

# bench_sched prints machine-readable "KV key=value" lines.
sched_out=$("$build_dir/bench/bench_sched")
printf '%s\n' "$sched_out"

kv() {
  printf '%s\n' "$sched_out" | sed -n "s/^KV $1=//p" | tail -1
}

# The campaign benches are regression canaries: the snapshot records how
# long each takes wall-clock, which tracks simulator hot-path cost. They
# write their figure CSVs into the cwd, so run them from a scratch dir —
# a quick-mode run must not clobber the committed full-scale figures.
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
bench_bin=$(cd "$build_dir/bench" && pwd)

# bench_streaming_latency prints the gated ingress SLO percentiles as
# "KV key=value" lines; it also writes its figure CSV into the cwd, so it
# runs from the scratch dir like the campaign benches.
streaming_out=$(cd "$scratch" && "$bench_bin/bench_streaming_latency")
printf '%s\n' "$streaming_out"

skv() {
  printf '%s\n' "$streaming_out" | sed -n "s/^KV $1=//p" | tail -1
}

wall() {
  local start end
  start=$(date +%s%N)
  # shellcheck disable=SC2086
  (cd "$scratch" && "$bench_bin/$1" ${2:-} > /dev/null)
  end=$(date +%s%N)
  awk -v s="$start" -v e="$end" 'BEGIN { printf "%.2f", (e - s) / 1e9 }'
}

throughput_wall=$(wall bench_throughput "--backend flux")
impeccable_wall=$(wall bench_impeccable)

cat > "$out" <<EOF
{
  "quick": $quick,
  "placement_attempts_per_sec_linear": $(kv place_attempts_per_sec_linear),
  "placement_attempts_per_sec_indexed": $(kv place_attempts_per_sec_indexed),
  "placement_speedup": $(kv placement_speedup),
  "makespan_s": $(kv makespan_s),
  "events_per_sec": $(kv events_per_sec),
  "events_per_sec_fullstack_mt": $(kv events_per_sec_fullstack_mt),
  "events_per_sec_storm_serial": $(kv events_per_sec_storm_serial),
  "events_per_sec_sharded": $(kv events_per_sec_sharded),
  "storm_speedup": $(kv storm_speedup),
  "submit_launch_p50_ms": $(skv submit_launch_p50_ms),
  "submit_launch_p99_ms": $(skv submit_launch_p99_ms),
  "submit_launch_p999_ms": $(skv submit_launch_p999_ms),
  "ingress_sustained_rate_per_s": $(skv ingress_sustained_rate_per_s),
  "bench_throughput_wall_s": $throughput_wall,
  "bench_impeccable_wall_s": $impeccable_wall
}
EOF

echo "bench_snapshot: wrote $out"
cat "$out"
