#!/usr/bin/env bash
# flotilla-analyze over the project's own sources (src/ and tools/),
# against the committed layer DAG (analyze/layers.conf) and baseline
# (analyze/baseline.txt). Usage:
#
#   scripts/run_analyze.sh [build-dir] [sarif-output] [shared-state-report] \
#                          [confinement-report]
#
# Builds the tool if needed, writes the SARIF report (default
# flotilla-analyze.sarif, what CI uploads), the shared-state inventory
# (default flotilla-analyze-shared-state.txt), and the confinement-proof
# report (default flotilla-analyze-confinement.txt — the verdict on every
# claim in analyze/confined.txt), and exits non-zero on any finding that
# is neither waived in source nor grandfathered in the baseline — which
# is how CI gates on it. To accept a finding instead of fixing it:
#
#   ./build/tools/flotilla-analyze --baseline analyze/baseline.txt \
#       --write-baseline
#
# and commit the diff (docs/correctness.md, "Static analysis").
set -euo pipefail

build_dir=${1:-build}
sarif_out=${2:-flotilla-analyze.sarif}
report_out=${3:-flotilla-analyze-shared-state.txt}
conf_out=${4:-flotilla-analyze-confinement.txt}

cd "$(dirname "$0")/.."

if [ ! -d "$build_dir" ]; then
  echo "run_analyze: no build dir '$build_dir'" \
       "(configure with cmake -B '$build_dir' first)" >&2
  exit 2
fi
cmake --build "$build_dir" --target flotilla-analyze -- -j "$(nproc 2>/dev/null || echo 2)"

analyze="$build_dir/tools/flotilla-analyze"

# SARIF for the artifact upload (exit code deferred to the gating run:
# the SARIF run reports suppressed results too, so it shares the same
# fresh-findings exit status). The same run writes the shared-state
# inventory CI uploads alongside it, annotated from analyze/confined.txt,
# and the confinement-proof report checking every claim in that file.
"$analyze" --baseline analyze/baseline.txt --sarif --output "$sarif_out" \
  --shared-state-report "$report_out" --confined analyze/confined.txt \
  --confinement-report "$conf_out" || true

# Shared-state inventory delta vs the recorded count
# (analyze/shared_state_count.txt): the acceptance bar is that the
# inventory shrinks, or every remaining entry carries a reviewed confined
# annotation. Unannotated entries fail the run; a count drift prints the
# class-level delta so the reviewer sees exactly which shared state
# appeared or vanished.
recorded=$(cat analyze/shared_state_count.txt)
summary=$(sed -n '2s/^# //p' "$report_out")
total=$(printf '%s\n' "$summary" | sed -n 's/^total \([0-9]*\) entries.*/\1/p')
unannotated=$(printf '%s\n' "$summary" | sed -n 's/.*, \([0-9]*\) unannotated$/\1/p')
if [ -z "$total" ] || [ -z "$unannotated" ]; then
  echo "run_analyze: cannot parse shared-state summary from $report_out" >&2
  exit 2
fi
echo "run_analyze: shared-state inventory: $total entries" \
     "(recorded baseline $recorded, delta $((total - recorded)))," \
     "$unannotated unannotated" >&2
if [ "$total" -ne "$recorded" ]; then
  # Owning classes (the function column's class prefix) that gained or
  # lost inventory entries since the recorded snapshot, if one exists.
  if [ -f analyze/shared_state_classes.txt ]; then
    classes_now=$(mktemp)
    grep -v '^#' "$report_out" \
      | awk -F'\t' '{n = split($5, q, "::"); cls = q[1];
                     for (i = 2; i < n; i++) cls = cls "::" q[i];
                     print cls}' \
      | sort | uniq -c | awk '{print $2 "\t" $1}' > "$classes_now"
    echo "run_analyze: shared-state class-level delta (class: recorded -> now):" >&2
    join -t "$(printf '\t')" -a 1 -a 2 -e 0 -o 0,1.2,2.2 \
         <(sort analyze/shared_state_classes.txt) "$classes_now" \
      | awk -F'\t' '$2 != $3 {print "  " $1 ": " $2 " -> " $3}' >&2
    rm -f "$classes_now"
  fi
  echo "run_analyze: FAIL: inventory count drifted from the recorded" \
       "$recorded (now $total) — review the delta above, then refresh" \
       "analyze/shared_state_count.txt and analyze/shared_state_classes.txt" >&2
  exit 1
fi
if [ "$unannotated" -gt 0 ]; then
  echo "run_analyze: FAIL: $unannotated inventory entries lack a confined" \
       "annotation (annotate in analyze/confined.txt or guard the writes)" >&2
  exit 1
fi

# Confinement-proof gate: every claim in analyze/confined.txt must hold
# (failed == 0 — conf-* findings also fail the gating run below), and the
# proved count must not regress below the recorded floor
# (analyze/confinement_count.txt): downgrading a `verified` claim to
# `assume` needs a deliberate floor update in the same commit.
conf_summary=$(sed -n '2s/^# //p' "$conf_out")
proved=$(printf '%s\n' "$conf_summary" | sed -n 's/.* claims: \([0-9]*\) proved.*/\1/p')
failed=$(printf '%s\n' "$conf_summary" | sed -n 's/.* \([0-9]*\) failed$/\1/p')
if [ -z "$proved" ] || [ -z "$failed" ]; then
  echo "run_analyze: cannot parse confinement summary from $conf_out" >&2
  exit 2
fi
proved_floor=$(cat analyze/confinement_count.txt)
echo "run_analyze: confinement proofs: $conf_summary" \
     "(recorded floor: $proved_floor proved)" >&2
if [ "$failed" -gt 0 ]; then
  echo "run_analyze: FAIL: $failed confinement claims failed their proof" \
       "(see $conf_out)" >&2
  exit 1
fi
if [ "$proved" -lt "$proved_floor" ]; then
  echo "run_analyze: FAIL: proved confinement claims regressed below the" \
       "recorded floor ($proved < $proved_floor) — restore the proofs or" \
       "update analyze/confinement_count.txt deliberately" >&2
  exit 1
fi

# Human-readable gate: prints fresh findings and fails on them (including
# conf-* findings, now that --confined arms the confinement pass). Timed
# so CI logs show analyzer cost as the tree grows.
start_ms=$(date +%s%3N)
status=0
"$analyze" --baseline analyze/baseline.txt --confined analyze/confined.txt \
  || status=$?
end_ms=$(date +%s%3N)
echo "run_analyze: gate finished in $((end_ms - start_ms)) ms" >&2
exit "$status"
