#!/usr/bin/env bash
# flotilla-analyze over the project's own sources (src/ and tools/),
# against the committed layer DAG (analyze/layers.conf) and baseline
# (analyze/baseline.txt). Usage:
#
#   scripts/run_analyze.sh [build-dir] [sarif-output] [shared-state-report]
#
# Builds the tool if needed, writes the SARIF report (default
# flotilla-analyze.sarif, what CI uploads) plus the shared-state
# inventory (default flotilla-analyze-shared-state.txt, the gating input
# to the ROADMAP 1 sharding refactor), and exits non-zero on any
# finding that is neither waived in source nor grandfathered in the
# baseline — which is how CI gates on it. To accept a finding instead of
# fixing it:
#
#   ./build/tools/flotilla-analyze --baseline analyze/baseline.txt \
#       --write-baseline
#
# and commit the diff (docs/correctness.md, "Static analysis").
set -euo pipefail

build_dir=${1:-build}
sarif_out=${2:-flotilla-analyze.sarif}
report_out=${3:-flotilla-analyze-shared-state.txt}

cd "$(dirname "$0")/.."

if [ ! -d "$build_dir" ]; then
  echo "run_analyze: no build dir '$build_dir'" \
       "(configure with cmake -B '$build_dir' first)" >&2
  exit 2
fi
cmake --build "$build_dir" --target flotilla-analyze -- -j "$(nproc 2>/dev/null || echo 2)"

analyze="$build_dir/tools/flotilla-analyze"

# SARIF for the artifact upload (exit code deferred to the gating run:
# the SARIF run reports suppressed results too, so it shares the same
# fresh-findings exit status). The same run writes the shared-state
# inventory CI uploads alongside it, annotated from analyze/confined.txt.
"$analyze" --baseline analyze/baseline.txt --sarif --output "$sarif_out" \
  --shared-state-report "$report_out" --confined analyze/confined.txt || true

# Shared-state inventory delta vs the recorded pre-sharding count
# (analyze/shared_state_count.txt): the sharding acceptance bar is that
# the inventory shrinks, or every remaining entry carries a reviewed
# confined annotation. Unannotated entries fail the run.
recorded=$(cat analyze/shared_state_count.txt)
summary=$(sed -n '2s/^# //p' "$report_out")
total=$(printf '%s\n' "$summary" | sed -n 's/^total \([0-9]*\) entries.*/\1/p')
unannotated=$(printf '%s\n' "$summary" | sed -n 's/.*, \([0-9]*\) unannotated$/\1/p')
if [ -z "$total" ] || [ -z "$unannotated" ]; then
  echo "run_analyze: cannot parse shared-state summary from $report_out" >&2
  exit 2
fi
echo "run_analyze: shared-state inventory: $total entries" \
     "(pre-sharding baseline $recorded, delta $((total - recorded)))," \
     "$unannotated unannotated" >&2
if [ "$unannotated" -gt 0 ]; then
  echo "run_analyze: FAIL: $unannotated inventory entries lack a confined" \
       "annotation (annotate in analyze/confined.txt or guard the writes)" >&2
  exit 1
fi

# Human-readable gate: prints fresh findings and fails on them. Timed so
# CI logs show analyzer cost as the tree grows.
start_ms=$(date +%s%3N)
status=0
"$analyze" --baseline analyze/baseline.txt || status=$?
end_ms=$(date +%s%3N)
echo "run_analyze: gate finished in $((end_ms - start_ms)) ms" >&2
exit "$status"
