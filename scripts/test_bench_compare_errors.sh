#!/usr/bin/env bash
# Tiny regression test for scripts/bench_compare.py error handling:
# a missing or malformed snapshot must exit 2 with a one-line message on
# stderr — never a Python traceback. Registered in tests/CMakeLists.txt
# as bench_compare_errors_test; takes the repo root as $1.
set -u

ROOT="${1:?usage: test_bench_compare_errors.sh <repo-root>}"
COMPARE="$ROOT/scripts/bench_compare.py"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# A valid snapshot to pair with the broken ones.
cat > "$TMP/good.json" <<'EOF'
{"quick": true, "events_per_sec": 1000.0}
EOF

check_error() {
  local desc="$1"; shift
  local stderr_file="$TMP/stderr"
  python3 "$COMPARE" "$@" >/dev/null 2>"$stderr_file"
  local rc=$?
  [ "$rc" -eq 2 ] || fail "$desc: expected exit 2, got $rc"
  grep -q "bench_compare:" "$stderr_file" \
    || fail "$desc: no bench_compare: message on stderr"
  grep -q "Traceback" "$stderr_file" \
    && fail "$desc: traceback leaked to stderr"
  return 0
}

# Missing current snapshot (the BENCH_sched.json-never-produced case).
check_error "missing current" "$TMP/good.json" "$TMP/BENCH_sched.json"

# Missing baseline.
check_error "missing baseline" "$TMP/nope.json" "$TMP/good.json"

# Malformed JSON.
printf '{"events_per_sec": ' > "$TMP/truncated.json"
check_error "malformed json" "$TMP/good.json" "$TMP/truncated.json"

# Valid JSON of the wrong shape.
printf '[1, 2, 3]' > "$TMP/array.json"
check_error "non-object json" "$TMP/good.json" "$TMP/array.json"

# A malformed histogram key — a KV line that went missing leaves an empty
# string in the snapshot JSON, and an empty histogram percentile prints
# NaN. Both must exit 2 with a labeled message, not a traceback or a
# silently-passing gate.
cat > "$TMP/lat_good.json" <<'EOF'
{"quick": true, "submit_launch_p99_ms": 8.5}
EOF
cat > "$TMP/lat_garbage.json" <<'EOF'
{"quick": true, "submit_launch_p99_ms": "knee [ms]"}
EOF
cat > "$TMP/lat_nan.json" <<'EOF'
{"quick": true, "submit_launch_p99_ms": NaN}
EOF
check_error "non-numeric histogram key" "$TMP/lat_good.json" "$TMP/lat_garbage.json"
check_error "NaN histogram key" "$TMP/lat_good.json" "$TMP/lat_nan.json"

# A gated metric present in the baseline but missing from the candidate
# must surface as a labeled MISSING warning row — not silently pass (a
# bench that stopped producing a metric would otherwise pass forever).
cat > "$TMP/lost_metric.json" <<'EOF'
{"quick": true, "makespan_s": 12.0}
EOF
out="$(python3 "$COMPARE" "$TMP/good.json" "$TMP/lost_metric.json" 2>"$TMP/stderr")"
rc=$?
[ "$rc" -eq 0 ] || fail "missing metric: warning row must not fail the gate (got $rc)"
echo "$out" | grep -q "events_per_sec.*MISSING" \
  || fail "missing metric: no MISSING row for events_per_sec in output"
echo "$out" | grep -q "n/a" \
  || fail "missing metric: current/delta must render as n/a"

# Sanity: the happy path still works.
python3 "$COMPARE" "$TMP/good.json" "$TMP/good.json" >/dev/null 2>&1 \
  || fail "happy path: expected exit 0"

echo "bench_compare error handling OK"
