# Gnuplot scripts for the bench CSVs.
#
#   cd <dir with the CSVs> && gnuplot -c scripts/plot_results.gp
#
# Produces PNGs mirroring the paper's figures from the CSVs every bench
# writes next to itself.
set terminal pngcairo size 900,520 font "DejaVu Sans,11"
set datafile separator ","
set key top left
set grid

# --- Fig 5: throughput vs nodes per backend --------------------------------
set output "fig5_throughput.png"
set title "Fig 5: task throughput vs nodes (null workload)"
set xlabel "nodes"; set ylabel "tasks/s"; set logscale x 2
plot "fig5_throughput_srun.csv"   using 1:5 skip 1 with linespoints title "srun", \
     "fig5_throughput_flux.csv"   using 1:5 skip 1 with linespoints title "flux (1 instance)", \
     "fig5_throughput_dragon.csv" using 1:5 skip 1 with linespoints title "dragon"
unset logscale

# --- Fig 6: flux multi-instance ---------------------------------------------
set output "fig6_flux_partitions.png"
set title "Fig 6: flux throughput vs instances"
set xlabel "instances"; set ylabel "tasks/s"
plot "fig6_flux_partitions.csv" using 2:5 skip 1 with points pt 7 ps 1.5 title "window rate"

# --- Fig 8: IMPECCABLE summary ----------------------------------------------
set output "fig8_impeccable.png"
set title "Fig 8: IMPECCABLE makespan by backend/scale"
set style data histogram
set style histogram cluster gap 2
set style fill solid 0.8
set xlabel "run"; set ylabel "makespan [s]"
plot "fig8_impeccable.csv" using 4:xtic(sprintf("%s@%s", strcol(1), strcol(2))) skip 1 title "measured"

# --- ablations ---------------------------------------------------------------
set output "ablation_ceiling.png"
set title "Ablation: srun concurrency ceiling vs utilization"
set xlabel "ceiling"; set ylabel "core utilization [%]"
plot "ablation_ceiling.csv" using 1:(strcol(2)) skip 1 with linespoints notitle
