#!/usr/bin/env python3
"""Perf-regression gate: compare a bench snapshot against the baseline.

    scripts/bench_compare.py BENCH_baseline.json BENCH_sched.json \
        [--tolerance 0.25] [--summary $GITHUB_STEP_SUMMARY]

Gated metrics (from scripts/bench_snapshot.sh) carry a direction: a
throughput metric regresses when it *drops* more than the tolerance below
the baseline, a cost metric when it *rises* more than the tolerance above
it. Improvements never fail the gate. Wall-clock canaries
(bench_*_wall_s) are reported but not gated — they track the runner, not
the code, and runner classes differ too much for a checked-in baseline.

Prints a delta table (markdown when --summary is given, aligned text
otherwise) and exits 1 on any regression. Re-baseline by running
scripts/bench_snapshot.sh on the CI runner class and committing the
output as BENCH_baseline.json (docs/observability.md).

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

# metric -> direction; "higher" = throughput-like, "lower" = cost-like,
# None = informational only (never gated).
METRICS = {
    "placement_attempts_per_sec_linear": "higher",
    "placement_attempts_per_sec_indexed": "higher",
    "placement_speedup": "higher",
    "events_per_sec": "higher",
    # Full-stack campaign on a 4-shard calendar drained by 4 worker
    # threads (the configuration the confinement proofs unlock) — same
    # schedule as the serial campaign, so only wall-clock throughput can
    # move.
    "events_per_sec_fullstack_mt": "higher",
    "events_per_sec_storm_serial": "higher",
    "events_per_sec_sharded": "higher",
    # Parallel-vs-serial ratio of the two storm rates: informational —
    # it collapses to ~1 on single-core runners where no wall-clock
    # parallelism exists, so a checked-in baseline cannot gate it.
    "storm_speedup": None,
    "makespan_s": "lower",
    # Ingress tail-latency SLO (bench_streaming_latency): submit->launch
    # percentiles at the fixed below-knee offered rate regress when they
    # rise; the peak served rate over the sweep regresses when it drops.
    "submit_launch_p50_ms": "lower",
    "submit_launch_p99_ms": "lower",
    "submit_launch_p999_ms": "lower",
    "ingress_sustained_rate_per_s": "higher",
    "bench_throughput_wall_s": None,
    "bench_impeccable_wall_s": None,
}


def load(path, role):
    """Loads a snapshot json, exiting 2 with a clear message (no traceback)
    when the file is missing, unreadable, malformed, or not an object —
    the usual cause is a bench step that silently failed to produce
    BENCH_sched.json."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as err:
        print(
            f"bench_compare: cannot read {role} snapshot {path!r}: "
            f"{err.strerror or err}; did the bench step produce it?",
            file=sys.stderr,
        )
        sys.exit(2)
    except json.JSONDecodeError as err:
        print(
            f"bench_compare: {role} snapshot {path!r} is not valid JSON "
            f"(line {err.lineno}: {err.msg}); re-run the bench step",
            file=sys.stderr,
        )
        sys.exit(2)
    if not isinstance(data, dict):
        print(
            f"bench_compare: {role} snapshot {path!r} must be a JSON "
            f"object of metrics, got {type(data).__name__}",
            file=sys.stderr,
        )
        sys.exit(2)
    return data


def metric_value(snapshot, metric, role):
    """Coerces a metric to float, exiting 2 with a labeled message (no
    traceback) when a snapshot carries a non-numeric value — e.g. a bench
    whose KV line went missing leaves an empty string in the JSON field,
    or a histogram key that printed 'nan'/garbage."""
    try:
        value = float(snapshot[metric])
    except (TypeError, ValueError):
        print(
            f"bench_compare: {role} snapshot metric {metric!r} is not "
            f"numeric (got {snapshot[metric]!r}); re-run the bench step",
            file=sys.stderr,
        )
        sys.exit(2)
    if value != value:  # NaN: a histogram percentile over zero samples
        print(
            f"bench_compare: {role} snapshot metric {metric!r} is NaN "
            "(empty histogram?); re-run the bench step",
            file=sys.stderr,
        )
        sys.exit(2)
    return value


def evaluate(baseline, current, tolerance):
    """Returns (rows, regressions). Each row is a dict for the table."""
    rows = []
    regressions = []
    for metric, direction in METRICS.items():
        if metric not in baseline:
            continue
        if metric not in current:
            # A gated metric the baseline has but this snapshot lost is a
            # red flag (a bench that silently stopped running would
            # otherwise pass forever) — surface it as a labeled warning
            # row rather than skipping it.
            rows.append(
                {
                    "metric": metric,
                    "baseline": metric_value(baseline, metric, "baseline"),
                    "current": None,
                    "delta": None,
                    "status": "MISSING",
                }
            )
            continue
        base = metric_value(baseline, metric, "baseline")
        cur = metric_value(current, metric, "current")
        delta = (cur - base) / base if base != 0 else 0.0
        if direction == "higher":
            regressed = cur < base * (1.0 - tolerance)
        elif direction == "lower":
            regressed = cur > base * (1.0 + tolerance)
        else:
            regressed = False
        if direction is None:
            status = "info"
        elif regressed:
            status = "REGRESSED"
        else:
            status = "ok"
        rows.append(
            {
                "metric": metric,
                "baseline": base,
                "current": cur,
                "delta": delta,
                "status": status,
            }
        )
        if regressed:
            regressions.append(metric)
    return rows, regressions


def fmt_value(value):
    if value is None:
        return "n/a"
    return f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"


def fmt_delta(value):
    return "n/a" if value is None else f"{value:+.1%}"


def render(rows, tolerance, markdown):
    lines = []
    if markdown:
        lines.append("### Bench gate (tolerance ±{:.0%})".format(tolerance))
        lines.append("")
        lines.append("| metric | baseline | current | delta | status |")
        lines.append("|---|---:|---:|---:|---|")
        for r in rows:
            lines.append(
                "| {metric} | {base} | {cur} | {delta} | {status} |".format(
                    metric=r["metric"],
                    base=fmt_value(r["baseline"]),
                    cur=fmt_value(r["current"]),
                    delta=fmt_delta(r["delta"]),
                    status=r["status"],
                )
            )
    else:
        width = max(len(r["metric"]) for r in rows) if rows else 10
        lines.append(
            f"bench gate (tolerance +/-{tolerance:.0%}); wall-clock rows informational"
        )
        for r in rows:
            lines.append(
                "  {metric:<{width}}  base={base:>12}  cur={cur:>12}  "
                "{delta:>7}  {status}".format(
                    metric=r["metric"],
                    width=width,
                    base=fmt_value(r["baseline"]),
                    cur=fmt_value(r["current"]),
                    delta=fmt_delta(r["delta"]),
                    status=r["status"],
                )
            )
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="freshly measured snapshot json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative tolerance band (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--summary",
        default="",
        help="append a markdown delta table to this file "
        "(e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline, "baseline")
    current = load(args.current, "current")
    if baseline.get("quick") != current.get("quick"):
        print(
            "bench_compare: baseline and current ran in different modes "
            f"(quick={baseline.get('quick')} vs {current.get('quick')}); "
            "re-baseline with the same mode",
            file=sys.stderr,
        )
        return 2

    rows, regressions = evaluate(baseline, current, args.tolerance)
    if not rows:
        print("bench_compare: no shared metrics to compare", file=sys.stderr)
        return 2

    print(render(rows, args.tolerance, markdown=False), end="")
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(render(rows, args.tolerance, markdown=True))

    if regressions:
        print(
            "bench_compare: REGRESSION in: " + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    print("bench_compare: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
