file(REMOVE_RECURSE
  "CMakeFiles/flotilla-run.dir/flotilla_run.cpp.o"
  "CMakeFiles/flotilla-run.dir/flotilla_run.cpp.o.d"
  "flotilla-run"
  "flotilla-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
