# Empty dependencies file for flotilla-run.
# This may be replaced when dependencies are built.
