
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/flotilla_run.cpp" "tools/CMakeFiles/flotilla-run.dir/flotilla_run.cpp.o" "gcc" "tools/CMakeFiles/flotilla-run.dir/flotilla_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flotilla_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/flotilla_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/flotilla_report.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/flotilla_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/slurm/CMakeFiles/flotilla_slurm.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/flotilla_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/dragon/CMakeFiles/flotilla_dragon.dir/DependInfo.cmake"
  "/root/repo/build/src/prrte/CMakeFiles/flotilla_prrte.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/flotilla_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flotilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flotilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
