file(REMOVE_RECURSE
  "CMakeFiles/bench_prrte.dir/bench_prrte.cpp.o"
  "CMakeFiles/bench_prrte.dir/bench_prrte.cpp.o.d"
  "bench_prrte"
  "bench_prrte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prrte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
