# Empty compiler generated dependencies file for bench_prrte.
# This may be replaced when dependencies are built.
