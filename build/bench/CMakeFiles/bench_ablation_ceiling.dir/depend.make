# Empty dependencies file for bench_ablation_ceiling.
# This may be replaced when dependencies are built.
