# Empty compiler generated dependencies file for bench_rp_overhead.
# This may be replaced when dependencies are built.
