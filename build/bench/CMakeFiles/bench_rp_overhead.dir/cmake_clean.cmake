file(REMOVE_RECURSE
  "CMakeFiles/bench_rp_overhead.dir/bench_rp_overhead.cpp.o"
  "CMakeFiles/bench_rp_overhead.dir/bench_rp_overhead.cpp.o.d"
  "bench_rp_overhead"
  "bench_rp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
