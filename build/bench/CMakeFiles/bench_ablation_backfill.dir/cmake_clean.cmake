file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backfill.dir/bench_ablation_backfill.cpp.o"
  "CMakeFiles/bench_ablation_backfill.dir/bench_ablation_backfill.cpp.o.d"
  "bench_ablation_backfill"
  "bench_ablation_backfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
