file(REMOVE_RECURSE
  "CMakeFiles/bench_abstract_claims.dir/bench_abstract_claims.cpp.o"
  "CMakeFiles/bench_abstract_claims.dir/bench_abstract_claims.cpp.o.d"
  "bench_abstract_claims"
  "bench_abstract_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abstract_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
