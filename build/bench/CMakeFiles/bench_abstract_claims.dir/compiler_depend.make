# Empty compiler generated dependencies file for bench_abstract_claims.
# This may be replaced when dependencies are built.
