# Empty dependencies file for bench_impeccable.
# This may be replaced when dependencies are built.
