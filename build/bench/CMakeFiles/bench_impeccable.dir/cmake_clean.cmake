file(REMOVE_RECURSE
  "CMakeFiles/bench_impeccable.dir/bench_impeccable.cpp.o"
  "CMakeFiles/bench_impeccable.dir/bench_impeccable.cpp.o.d"
  "bench_impeccable"
  "bench_impeccable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impeccable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
