# Empty dependencies file for bench_flux_partitions.
# This may be replaced when dependencies are built.
