file(REMOVE_RECURSE
  "CMakeFiles/bench_flux_partitions.dir/bench_flux_partitions.cpp.o"
  "CMakeFiles/bench_flux_partitions.dir/bench_flux_partitions.cpp.o.d"
  "bench_flux_partitions"
  "bench_flux_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flux_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
