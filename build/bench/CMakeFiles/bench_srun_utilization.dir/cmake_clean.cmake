file(REMOVE_RECURSE
  "CMakeFiles/bench_srun_utilization.dir/bench_srun_utilization.cpp.o"
  "CMakeFiles/bench_srun_utilization.dir/bench_srun_utilization.cpp.o.d"
  "bench_srun_utilization"
  "bench_srun_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srun_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
