# Empty dependencies file for bench_srun_utilization.
# This may be replaced when dependencies are built.
