file(REMOVE_RECURSE
  "CMakeFiles/dragon_threads_test.dir/dragon_threads_test.cpp.o"
  "CMakeFiles/dragon_threads_test.dir/dragon_threads_test.cpp.o.d"
  "dragon_threads_test"
  "dragon_threads_test.pdb"
  "dragon_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragon_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
