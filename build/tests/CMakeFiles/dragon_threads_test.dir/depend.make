# Empty dependencies file for dragon_threads_test.
# This may be replaced when dependencies are built.
