# Empty dependencies file for cancellation_config_test.
# This may be replaced when dependencies are built.
