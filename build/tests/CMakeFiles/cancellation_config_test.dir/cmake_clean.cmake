file(REMOVE_RECURSE
  "CMakeFiles/cancellation_config_test.dir/cancellation_config_test.cpp.o"
  "CMakeFiles/cancellation_config_test.dir/cancellation_config_test.cpp.o.d"
  "cancellation_config_test"
  "cancellation_config_test.pdb"
  "cancellation_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancellation_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
