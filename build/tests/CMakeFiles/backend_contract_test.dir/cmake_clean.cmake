file(REMOVE_RECURSE
  "CMakeFiles/backend_contract_test.dir/backend_contract_test.cpp.o"
  "CMakeFiles/backend_contract_test.dir/backend_contract_test.cpp.o.d"
  "backend_contract_test"
  "backend_contract_test.pdb"
  "backend_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
