# Empty dependencies file for backend_contract_test.
# This may be replaced when dependencies are built.
