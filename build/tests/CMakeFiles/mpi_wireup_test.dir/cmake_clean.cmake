file(REMOVE_RECURSE
  "CMakeFiles/mpi_wireup_test.dir/mpi_wireup_test.cpp.o"
  "CMakeFiles/mpi_wireup_test.dir/mpi_wireup_test.cpp.o.d"
  "mpi_wireup_test"
  "mpi_wireup_test.pdb"
  "mpi_wireup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_wireup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
