# Empty dependencies file for mpi_wireup_test.
# This may be replaced when dependencies are built.
