# Empty dependencies file for prrte_test.
# This may be replaced when dependencies are built.
