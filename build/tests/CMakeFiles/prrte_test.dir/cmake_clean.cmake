file(REMOVE_RECURSE
  "CMakeFiles/prrte_test.dir/prrte_test.cpp.o"
  "CMakeFiles/prrte_test.dir/prrte_test.cpp.o.d"
  "prrte_test"
  "prrte_test.pdb"
  "prrte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prrte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
