file(REMOVE_RECURSE
  "CMakeFiles/workflow_property_test.dir/workflow_property_test.cpp.o"
  "CMakeFiles/workflow_property_test.dir/workflow_property_test.cpp.o.d"
  "workflow_property_test"
  "workflow_property_test.pdb"
  "workflow_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
