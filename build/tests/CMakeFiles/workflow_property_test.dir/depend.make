# Empty dependencies file for workflow_property_test.
# This may be replaced when dependencies are built.
