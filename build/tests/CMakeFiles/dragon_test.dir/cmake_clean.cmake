file(REMOVE_RECURSE
  "CMakeFiles/dragon_test.dir/dragon_test.cpp.o"
  "CMakeFiles/dragon_test.dir/dragon_test.cpp.o.d"
  "dragon_test"
  "dragon_test.pdb"
  "dragon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
