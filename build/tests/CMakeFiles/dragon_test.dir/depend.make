# Empty dependencies file for dragon_test.
# This may be replaced when dependencies are built.
