file(REMOVE_RECURSE
  "CMakeFiles/slurm_test.dir/slurm_test.cpp.o"
  "CMakeFiles/slurm_test.dir/slurm_test.cpp.o.d"
  "slurm_test"
  "slurm_test.pdb"
  "slurm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slurm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
