# Empty compiler generated dependencies file for slurm_test.
# This may be replaced when dependencies are built.
