# Empty dependencies file for flux_test.
# This may be replaced when dependencies are built.
