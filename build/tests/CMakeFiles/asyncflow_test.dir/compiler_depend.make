# Empty compiler generated dependencies file for asyncflow_test.
# This may be replaced when dependencies are built.
