file(REMOVE_RECURSE
  "CMakeFiles/asyncflow_test.dir/asyncflow_test.cpp.o"
  "CMakeFiles/asyncflow_test.dir/asyncflow_test.cpp.o.d"
  "asyncflow_test"
  "asyncflow_test.pdb"
  "asyncflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
