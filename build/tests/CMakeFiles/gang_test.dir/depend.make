# Empty dependencies file for gang_test.
# This may be replaced when dependencies are built.
