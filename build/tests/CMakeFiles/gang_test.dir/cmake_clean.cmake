file(REMOVE_RECURSE
  "CMakeFiles/gang_test.dir/gang_test.cpp.o"
  "CMakeFiles/gang_test.dir/gang_test.cpp.o.d"
  "gang_test"
  "gang_test.pdb"
  "gang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
