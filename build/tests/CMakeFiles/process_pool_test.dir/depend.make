# Empty dependencies file for process_pool_test.
# This may be replaced when dependencies are built.
