file(REMOVE_RECURSE
  "CMakeFiles/process_pool_test.dir/process_pool_test.cpp.o"
  "CMakeFiles/process_pool_test.dir/process_pool_test.cpp.o.d"
  "process_pool_test"
  "process_pool_test.pdb"
  "process_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
