# Empty dependencies file for staging_service_test.
# This may be replaced when dependencies are built.
