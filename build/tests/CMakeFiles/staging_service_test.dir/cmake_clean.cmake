file(REMOVE_RECURSE
  "CMakeFiles/staging_service_test.dir/staging_service_test.cpp.o"
  "CMakeFiles/staging_service_test.dir/staging_service_test.cpp.o.d"
  "staging_service_test"
  "staging_service_test.pdb"
  "staging_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staging_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
