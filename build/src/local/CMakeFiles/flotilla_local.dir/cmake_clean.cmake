file(REMOVE_RECURSE
  "CMakeFiles/flotilla_local.dir/process_pool.cpp.o"
  "CMakeFiles/flotilla_local.dir/process_pool.cpp.o.d"
  "libflotilla_local.a"
  "libflotilla_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
