file(REMOVE_RECURSE
  "libflotilla_local.a"
)
