# Empty dependencies file for flotilla_local.
# This may be replaced when dependencies are built.
