# Empty dependencies file for flotilla_report.
# This may be replaced when dependencies are built.
