file(REMOVE_RECURSE
  "CMakeFiles/flotilla_report.dir/session_report.cpp.o"
  "CMakeFiles/flotilla_report.dir/session_report.cpp.o.d"
  "libflotilla_report.a"
  "libflotilla_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
