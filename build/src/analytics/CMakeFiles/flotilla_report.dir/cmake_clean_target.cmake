file(REMOVE_RECURSE
  "libflotilla_report.a"
)
