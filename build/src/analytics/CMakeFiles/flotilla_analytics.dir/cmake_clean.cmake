file(REMOVE_RECURSE
  "CMakeFiles/flotilla_analytics.dir/latency.cpp.o"
  "CMakeFiles/flotilla_analytics.dir/latency.cpp.o.d"
  "CMakeFiles/flotilla_analytics.dir/metrics.cpp.o"
  "CMakeFiles/flotilla_analytics.dir/metrics.cpp.o.d"
  "CMakeFiles/flotilla_analytics.dir/timeline.cpp.o"
  "CMakeFiles/flotilla_analytics.dir/timeline.cpp.o.d"
  "libflotilla_analytics.a"
  "libflotilla_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
