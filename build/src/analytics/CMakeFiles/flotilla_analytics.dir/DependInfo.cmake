
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/latency.cpp" "src/analytics/CMakeFiles/flotilla_analytics.dir/latency.cpp.o" "gcc" "src/analytics/CMakeFiles/flotilla_analytics.dir/latency.cpp.o.d"
  "/root/repo/src/analytics/metrics.cpp" "src/analytics/CMakeFiles/flotilla_analytics.dir/metrics.cpp.o" "gcc" "src/analytics/CMakeFiles/flotilla_analytics.dir/metrics.cpp.o.d"
  "/root/repo/src/analytics/timeline.cpp" "src/analytics/CMakeFiles/flotilla_analytics.dir/timeline.cpp.o" "gcc" "src/analytics/CMakeFiles/flotilla_analytics.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/flotilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flotilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
