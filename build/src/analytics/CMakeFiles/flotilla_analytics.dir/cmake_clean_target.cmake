file(REMOVE_RECURSE
  "libflotilla_analytics.a"
)
