# Empty compiler generated dependencies file for flotilla_analytics.
# This may be replaced when dependencies are built.
