file(REMOVE_RECURSE
  "libflotilla_util.a"
)
