# Empty dependencies file for flotilla_util.
# This may be replaced when dependencies are built.
