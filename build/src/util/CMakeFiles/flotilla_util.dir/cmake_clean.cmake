file(REMOVE_RECURSE
  "CMakeFiles/flotilla_util.dir/cli.cpp.o"
  "CMakeFiles/flotilla_util.dir/cli.cpp.o.d"
  "CMakeFiles/flotilla_util.dir/config.cpp.o"
  "CMakeFiles/flotilla_util.dir/config.cpp.o.d"
  "CMakeFiles/flotilla_util.dir/id_registry.cpp.o"
  "CMakeFiles/flotilla_util.dir/id_registry.cpp.o.d"
  "CMakeFiles/flotilla_util.dir/logging.cpp.o"
  "CMakeFiles/flotilla_util.dir/logging.cpp.o.d"
  "libflotilla_util.a"
  "libflotilla_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
