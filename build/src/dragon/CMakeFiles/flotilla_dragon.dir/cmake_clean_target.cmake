file(REMOVE_RECURSE
  "libflotilla_dragon.a"
)
