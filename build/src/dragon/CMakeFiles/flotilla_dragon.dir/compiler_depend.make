# Empty compiler generated dependencies file for flotilla_dragon.
# This may be replaced when dependencies are built.
