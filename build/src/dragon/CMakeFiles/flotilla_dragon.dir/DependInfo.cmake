
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dragon/dragon_backend.cpp" "src/dragon/CMakeFiles/flotilla_dragon.dir/dragon_backend.cpp.o" "gcc" "src/dragon/CMakeFiles/flotilla_dragon.dir/dragon_backend.cpp.o.d"
  "/root/repo/src/dragon/function_executor.cpp" "src/dragon/CMakeFiles/flotilla_dragon.dir/function_executor.cpp.o" "gcc" "src/dragon/CMakeFiles/flotilla_dragon.dir/function_executor.cpp.o.d"
  "/root/repo/src/dragon/runtime.cpp" "src/dragon/CMakeFiles/flotilla_dragon.dir/runtime.cpp.o" "gcc" "src/dragon/CMakeFiles/flotilla_dragon.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/flotilla_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flotilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flotilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
