file(REMOVE_RECURSE
  "CMakeFiles/flotilla_dragon.dir/dragon_backend.cpp.o"
  "CMakeFiles/flotilla_dragon.dir/dragon_backend.cpp.o.d"
  "CMakeFiles/flotilla_dragon.dir/function_executor.cpp.o"
  "CMakeFiles/flotilla_dragon.dir/function_executor.cpp.o.d"
  "CMakeFiles/flotilla_dragon.dir/runtime.cpp.o"
  "CMakeFiles/flotilla_dragon.dir/runtime.cpp.o.d"
  "libflotilla_dragon.a"
  "libflotilla_dragon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_dragon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
