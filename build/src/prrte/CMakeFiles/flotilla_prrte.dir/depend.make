# Empty dependencies file for flotilla_prrte.
# This may be replaced when dependencies are built.
