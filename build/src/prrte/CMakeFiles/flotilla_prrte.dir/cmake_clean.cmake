file(REMOVE_RECURSE
  "CMakeFiles/flotilla_prrte.dir/dvm_backend.cpp.o"
  "CMakeFiles/flotilla_prrte.dir/dvm_backend.cpp.o.d"
  "libflotilla_prrte.a"
  "libflotilla_prrte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_prrte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
