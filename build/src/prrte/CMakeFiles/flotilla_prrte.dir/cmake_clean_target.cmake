file(REMOVE_RECURSE
  "libflotilla_prrte.a"
)
