file(REMOVE_RECURSE
  "CMakeFiles/flotilla_slurm.dir/slurmctld.cpp.o"
  "CMakeFiles/flotilla_slurm.dir/slurmctld.cpp.o.d"
  "CMakeFiles/flotilla_slurm.dir/srun_backend.cpp.o"
  "CMakeFiles/flotilla_slurm.dir/srun_backend.cpp.o.d"
  "libflotilla_slurm.a"
  "libflotilla_slurm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_slurm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
