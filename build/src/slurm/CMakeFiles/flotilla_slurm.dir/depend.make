# Empty dependencies file for flotilla_slurm.
# This may be replaced when dependencies are built.
