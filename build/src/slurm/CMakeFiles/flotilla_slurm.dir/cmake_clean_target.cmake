file(REMOVE_RECURSE
  "libflotilla_slurm.a"
)
