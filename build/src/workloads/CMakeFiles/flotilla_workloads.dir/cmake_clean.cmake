file(REMOVE_RECURSE
  "CMakeFiles/flotilla_workloads.dir/heterogeneous.cpp.o"
  "CMakeFiles/flotilla_workloads.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/flotilla_workloads.dir/impeccable.cpp.o"
  "CMakeFiles/flotilla_workloads.dir/impeccable.cpp.o.d"
  "CMakeFiles/flotilla_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/flotilla_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/flotilla_workloads.dir/trace_replay.cpp.o"
  "CMakeFiles/flotilla_workloads.dir/trace_replay.cpp.o.d"
  "libflotilla_workloads.a"
  "libflotilla_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
