# Empty compiler generated dependencies file for flotilla_workloads.
# This may be replaced when dependencies are built.
