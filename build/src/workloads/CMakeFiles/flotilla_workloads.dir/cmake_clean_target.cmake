file(REMOVE_RECURSE
  "libflotilla_workloads.a"
)
