
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cluster.cpp" "src/platform/CMakeFiles/flotilla_platform.dir/cluster.cpp.o" "gcc" "src/platform/CMakeFiles/flotilla_platform.dir/cluster.cpp.o.d"
  "/root/repo/src/platform/node.cpp" "src/platform/CMakeFiles/flotilla_platform.dir/node.cpp.o" "gcc" "src/platform/CMakeFiles/flotilla_platform.dir/node.cpp.o.d"
  "/root/repo/src/platform/placement_algo.cpp" "src/platform/CMakeFiles/flotilla_platform.dir/placement_algo.cpp.o" "gcc" "src/platform/CMakeFiles/flotilla_platform.dir/placement_algo.cpp.o.d"
  "/root/repo/src/platform/spec_config.cpp" "src/platform/CMakeFiles/flotilla_platform.dir/spec_config.cpp.o" "gcc" "src/platform/CMakeFiles/flotilla_platform.dir/spec_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/flotilla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flotilla_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
