file(REMOVE_RECURSE
  "CMakeFiles/flotilla_platform.dir/cluster.cpp.o"
  "CMakeFiles/flotilla_platform.dir/cluster.cpp.o.d"
  "CMakeFiles/flotilla_platform.dir/node.cpp.o"
  "CMakeFiles/flotilla_platform.dir/node.cpp.o.d"
  "CMakeFiles/flotilla_platform.dir/placement_algo.cpp.o"
  "CMakeFiles/flotilla_platform.dir/placement_algo.cpp.o.d"
  "CMakeFiles/flotilla_platform.dir/spec_config.cpp.o"
  "CMakeFiles/flotilla_platform.dir/spec_config.cpp.o.d"
  "libflotilla_platform.a"
  "libflotilla_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
