file(REMOVE_RECURSE
  "libflotilla_platform.a"
)
