# Empty compiler generated dependencies file for flotilla_platform.
# This may be replaced when dependencies are built.
