# Empty dependencies file for flotilla_core.
# This may be replaced when dependencies are built.
