file(REMOVE_RECURSE
  "CMakeFiles/flotilla_core.dir/agent.cpp.o"
  "CMakeFiles/flotilla_core.dir/agent.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/asyncflow.cpp.o"
  "CMakeFiles/flotilla_core.dir/asyncflow.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/pilot.cpp.o"
  "CMakeFiles/flotilla_core.dir/pilot.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/profiler.cpp.o"
  "CMakeFiles/flotilla_core.dir/profiler.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/service.cpp.o"
  "CMakeFiles/flotilla_core.dir/service.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/session.cpp.o"
  "CMakeFiles/flotilla_core.dir/session.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/task.cpp.o"
  "CMakeFiles/flotilla_core.dir/task.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/task_manager.cpp.o"
  "CMakeFiles/flotilla_core.dir/task_manager.cpp.o.d"
  "CMakeFiles/flotilla_core.dir/workflow.cpp.o"
  "CMakeFiles/flotilla_core.dir/workflow.cpp.o.d"
  "libflotilla_core.a"
  "libflotilla_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
