
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/flotilla_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/asyncflow.cpp" "src/core/CMakeFiles/flotilla_core.dir/asyncflow.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/asyncflow.cpp.o.d"
  "/root/repo/src/core/pilot.cpp" "src/core/CMakeFiles/flotilla_core.dir/pilot.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/pilot.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/flotilla_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/core/CMakeFiles/flotilla_core.dir/service.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/service.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/flotilla_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/session.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/flotilla_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/task.cpp.o.d"
  "/root/repo/src/core/task_manager.cpp" "src/core/CMakeFiles/flotilla_core.dir/task_manager.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/task_manager.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/flotilla_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/flotilla_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/flotilla_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flotilla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/flotilla_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/slurm/CMakeFiles/flotilla_slurm.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/flotilla_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/dragon/CMakeFiles/flotilla_dragon.dir/DependInfo.cmake"
  "/root/repo/build/src/prrte/CMakeFiles/flotilla_prrte.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flotilla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
