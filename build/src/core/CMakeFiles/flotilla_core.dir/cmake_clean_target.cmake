file(REMOVE_RECURSE
  "libflotilla_core.a"
)
