file(REMOVE_RECURSE
  "CMakeFiles/flotilla_flux.dir/flux_backend.cpp.o"
  "CMakeFiles/flotilla_flux.dir/flux_backend.cpp.o.d"
  "CMakeFiles/flotilla_flux.dir/instance.cpp.o"
  "CMakeFiles/flotilla_flux.dir/instance.cpp.o.d"
  "libflotilla_flux.a"
  "libflotilla_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
