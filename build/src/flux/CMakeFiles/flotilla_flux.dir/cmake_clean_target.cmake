file(REMOVE_RECURSE
  "libflotilla_flux.a"
)
