# Empty dependencies file for flotilla_flux.
# This may be replaced when dependencies are built.
