file(REMOVE_RECURSE
  "libflotilla_sim.a"
)
