file(REMOVE_RECURSE
  "CMakeFiles/flotilla_sim.dir/engine.cpp.o"
  "CMakeFiles/flotilla_sim.dir/engine.cpp.o.d"
  "CMakeFiles/flotilla_sim.dir/random.cpp.o"
  "CMakeFiles/flotilla_sim.dir/random.cpp.o.d"
  "CMakeFiles/flotilla_sim.dir/resource.cpp.o"
  "CMakeFiles/flotilla_sim.dir/resource.cpp.o.d"
  "CMakeFiles/flotilla_sim.dir/server.cpp.o"
  "CMakeFiles/flotilla_sim.dir/server.cpp.o.d"
  "CMakeFiles/flotilla_sim.dir/stats.cpp.o"
  "CMakeFiles/flotilla_sim.dir/stats.cpp.o.d"
  "CMakeFiles/flotilla_sim.dir/trace.cpp.o"
  "CMakeFiles/flotilla_sim.dir/trace.cpp.o.d"
  "libflotilla_sim.a"
  "libflotilla_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flotilla_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
