# Empty dependencies file for flotilla_sim.
# This may be replaced when dependencies are built.
