file(REMOVE_RECURSE
  "CMakeFiles/async_workflow.dir/async_workflow.cpp.o"
  "CMakeFiles/async_workflow.dir/async_workflow.cpp.o.d"
  "async_workflow"
  "async_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
