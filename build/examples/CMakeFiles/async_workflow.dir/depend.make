# Empty dependencies file for async_workflow.
# This may be replaced when dependencies are built.
