file(REMOVE_RECURSE
  "CMakeFiles/local_execution.dir/local_execution.cpp.o"
  "CMakeFiles/local_execution.dir/local_execution.cpp.o.d"
  "local_execution"
  "local_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
