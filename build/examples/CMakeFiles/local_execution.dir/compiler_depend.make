# Empty compiler generated dependencies file for local_execution.
# This may be replaced when dependencies are built.
