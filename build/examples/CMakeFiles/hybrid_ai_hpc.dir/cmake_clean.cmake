file(REMOVE_RECURSE
  "CMakeFiles/hybrid_ai_hpc.dir/hybrid_ai_hpc.cpp.o"
  "CMakeFiles/hybrid_ai_hpc.dir/hybrid_ai_hpc.cpp.o.d"
  "hybrid_ai_hpc"
  "hybrid_ai_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_ai_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
