# Empty dependencies file for hybrid_ai_hpc.
# This may be replaced when dependencies are built.
