// flotilla-lint: determinism lint for the DES core.
//
// The simulator's value is that a (scenario, seed) pair always produces the
// same event sequence and therefore the same metrics — the property the
// paper's overhead characterization depends on. This tool enforces, as hard
// errors, the source-level rules that protect it (see docs/correctness.md):
// wall-clock, unseeded-random, hardware-concurrency, real-sleep, and
// unordered-iteration.
//
// Since the flotilla-analyze framework landed, this binary is a thin
// compatibility front-end: the rule bodies live in
// src/analyze/determinism.cpp (on the real token stream, shared with
// flotilla-analyze) and this file only reproduces the historical CLI —
// same scope rules, same diagnostics, same exit codes — so existing
// scripts, CI jobs, and the `lint` CMake target keep working unchanged.
//
// Scope: when given a directory, only simulation code is checked —
// src/{sim,core,slurm,flux,prrte,platform,workloads,sched,check,obs,
// analyze}/ and src/dragon/*_backend.* — because the real-threaded
// execution layer legitimately touches the host. Files on the explicit
// allowlist (dragon/function_executor, local/process_pool, util/logging)
// are never checked, even when named directly. A single finding can be
// waived in place with
//   // FLOTILLA_LINT_ALLOW(rule-id): reason
// on the offending line; the reason is mandatory.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/determinism.hpp"
#include "analyze/driver.hpp"
#include "analyze/sarif.hpp"

namespace fs = std::filesystem;
namespace fa = flotilla::analyze;

namespace {

bool lintable_extension(const fs::path& path) {
  static const char* const kExts[] = {".cpp", ".cc", ".cxx", ".hpp",
                                      ".h",   ".hh", ".ipp"};
  const std::string ext = path.extension().string();
  for (const char* e : kExts) {
    if (ext == e) return true;
  }
  return false;
}

void usage() {
  std::cerr
      << "usage: flotilla-lint [--list-rules] <path>...\n"
      << "  Directories are scanned recursively; only simulation-scope\n"
      << "  files are checked. Files named explicitly are always checked\n"
      << "  (unless allowlisted).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : fa::DeterminismPass().rules()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  // Historical collection semantics: directory scans apply the simulation
  // scope and allowlist; explicit files bypass the scope (naming a file is
  // an instruction to check it) but never the allowlist.
  std::vector<std::string> files;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        if (!lintable_extension(entry.path())) continue;
        const std::string path = entry.path().generic_string();
        if (fa::determinism_in_scope(path) &&
            !fa::determinism_allowlisted(path)) {
          files.push_back(path);
        }
      }
    } else if (fs::is_regular_file(root)) {
      const std::string path = root.generic_string();
      if (!fa::determinism_allowlisted(path)) files.push_back(path);
    } else {
      std::cerr << "flotilla-lint: no such path: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  fa::AnalysisInput input;
  input.files.reserve(files.size());
  for (const std::string& path : files) {
    fa::SourceFile file;
    std::string error;
    if (!fa::load_source(path, path, &file, &error)) {
      std::cerr << "flotilla-lint: cannot read " << path << "\n";
      return 2;
    }
    input.files.push_back(std::move(file));
  }

  std::vector<fa::Finding> findings;
  for (const fa::SourceFile& file : input.files) {
    fa::DeterminismPass::check_file(file, &findings);
  }
  fa::filter_waived(input, &findings);
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()),
                 findings.end());

  fa::write_text(std::cout, findings);
  std::cerr << "flotilla-lint: " << input.files.size()
            << " file(s) checked, " << findings.size() << " issue(s)\n";
  return findings.empty() ? 0 : 1;
}
