// flotilla-lint: determinism lint for the DES core.
//
// The simulator's value is that a (scenario, seed) pair always produces the
// same event sequence and therefore the same metrics — the property the
// paper's overhead characterization depends on. This tool enforces, as hard
// errors, the source-level rules that protect it (see docs/correctness.md):
//
//   wall-clock            no std::chrono::{system,steady,high_resolution}_clock,
//                         time(), gettimeofday(), clock_gettime(), ... in
//                         simulation code; simulated time comes from
//                         sim::Engine::now().
//   unseeded-random       no rand()/srand()/std::random_device/drand48();
//                         randomness comes from seeded sim::RngStream.
//   hardware-concurrency  no std::thread::hardware_concurrency(); worker
//                         counts come from configuration, not the host.
//   real-sleep            no sleep_for/sleep_until/usleep/nanosleep;
//                         delays are simulated events.
//   unordered-iteration   no range-for over a std::unordered_map/set
//                         declared in the file (or its paired header);
//                         hash order must not feed event ordering — iterate
//                         util::sorted_keys() or use an ordered container.
//
// Deliberately token/regex-level (no libclang): it must build anywhere the
// repo builds and run in milliseconds as a CI gate. Comments and string
// literals are stripped before matching, so prose never trips it.
//
// Scope: when given a directory, only simulation code is checked —
// src/{sim,core,slurm,flux,prrte,platform,workloads}/ and
// src/dragon/*_backend.* — because the real-threaded execution layer
// legitimately touches the host (wall clocks for process runtimes, worker
// threads). Files on the explicit allowlist (dragon/function_executor,
// local/process_pool, util/logging) are never checked, even when named
// directly. A single finding can be waived in place with
//   // FLOTILLA_LINT_ALLOW(rule-id): reason
// on the offending line; the reason is mandatory.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Scope / allowlist
// ---------------------------------------------------------------------------

// Normalize to forward slashes so matching works on any platform.
std::string normalized(const fs::path& path) {
  std::string out = path.generic_string();
  return out;
}

// Real-threaded execution layer: exempt from determinism rules by design.
const char* const kAllowlist[] = {
    "dragon/function_executor",
    "local/process_pool",
    "util/logging",
};

bool allowlisted(const std::string& path) {
  for (const char* entry : kAllowlist) {
    if (path.find(entry) != std::string::npos) return true;
  }
  return false;
}

// Directories whose code is simulation code (checked when scanning a tree).
const char* const kScopedDirs[] = {
    "src/sim/",   "src/core/",     "src/slurm/",     "src/flux/",
    "src/prrte/", "src/platform/", "src/workloads/", "src/sched/",
    "src/check/", "src/obs/",
};

bool in_scope(const std::string& path) {
  for (const char* dir : kScopedDirs) {
    if (path.find(dir) != std::string::npos) return true;
  }
  // Dragon is split: the simulated backend is scoped, the threaded
  // executor/queue/channel layer is not.
  if (path.find("src/dragon/") != std::string::npos) {
    const auto slash = path.rfind('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return base.find("_backend.") != std::string::npos;
  }
  return false;
}

bool lintable_extension(const fs::path& path) {
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx",
                                              ".hpp", ".h",  ".hh", ".ipp"};
  return kExts.count(path.extension().string()) > 0;
}

// ---------------------------------------------------------------------------
// Comment / literal stripping
// ---------------------------------------------------------------------------

// Replaces comments and string/char literal contents with spaces, keeping
// every newline so line numbers survive. Handles // and /* */ comments,
// "..." and '...' literals with escapes, and R"delim(...)delim" raw strings.
std::string strip_comments_and_literals(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(src[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t open = src.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delim = ")" + src.substr(i + 2, open - i - 2) + "\"";
          for (std::size_t j = i; j <= open && j < src.size(); ++j) {
            if (src[j] != '\n') out[j] = ' ';
          }
          i = open;
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && std::isdigit(static_cast<unsigned char>(
                                               src[i - 1])))) {
          // (digit separators like 1'000'000 are not char literals)
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && src[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size() && src[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = i; j < i + raw_delim.size(); ++j) out[j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

// ---------------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------------

struct TokenRule {
  const char* rule;     // diagnostic id
  const char* token;    // identifier to find (boundary-checked)
  bool call_only;       // require '(' after the token, and reject member calls
  const char* message;
};

const TokenRule kTokenRules[] = {
    {"wall-clock", "system_clock", false,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "steady_clock", false,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "high_resolution_clock", false,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "gettimeofday", true,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "clock_gettime", true,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "timespec_get", true,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "time", true,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "localtime", true,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"wall-clock", "gmtime", true,
     "wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now()"},
    {"unseeded-random", "random_device", false,
     "nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream"},
    {"unseeded-random", "rand", true,
     "nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream"},
    {"unseeded-random", "srand", true,
     "nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream"},
    {"unseeded-random", "drand48", true,
     "nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream"},
    {"unseeded-random", "lrand48", true,
     "nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream"},
    {"unseeded-random", "srandom", true,
     "nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream"},
    {"hardware-concurrency", "hardware_concurrency", false,
     "host-dependent concurrency breaks reproducibility; take worker counts "
     "from configuration"},
    {"real-sleep", "sleep_for", true,
     "real sleeping in simulation code; model delays as simulated events"},
    {"real-sleep", "sleep_until", true,
     "real sleeping in simulation code; model delays as simulated events"},
    {"real-sleep", "usleep", true,
     "real sleeping in simulation code; model delays as simulated events"},
    {"real-sleep", "nanosleep", true,
     "real sleeping in simulation code; model delays as simulated events"},
};

// True when code[pos..] starts the identifier `token` on a word boundary.
bool matches_token(const std::string& code, std::size_t pos,
                   const TokenRule& rule) {
  const std::size_t len = std::string::traits_type::length(rule.token);
  if (pos > 0 && is_ident_char(code[pos - 1])) return false;
  if (pos + len < code.size() && is_ident_char(code[pos + len])) return false;
  if (!rule.call_only) return true;
  // Call form: reject member calls (x.time(), x->time()) which are usually
  // project APIs, accept free and qualified calls (time(), std::time()).
  if (pos >= 1 && code[pos - 1] == '.') return false;
  if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>') return false;
  std::size_t after = pos + len;
  while (after < code.size() &&
         std::isspace(static_cast<unsigned char>(code[after]))) {
    ++after;
  }
  return after < code.size() && code[after] == '(';
}

// ---------------------------------------------------------------------------
// unordered-iteration rule
// ---------------------------------------------------------------------------

// Collects names declared with std::unordered_{map,set,multimap,multiset}.
void collect_unordered_decls(const std::string& code,
                             std::set<std::string>* names) {
  static const char* const kContainers[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const char* container : kContainers) {
    const std::size_t token_len = std::string::traits_type::length(container);
    std::size_t pos = 0;
    while ((pos = code.find(container, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += token_len;
      if (start > 0 && is_ident_char(code[start - 1])) continue;
      if (pos >= code.size() || code[pos] != '<') continue;
      // Balance the template argument list.
      int depth = 0;
      std::size_t i = pos;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) break;
      }
      if (i >= code.size()) continue;
      ++i;  // past '>'
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      if (code.compare(i, 2, "::") == 0) continue;  // ::iterator etc.
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) ++i;
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      std::size_t name_begin = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      if (i == name_begin) continue;
      const std::string name = code.substr(name_begin, i - name_begin);
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i]))) {
        ++i;
      }
      // Declarator endings: member/local (;, =, {), parameter (,, )).
      if (i < code.size() && (code[i] == ';' || code[i] == '=' ||
                              code[i] == '{' || code[i] == ',' ||
                              code[i] == ')')) {
        names->insert(name);
      }
    }
  }
}

// Final identifier component of a range expression ("a.b->c_" -> "c_"),
// or empty when the expression is not a plain member/variable chain.
std::string trailing_identifier(std::string expr) {
  while (!expr.empty() &&
         std::isspace(static_cast<unsigned char>(expr.back()))) {
    expr.pop_back();
  }
  if (expr.empty() || !is_ident_char(expr.back())) return {};
  std::size_t begin = expr.size();
  while (begin > 0 && is_ident_char(expr[begin - 1])) --begin;
  return expr.substr(begin);
}

void check_unordered_iteration(const std::string& path,
                               const std::string& code,
                               const std::set<std::string>& unordered_names,
                               std::vector<Diagnostic>* diags) {
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 3;
    if (start > 0 && is_ident_char(code[start - 1])) continue;
    if (pos < code.size() && is_ident_char(code[pos])) continue;
    std::size_t open = pos;
    while (open < code.size() &&
           std::isspace(static_cast<unsigned char>(code[open]))) {
      ++open;
    }
    if (open >= code.size() || code[open] != '(') continue;
    // Find the matching ')' and the top-level ':' (range-for separator).
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    bool classic_for = false;
    for (std::size_t i = open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          close = i;
          break;
        }
      }
      if (depth == 1 && colon == std::string::npos) {
        if (c == ';') {
          classic_for = true;  // init-statement: not a range-for
          break;
        }
        if (c == ':' && (i == 0 || code[i - 1] != ':') &&
            (i + 1 >= code.size() || code[i + 1] != ':')) {
          colon = i;
        }
      }
    }
    if (classic_for || colon == std::string::npos ||
        close == std::string::npos) {
      continue;
    }
    const std::string range_expr =
        code.substr(colon + 1, close - colon - 1);
    std::string victim;
    if (range_expr.find("unordered_") != std::string::npos) {
      victim = "<unordered container expression>";
    } else {
      const std::string name = trailing_identifier(range_expr);
      if (!name.empty() && unordered_names.count(name) > 0) victim = name;
    }
    if (!victim.empty()) {
      diags->push_back(
          {path, line_of(code, start), "unordered-iteration",
           "iteration over unordered container '" + victim +
               "' can feed event ordering; iterate util::sorted_keys() or "
               "use an ordered container"});
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------------

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// A waiver comment on the diagnostic's line: FLOTILLA_LINT_ALLOW(rule): why
bool waived(const std::string& raw, std::size_t line, const std::string& rule) {
  std::size_t begin = 0;
  for (std::size_t n = 1; n < line; ++n) {
    begin = raw.find('\n', begin);
    if (begin == std::string::npos) return false;
    ++begin;
  }
  std::size_t end = raw.find('\n', begin);
  const std::string text = raw.substr(
      begin, end == std::string::npos ? std::string::npos : end - begin);
  const std::string tag = "FLOTILLA_LINT_ALLOW(";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return false;
  const std::size_t close = text.find(')', at);
  if (close == std::string::npos) return false;
  const std::string id = text.substr(at + tag.size(), close - at - tag.size());
  if (id != rule && id != "*") return false;
  // The reason is mandatory: require ": <text>" after the closing paren.
  std::size_t reason = close + 1;
  if (reason >= text.size() || text[reason] != ':') return false;
  ++reason;
  while (reason < text.size() &&
         std::isspace(static_cast<unsigned char>(text[reason]))) {
    ++reason;
  }
  return reason < text.size();
}

void lint_file(const fs::path& path, std::vector<Diagnostic>* diags) {
  std::string raw;
  if (!read_file(path, &raw)) {
    std::cerr << "flotilla-lint: cannot read " << path << "\n";
    std::exit(2);
  }
  const std::string code = strip_comments_and_literals(raw);
  const std::string display = normalized(path);

  std::vector<Diagnostic> found;
  for (const TokenRule& rule : kTokenRules) {
    std::size_t pos = 0;
    while ((pos = code.find(rule.token, pos)) != std::string::npos) {
      if (matches_token(code, pos, rule)) {
        found.push_back({display, line_of(code, pos), rule.rule, rule.message});
      }
      pos += std::string::traits_type::length(rule.token);
    }
  }

  std::set<std::string> unordered_names;
  collect_unordered_decls(code, &unordered_names);
  // Members are usually declared in the paired header.
  const std::string ext = path.extension().string();
  if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
    for (const char* header_ext : {".hpp", ".h", ".hh"}) {
      fs::path header = path;
      header.replace_extension(header_ext);
      std::string header_raw;
      if (fs::exists(header) && read_file(header, &header_raw)) {
        collect_unordered_decls(strip_comments_and_literals(header_raw),
                                &unordered_names);
        break;
      }
    }
  }
  check_unordered_iteration(display, code, unordered_names, &found);

  for (Diagnostic& diag : found) {
    if (!waived(raw, diag.line, diag.rule)) diags->push_back(std::move(diag));
  }
}

void usage() {
  std::cerr
      << "usage: flotilla-lint [--list-rules] <path>...\n"
      << "  Directories are scanned recursively; only simulation-scope\n"
      << "  files are checked. Files named explicitly are always checked\n"
      << "  (unless allowlisted).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      std::set<std::string> rules{"unordered-iteration"};
      for (const TokenRule& rule : kTokenRules) rules.insert(rule.rule);
      for (const auto& rule : rules) std::cout << rule << "\n";
      return 0;
    }
    if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        if (!lintable_extension(entry.path())) continue;
        const std::string path = normalized(entry.path());
        if (in_scope(path) && !allowlisted(path)) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      if (!allowlisted(normalized(root))) files.push_back(root);
    } else {
      std::cerr << "flotilla-lint: no such path: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> diags;
  for (const fs::path& file : files) lint_file(file, &diags);
  std::sort(diags.begin(), diags.end(), [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });

  for (const Diagnostic& diag : diags) {
    std::cout << diag.file << ":" << diag.line << ": error: [" << diag.rule
              << "] " << diag.message << "\n";
  }
  std::cerr << "flotilla-lint: " << files.size() << " file(s) checked, "
            << diags.size() << " issue(s)\n";
  return diags.empty() ? 0 : 1;
}
