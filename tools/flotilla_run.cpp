// flotilla-run: command-line experiment driver.
//
// Runs a workload against a runtime configuration and prints the paper's
// three metrics plus the session-report overhead breakdown — the tool a
// downstream user reaches for before writing code against the API.
//
//   $ flotilla-run --backend flux --nodes 64 --partitions 4
//                  --workload dummy --tasks 14336 --duration 180
//   $ flotilla-run --workload impeccable --backend srun --nodes 256
//   $ flotilla-run --workload trace --trace-file workload.csv
#include <fstream>
#include <iostream>
#include <sstream>

#include "analytics/session_report.hpp"
#include "core/flotilla.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"
#include "platform/spec_config.hpp"
#include "util/cli.hpp"
#include "workloads/impeccable.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/trace_replay.hpp"

using namespace flotilla;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Run a Flotilla workload against a runtime configuration.");
  cli.option("backend", "flux", "srun | flux | dragon | prrte | hybrid")
      .option("nodes", "16", "pilot size in nodes")
      .option("partitions", "1", "flux/dragon instances")
      .option("workload", "null", "null | dummy | mixed | impeccable | trace")
      .option("tasks", "0", "task count (0 = nodes*56*4)")
      .option("duration", "180", "dummy task duration [s]")
      .option("cores", "1", "cores per synthetic task")
      .option("seed", "42", "deterministic RNG seed")
      .option("platform", "frontier", "frontier | summit | generic")
      .option("config", "",
              "key=value file overriding platform.* and calibration keys")
      .option("trace-file", "", "CSV trace for --workload trace")
      .option("router", "static", "static | adaptive")
      .option("trace", "", "write a Chrome trace_event JSON to this path")
      .option("prof", "", "write an RP-profiler-style .prof CSV to this path")
      .option("trace-capacity", "0",
              "trace ring-buffer capacity in records (0 = default 1M)")
      .flag("report", "print the per-phase session report");

  try {
    if (!cli.parse(argc, argv)) return 0;

    const auto nodes = static_cast<int>(cli.get_int("nodes"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    auto spec = platform::spec_by_name(cli.get("platform"));
    auto calibration = platform::frontier_calibration();
    if (!cli.get("config").empty()) {
      std::ifstream file(cli.get("config"));
      if (!file) {
        std::cerr << "cannot open --config '" << cli.get("config") << "'\n";
        return 2;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      const auto config = util::Config::from_text(buffer.str());
      if (config.has("platform.name") ||
          !config.subset("platform").entries().empty()) {
        spec = platform::spec_from_config(config);
      }
      calibration = platform::calibration_from_config(config);
    }
    core::Session session(spec, nodes, seed, calibration);
    const auto trace_path = cli.get("trace");
    const auto prof_path = cli.get("prof");
    const bool tracing = !trace_path.empty() || !prof_path.empty();
    if (tracing) {
      // Must happen before pilots/task managers exist: components capture
      // the trace handle at construction.
      const auto capacity = cli.get_int("trace-capacity");
      session.enable_tracing(capacity > 0
                                 ? static_cast<std::size_t>(capacity)
                                 : obs::Tracer::kDefaultCapacity);
    }
    core::PilotManager pmgr(session);

    core::PilotDescription pdesc;
    pdesc.nodes = nodes;
    const auto backend = cli.get("backend");
    const auto partitions = static_cast<int>(cli.get_int("partitions"));
    if (backend == "hybrid") {
      pdesc.backends = {
          {.type = "flux", .partitions = partitions, .nodes = nodes / 2},
          {.type = "dragon", .partitions = 1, .nodes = nodes - nodes / 2}};
    } else if (backend == "flux" || backend == "dragon") {
      pdesc.backends = {{.type = backend, .partitions = partitions}};
    } else if (backend == "srun" || backend == "prrte") {
      pdesc.backends = {{backend}};
    } else {
      std::cerr << "unknown --backend " << backend << "\n";
      return 2;
    }
    pdesc.router = cli.get("router") == "adaptive"
                       ? core::RouterPolicy::kAdaptive
                       : core::RouterPolicy::kStatic;

    auto& pilot = pmgr.submit(std::move(pdesc));
    bool ready = false;
    std::string error;
    pilot.launch([&](bool ok, const std::string& e) {
      ready = ok;
      error = e;
    });
    session.run(600.0);
    if (!ready) {
      std::cerr << "pilot failed to launch: " << error << "\n";
      return 1;
    }
    core::TaskManager tmgr(session, pilot.agent());
    tmgr.on_complete([](const core::Task&) {});

    const auto workload = cli.get("workload");
    auto tasks = static_cast<int>(cli.get_int("tasks"));
    if (tasks == 0) tasks = workloads::paper_task_count(nodes);
    const double duration = cli.get_double("duration");
    const auto cores = cli.get_int("cores");

    if (workload == "null") {
      tmgr.submit(workloads::uniform_tasks(tasks, 0.0, cores));
    } else if (workload == "dummy") {
      tmgr.submit(workloads::uniform_tasks(tasks, duration, cores));
    } else if (workload == "mixed") {
      tmgr.submit(workloads::mixed_tasks(tasks, duration));
    } else if (workload == "impeccable") {
      auto plan = workloads::impeccable_plan(nodes);
      static core::Workflow workflow(tmgr);
      workloads::build_impeccable(workflow, plan);
      workflow.start();
    } else if (workload == "trace") {
      std::ifstream file(cli.get("trace-file"));
      if (!file) {
        std::cerr << "cannot open --trace-file '" << cli.get("trace-file")
                  << "'\n";
        return 2;
      }
      workloads::replay(tmgr, workloads::parse_trace(file), session.now());
    } else {
      std::cerr << "unknown --workload " << workload << "\n";
      return 2;
    }

    session.run();

    const auto& metrics = pilot.agent().profiler().metrics();
    std::cout << "backend=" << backend << " nodes=" << nodes
              << " workload=" << workload << "\n"
              << "  tasks done/failed:  " << metrics.tasks_done() << "/"
              << metrics.tasks_failed() << "\n"
              << "  throughput avg/peak: " << metrics.avg_throughput()
              << " / " << metrics.peak_throughput() << " tasks/s\n"
              << "  utilization CPU/GPU: "
              << 100.0 * metrics.core_utilization(pilot.total_cores())
              << "% / "
              << 100.0 * metrics.gpu_utilization(pilot.total_gpus())
              << "%\n"
              << "  makespan:            " << metrics.makespan() << " s\n";

    if (cli.get_flag("report")) {
      analytics::SessionReport report;
      tmgr.for_each_task(
          [&](const core::Task& task) { report.add(task); });
      report.print(std::cout);
      if (tracing) {
        obs::OverheadReport::from_trace(*session.tracer()).print(std::cout);
      }
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot open --trace '" << trace_path << "'\n";
        return 2;
      }
      obs::write_chrome_trace(*session.tracer(), out);
      std::cout << "  trace:               " << trace_path << " ("
                << session.tracer()->size() << " records, "
                << session.tracer()->dropped() << " dropped)\n";
    }
    if (!prof_path.empty()) {
      std::ofstream out(prof_path);
      if (!out) {
        std::cerr << "cannot open --prof '" << prof_path << "'\n";
        return 2;
      }
      obs::write_prof(*session.tracer(), out);
      std::cout << "  prof:                " << prof_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
