// flotilla-run: command-line experiment driver.
//
// Runs a workload against a runtime configuration and prints the paper's
// three metrics plus the session-report overhead breakdown — the tool a
// downstream user reaches for before writing code against the API.
//
//   $ flotilla-run --backend flux --nodes 64 --partitions 4
//                  --workload dummy --tasks 14336 --duration 180
//   $ flotilla-run --workload impeccable --backend srun --nodes 256
//   $ flotilla-run --workload trace --trace-file workload.csv
//   $ flotilla-run --backend hybrid --engine-shards 4 --engine-threads 4
#include <fstream>
#include <iostream>
#include <sstream>

#include "analytics/session_report.hpp"
#include "core/flotilla.hpp"
#include "ingress/ingress.hpp"
#include "journal/recovery.hpp"
#include "journal/scribe.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"
#include "platform/spec_config.hpp"
#include "util/cli.hpp"
#include "workloads/impeccable.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/trace_replay.hpp"

using namespace flotilla;

int main(int argc, char** argv) {
  util::CliParser cli(
      "Run a Flotilla workload against a runtime configuration.");
  cli.option("backend", "flux", "srun | flux | dragon | prrte | hybrid")
      .option("nodes", "16", "pilot size in nodes")
      .option("partitions", "1", "flux/dragon instances")
      .option("workload", "null", "null | dummy | mixed | impeccable | trace")
      .option("tasks", "0", "task count (0 = nodes*56*4)")
      .option("duration", "180", "dummy task duration [s]")
      .option("cores", "1", "cores per synthetic task")
      .option("seed", "42", "deterministic RNG seed")
      .option("platform", "frontier", "frontier | summit | generic")
      .option("config", "",
              "key=value file overriding platform.* and calibration keys")
      .option("trace-file", "", "CSV trace for --workload trace")
      .option("router", "static", "static | adaptive")
      .option("clients", "0",
              "service-mode ingress: client population size (0 = classic "
              "one-shot submit; see docs/ingress.md)")
      .option("arrival", "poisson",
              "arrival process, kind[:param] — poisson|diurnal|bursty with "
              "an aggregate rate [tasks/s], or closed with a think time [s]")
      .option("admit", "reject",
              "admission policy, policy[:capacity] — reject|defer against "
              "a bounded intake queue")
      .option("trace", "", "write a Chrome trace_event JSON to this path")
      .option("prof", "", "write an RP-profiler-style .prof CSV to this path")
      .option("trace-capacity", "0",
              "trace ring-buffer capacity in records (0 = default 1M)")
      .option("engine-shards", "1",
              "partition the engine's event calendar (docs/sharding.md); "
              "the schedule is identical for any shard count")
      .option("engine-threads", "1",
              "worker threads draining shard rounds concurrently — safe "
              "under the machine-checked confinement proofs "
              "(docs/correctness.md#confinement-proofs); incompatible with "
              "--journal, --recover, --trace and --prof (event-order "
              "observers)")
      .option("journal", "",
              "record a durable event journal to this path (docs/recovery.md)")
      .option("recover", "",
              "recover from a journal at this path: re-execute the run, "
              "validating every record against the surviving prefix "
              "(requires the same flags as the journaled run)")
      .flag("report", "print the per-phase session report");

  try {
    if (!cli.parse(argc, argv)) return 0;

    const auto nodes = static_cast<int>(cli.get_int("nodes"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    auto spec = platform::spec_by_name(cli.get("platform"));
    auto calibration = platform::frontier_calibration();
    if (!cli.get("config").empty()) {
      std::ifstream file(cli.get("config"));
      if (!file) {
        std::cerr << "cannot open --config '" << cli.get("config") << "'\n";
        return 2;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      const auto config = util::Config::from_text(buffer.str());
      if (config.has("platform.name") ||
          !config.subset("platform").entries().empty()) {
        spec = platform::spec_from_config(config);
      }
      calibration = platform::calibration_from_config(config);
    }
    const auto engine_shards = static_cast<int>(cli.get_int("engine-shards"));
    const auto engine_threads =
        static_cast<int>(cli.get_int("engine-threads"));
    const auto trace_path = cli.get("trace");
    const auto prof_path = cli.get("prof");
    const bool tracing = !trace_path.empty() || !prof_path.empty();
    if (engine_threads > 1) {
      // The scribe and the tracer's progress probe observe the run from
      // between events; under a threaded drain they would race with the
      // worker pool. The confinement proofs cover the simulation state,
      // not these host-side observers.
      if (!cli.get("journal").empty() || !cli.get("recover").empty()) {
        std::cerr << "--engine-threads > 1 is incompatible with "
                     "--journal/--recover\n";
        return 2;
      }
      if (tracing) {
        std::cerr << "--engine-threads > 1 is incompatible with "
                     "--trace/--prof\n";
        return 2;
      }
    }
    core::Session session(spec, nodes, seed, calibration, engine_shards,
                          engine_threads);
    if (tracing) {
      // Must happen before pilots/task managers exist: components capture
      // the trace handle at construction.
      const auto capacity = cli.get_int("trace-capacity");
      session.enable_tracing(capacity > 0
                                 ? static_cast<std::size_t>(capacity)
                                 : obs::Tracer::kDefaultCapacity);
    }
    // Durable journal / recovery (docs/recovery.md). The header records
    // the tool settings that shape the run; --recover demands they match
    // the journaled run's, since recovery re-executes from the seed.
    const auto journal_path = cli.get("journal");
    const auto recover_path = cli.get("recover");
    if (!journal_path.empty() && !recover_path.empty()) {
      std::cerr << "--journal and --recover are mutually exclusive\n";
      return 2;
    }
    const std::string settings_line =
        "tool=flotilla-run;backend=" + cli.get("backend") +
        ";nodes=" + std::to_string(nodes) +
        ";partitions=" + cli.get("partitions") +
        ";workload=" + cli.get("workload") +
        ";tasks=" + cli.get("tasks") + ";duration=" + cli.get("duration") +
        ";cores=" + cli.get("cores") + ";seed=" + std::to_string(seed) +
        ";router=" + cli.get("router") + ";clients=" + cli.get("clients") +
        ";arrival=" + cli.get("arrival") + ";admit=" + cli.get("admit");
    std::unique_ptr<journal::RecoveryManager> recovery;
    std::unique_ptr<journal::Scribe> scribe;
    if (!recover_path.empty()) {
      std::ifstream in(recover_path, std::ios::binary);
      if (!in) {
        std::cerr << "cannot open --recover '" << recover_path << "'\n";
        return 2;
      }
      std::stringstream bytes;
      bytes << in.rdbuf();
      recovery = std::make_unique<journal::RecoveryManager>(bytes.str());
      if (recovery->spec_line() != settings_line ||
          recovery->seed() != seed) {
        std::cerr << "journal was recorded with different settings:\n  "
                  << recovery->spec_line() << "\nthis invocation:\n  "
                  << settings_line << "\n";
        return 2;
      }
      const auto image = recovery->image();
      std::cout << "recovering from " << recover_path << ": "
                << recovery->prefix().size() << " records ("
                << image.tasks.size() << " tasks journaled, "
                << image.tasks_in_flight() << " in flight"
                << (recovery->truncated()
                        ? ", torn tail of " +
                              std::to_string(recovery->truncated_bytes()) +
                              " bytes discarded"
                        : "")
                << ")\n";
      scribe = std::make_unique<journal::Scribe>(session,
                                                 recovery->prefix());
    } else if (!journal_path.empty()) {
      scribe = std::make_unique<journal::Scribe>(session);
    }
    if (scribe) scribe->record_header(seed, settings_line);

    core::PilotManager pmgr(session);

    core::PilotDescription pdesc;
    pdesc.nodes = nodes;
    const auto backend = cli.get("backend");
    const auto partitions = static_cast<int>(cli.get_int("partitions"));
    if (backend == "hybrid") {
      pdesc.backends = {
          {.type = "flux", .partitions = partitions, .nodes = nodes / 2},
          {.type = "dragon", .partitions = 1, .nodes = nodes - nodes / 2}};
    } else if (backend == "flux" || backend == "dragon") {
      pdesc.backends = {{.type = backend, .partitions = partitions}};
    } else if (backend == "srun" || backend == "prrte") {
      pdesc.backends = {{backend}};
    } else {
      std::cerr << "unknown --backend " << backend << "\n";
      return 2;
    }
    pdesc.router = cli.get("router") == "adaptive"
                       ? core::RouterPolicy::kAdaptive
                       : core::RouterPolicy::kStatic;

    auto& pilot = pmgr.submit(std::move(pdesc));
    bool ready = false;
    std::string error;
    pilot.launch([&](bool ok, const std::string& e) {
      ready = ok;
      error = e;
    });
    session.run(600.0);
    if (!ready) {
      std::cerr << "pilot failed to launch: " << error << "\n";
      return 1;
    }
    if (scribe) scribe->record_ready();
    core::TaskManager tmgr(session, pilot.agent());
    if (scribe) scribe->attach(tmgr);
    tmgr.on_complete([](const core::Task&) {});

    const auto workload = cli.get("workload");
    auto tasks = static_cast<int>(cli.get_int("tasks"));
    if (tasks == 0) tasks = workloads::paper_task_count(nodes);
    const double duration = cli.get_double("duration");
    const auto cores = cli.get_int("cores");

    // Service-mode ingress (docs/ingress.md): --clients > 0 drives the
    // synthetic workload through an arrival process with admission
    // control instead of one up-front submit. Workflow-shaped workloads
    // (impeccable, trace) schedule their own submissions and are
    // incompatible with an arrival process.
    const auto clients = static_cast<int>(cli.get_int("clients"));
    std::unique_ptr<ingress::IngressService> ingress_svc;
    if (clients > 0) {
      if (workload != "null" && workload != "dummy" && workload != "mixed") {
        std::cerr << "--clients requires --workload null|dummy|mixed\n";
        return 2;
      }
      ingress::IngressConfig icfg;
      icfg.clients = clients;
      icfg.total_offers = tasks;
      icfg.arrival = ingress::ArrivalConfig::parse(cli.get("arrival"));
      icfg.admit = ingress::AdmitConfig::parse(cli.get("admit"));
      ingress_svc = std::make_unique<ingress::IngressService>(session, tmgr,
                                                              icfg);
      const double proto_duration = workload == "null" ? 0.0 : duration;
      ingress_svc->start(workload == "mixed"
                             ? workloads::mixed_tasks(tasks, duration)
                             : workloads::uniform_tasks(tasks, proto_duration,
                                                        cores));
    } else if (workload == "null") {
      tmgr.submit(workloads::uniform_tasks(tasks, 0.0, cores));
    } else if (workload == "dummy") {
      tmgr.submit(workloads::uniform_tasks(tasks, duration, cores));
    } else if (workload == "mixed") {
      tmgr.submit(workloads::mixed_tasks(tasks, duration));
    } else if (workload == "impeccable") {
      auto plan = workloads::impeccable_plan(nodes);
      static core::Workflow workflow(tmgr);
      workloads::build_impeccable(workflow, plan);
      workflow.start();
    } else if (workload == "trace") {
      std::ifstream file(cli.get("trace-file"));
      if (!file) {
        std::cerr << "cannot open --trace-file '" << cli.get("trace-file")
                  << "'\n";
        return 2;
      }
      workloads::replay(tmgr, workloads::parse_trace(file), session.now());
    } else {
      std::cerr << "unknown --workload " << workload << "\n";
      return 2;
    }

    session.run();

    const auto& final_metrics = pilot.agent().profiler().metrics();
    if (scribe) {
      scribe->record_end(
          static_cast<std::int64_t>(final_metrics.tasks_done()),
          static_cast<std::int64_t>(final_metrics.tasks_failed()), 0,
          session.engine().processed());
    }
    if (!journal_path.empty()) {
      std::ofstream out(journal_path, std::ios::binary);
      if (!out) {
        std::cerr << "cannot open --journal '" << journal_path << "'\n";
        return 2;
      }
      out << scribe->writer().bytes();
      std::cout << "journal: " << journal_path << " (" << scribe->records()
                << " records, " << scribe->writer().bytes().size()
                << " bytes)\n";
    }
    if (recovery) {
      if (scribe->diverged()) {
        const auto& d = scribe->divergence();
        std::cerr << "recovery FAILED: replay diverged from the journal at "
                  << "record #" << d.index << "\n  expected: " << d.expected
                  << "  got:      " << d.got;
        return 1;
      }
      if (!scribe->replay_complete()) {
        std::cerr << "recovery FAILED: replay ended after "
                  << scribe->cursor() << " of "
                  << recovery->prefix().size() << " journaled records\n";
        return 1;
      }
      std::cout << "recovery ok: " << recovery->prefix().size()
                << " journaled records validated, run continued to "
                << scribe->records() << " records\n";
    }

    const auto& metrics = pilot.agent().profiler().metrics();
    std::cout << "backend=" << backend << " nodes=" << nodes
              << " workload=" << workload << "\n"
              << "  tasks done/failed:  " << metrics.tasks_done() << "/"
              << metrics.tasks_failed() << "\n"
              << "  throughput avg/peak: " << metrics.avg_throughput()
              << " / " << metrics.peak_throughput() << " tasks/s\n"
              << "  utilization CPU/GPU: "
              << 100.0 * metrics.core_utilization(pilot.total_cores())
              << "% / "
              << 100.0 * metrics.gpu_utilization(pilot.total_gpus())
              << "%\n"
              << "  makespan:            " << metrics.makespan() << " s\n";
    if (ingress_svc) {
      const auto istats = ingress_svc->stats();
      const auto& lat = ingress_svc->submit_to_launch();
      std::cout << "  ingress offers:      " << istats.offered << " ("
                << istats.accepted << " accepted, " << istats.rejected
                << " rejected, " << istats.deferred << " deferred; "
                << istats.batches << " intake batches)\n"
                << "  submit->launch:      p50=" << lat.percentile(0.50)
                << "s p99=" << lat.percentile(0.99)
                << "s p999=" << lat.percentile(0.999) << "s\n";
    }

    if (cli.get_flag("report")) {
      analytics::SessionReport report;
      tmgr.for_each_task(
          [&](const core::Task& task) { report.add(task); });
      report.print(std::cout);
      if (tracing) {
        obs::OverheadReport::from_trace(*session.tracer()).print(std::cout);
      }
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot open --trace '" << trace_path << "'\n";
        return 2;
      }
      obs::write_chrome_trace(*session.tracer(), out);
      std::cout << "  trace:               " << trace_path << " ("
                << session.tracer()->size() << " records, "
                << session.tracer()->dropped() << " dropped)\n";
    }
    if (!prof_path.empty()) {
      std::ofstream out(prof_path);
      if (!out) {
        std::cerr << "cannot open --prof '" << prof_path << "'\n";
        return 2;
      }
      obs::write_prof(*session.tracer(), out);
      std::cout << "  prof:                " << prof_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
