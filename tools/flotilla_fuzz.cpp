// flotilla-fuzz: randomized simulation testing for the Flotilla runtime.
//
// Generates seeded scenarios (src/check/generator.hpp), runs each under
// the invariant monitor plus the determinism oracle (every spec runs
// twice; traces must match bit-for-bit), and on failure greedily shrinks
// the scenario to a minimal replayable spec:
//
//   flotilla-fuzz --scenarios 500                  # fuzz seeds 1..500
//   flotilla-fuzz --replay 'seed=7;nodes=2;...'    # re-run one spec
//   flotilla-fuzz --crash-all 'seed=7;nodes=2;...' # crash at EVERY record
//
// Exit codes: 0 = all scenarios clean, 1 = a failure was found (the
// minimized spec and its replay command are printed, and written to
// --minimized-out when given), 2 = usage error.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "check/generator.hpp"
#include "check/runner.hpp"
#include "check/shrinker.hpp"
#include "check/spec.hpp"
#include "sim/random.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using flotilla::check::RunOptions;
using flotilla::check::RunResult;
using flotilla::check::ScenarioSpec;

void print_violations(const RunResult& result) {
  for (const auto& v : result.violations) {
    std::cout << "  " << v.to_string() << "\n";
  }
}

int report_failure(const ScenarioSpec& failing, const RunOptions& opts,
                   bool no_shrink, const std::string& minimized_out) {
  ScenarioSpec minimal = failing;
  if (!no_shrink) {
    const auto shrunk = flotilla::check::shrink(
        failing,
        [&opts](const ScenarioSpec& candidate) {
          return !flotilla::check::run_with_oracles(candidate, opts).ok();
        });
    minimal = shrunk.spec;
    std::cout << "shrink: " << shrunk.evaluations
              << " evaluations, minimized spec:\n";
  } else {
    std::cout << "failing spec (shrinking disabled):\n";
  }
  const auto line = minimal.to_string();
  std::cout << "  " << line << "\n";
  std::cout << "minimal-run violations:\n";
  print_violations(flotilla::check::run_with_oracles(minimal, opts));
  std::cout << "replay with:\n  flotilla-fuzz --replay '" << line << "'\n";
  if (!minimized_out.empty()) {
    std::ofstream out(minimized_out);
    out << line << "\n";
    std::cout << "minimized spec written to " << minimized_out << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  flotilla::util::CliParser cli(
      "Randomized invariant fuzzing for the Flotilla simulator "
      "(see docs/correctness.md).");
  cli.option("scenarios", "100", "number of scenarios to generate and run")
      .option("seed-base", "1", "seed of the first scenario (then +1 each)")
      .option("replay", "", "run exactly one serialized scenario spec")
      .option("crash-all", "",
              "crash-at-every-event sweep: run one spec's recovery oracle "
              "at every journal record index (docs/recovery.md)")
      .option("minimized-out", "",
              "file to write the minimized failing spec to")
      .option("max-events", "0", "per-run event budget (0 = automatic)")
      .flag("no-shrink", "report the original failing spec unminimized")
      .flag("force-ingress",
            "arm the clients/arrival/admit dimensions on every generated "
            "scenario (the nightly ingress-storm leg)")
      .flag("verbose", "print every scenario spec before running it");

  try {
    if (!cli.parse(argc, argv)) return 0;

    RunOptions opts;
    opts.max_events =
        static_cast<std::uint64_t>(std::max(0L, cli.get_int("max-events")));
    const bool no_shrink = cli.get_flag("no-shrink");
    const bool verbose = cli.get_flag("verbose");
    const std::string minimized_out = cli.get("minimized-out");

    if (!cli.get("crash-all").empty()) {
      // Exhaustive crash sweep: one uninterrupted reference run, then the
      // recovery oracle at every possible crash index. The header strips
      // crash_at/recover, so the single reference journal is valid for
      // every crash point of the scenario.
      auto spec = ScenarioSpec::parse(cli.get("crash-all"));
      spec.crash_at = 0;
      spec.recover = true;
      RunOptions jopts = opts;
      jopts.journal = true;
      const auto reference = flotilla::check::run_scenario(spec, jopts);
      if (!reference.ok()) {
        std::cout << "reference run FAILED before any crash injection:\n";
        print_violations(reference);
        return report_failure(spec, opts, no_shrink, minimized_out);
      }
      const auto records = static_cast<std::uint64_t>(std::count(
          reference.journal.begin(), reference.journal.end(), '\n'));
      std::cout << "crash-all: " << spec.to_string() << "\n"
                << "reference journal: " << records << " records, "
                << reference.journal.size() << " bytes\n";
      for (std::uint64_t k = 1; k <= records; ++k) {
        ScenarioSpec crashed = spec;
        crashed.crash_at = k;
        const auto violations =
            flotilla::check::check_recovery(crashed, reference, opts);
        if (!violations.empty()) {
          std::cout << "crash_at=" << k << " FAILED:\n";
          for (const auto& v : violations) {
            std::cout << "  " << v.to_string() << "\n";
          }
          return report_failure(crashed, opts, no_shrink, minimized_out);
        }
        if (verbose) std::cout << "crash_at=" << k << " ok\n";
      }
      std::cout << records << " crash points, recovery equivalent at all\n";
      return 0;
    }

    if (!cli.get("replay").empty()) {
      const auto spec = ScenarioSpec::parse(cli.get("replay"));
      const auto result = flotilla::check::run_with_oracles(spec, opts);
      std::cout << "replay: " << spec.to_string() << "\n";
      std::cout << "events=" << result.events << " done=" << result.done
                << " failed=" << result.failed
                << " canceled=" << result.canceled
                << " fingerprint=" << result.fingerprint << "\n";
      if (!result.ok()) {
        std::cout << "violations:\n";
        print_violations(result);
        return 1;
      }
      std::cout << "all invariants held\n";
      return 0;
    }

    const long scenarios = cli.get_int("scenarios");
    const long seed_base = cli.get_int("seed-base");
    flotilla::check::GeneratorOptions gen_opts;
    gen_opts.force_ingress = cli.get_flag("force-ingress");
    for (long i = 0; i < scenarios; ++i) {
      flotilla::sim::RngStream rng(
          static_cast<std::uint64_t>(seed_base + i), "fuzz.generate");
      const auto spec = flotilla::check::generate_scenario(rng, gen_opts);
      if (verbose) {
        std::cout << "[" << (i + 1) << "/" << scenarios << "] "
                  << spec.to_string() << "\n";
      }
      const auto result = flotilla::check::run_with_oracles(spec, opts);
      if (!result.ok()) {
        std::cout << "scenario " << (seed_base + i) << " FAILED:\n";
        print_violations(result);
        return report_failure(spec, opts, no_shrink, minimized_out);
      }
    }
    std::cout << scenarios << " scenarios, all invariants held\n";
    return 0;
  } catch (const flotilla::util::Error& e) {
    std::cerr << "error: " << e.what() << "\n" << cli.usage();
    return 2;
  }
}
