// flotilla-analyze: multi-pass static analysis over the flotilla tree.
//
// Front-end over src/analyze/ (lexer + pass registry + driver); see
// docs/correctness.md, "Static analysis". Passes:
//
//   architecture   include graph vs the declared layer DAG in
//                  analyze/layers.conf (arch-layering, arch-cycle,
//                  arch-unmapped, arch-config)
//   locks          user callbacks / virtual dispatch invoked under a held
//                  lock, and inconsistent mutex acquisition-order pairs
//                  (lock-callback, lock-virtual, lock-order)
//   spans          obs::Tracer begin/end pairs leaked by early returns
//                  (span-balance)
//   determinism    the five flotilla-lint rules, on the token stream
//                  (wall-clock, unseeded-random, hardware-concurrency,
//                  real-sleep, unordered-iteration)
//   ipc-locks      interprocedural lock discipline over the call graph:
//                  self-deadlock and blocking-under-lock at any call
//                  depth (ipc-self-deadlock, ipc-blocking-under-lock)
//   ipc-determinism  wall-clock/unseeded-random taint flowing through
//                  function returns into trace spans, counters, or the
//                  trace fingerprint (ipc-determinism)
//   shared-state   concurrency-readiness audit: unguarded writes
//                  reachable from sim::Engine::run, reported at severity
//                  "note" and inventoried by --shared-state-report
//                  (shared-state)
//   confinement    proof obligations from the --confined claims file:
//                  claims with status "verified" are checked against the
//                  dispatch model and stale claims are hard errors
//                  (conf-unproven, conf-cross-shard-write,
//                  conf-stale-claim); per-claim verdicts dumped by
//                  --confinement-report
//
// Findings can be waived in place (// FLOTILLA_LINT_ALLOW(rule): reason)
// or grandfathered in a committed baseline (analyze/baseline.txt); CI
// fails only on findings that are neither. Output is plain text or SARIF
// 2.1.0, byte-identical for the same tree and baseline.
//
// Run from the repo root so display paths are repo-relative (that is what
// the committed baseline records). Exit codes: 0 clean, 1 fresh findings,
// 2 usage/IO error.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analyze/confine.hpp"
#include "analyze/determinism.hpp"
#include "analyze/driver.hpp"
#include "analyze/ipc.hpp"
#include "analyze/layers.hpp"
#include "analyze/locks.hpp"
#include "analyze/spans.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: flotilla-analyze [options] [<path>...]\n"
        "  <path>...            files or directories to scan "
        "(default: src tools)\n"
        "  --layers <file>      layer DAG config "
        "(default: analyze/layers.conf)\n"
        "  --baseline <file>    grandfathered findings; only new ones "
        "fail\n"
        "  --write-baseline     regenerate --baseline from this run and "
        "exit\n"
        "  --sarif              emit SARIF 2.1.0 instead of text "
        "findings\n"
        "  --output <file>      write the report to <file> instead of "
        "stdout\n"
        "  --strip-prefix <p>   strip <p> from display paths (fixture "
        "trees)\n"
        "  --jobs <n>           file-loading threads (default: one per "
        "hardware thread); output is identical for any value\n"
        "  --shared-state-report <file>  also write the unguarded-write "
        "inventory reachable from sim::Engine::run\n"
        "  --confined <file>    confinement claims (analyze/confined.txt): "
        "marks the shared-state report and arms the confinement pass\n"
        "  --confinement-report <file>  also write the per-claim "
        "confinement-proof verdicts\n"
        "  --list-rules         print every rule id and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  namespace fa = flotilla::analyze;
  fa::DriverOptions options;
  std::string layers_path = "analyze/layers.conf";
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "flotilla-analyze: error: " << flag
                  << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--layers") {
      layers_path = value("--layers");
    } else if (arg == "--baseline") {
      options.baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      options.write_baseline = true;
    } else if (arg == "--sarif") {
      options.sarif = true;
    } else if (arg == "--output") {
      options.output_path = value("--output");
    } else if (arg == "--strip-prefix") {
      options.strip_prefix = value("--strip-prefix");
    } else if (arg == "--jobs") {
      const std::string n = value("--jobs");
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(n.c_str(), &end, 10);
      if (end == n.c_str() || *end != '\0' || parsed == 0) {
        std::cerr << "flotilla-analyze: error: --jobs needs a positive "
                     "integer\n";
        return 2;
      }
      options.jobs = static_cast<unsigned>(parsed);
    } else if (arg == "--shared-state-report") {
      options.shared_state_report_path = value("--shared-state-report");
    } else if (arg == "--confined") {
      options.confined_path = value("--confined");
    } else if (arg == "--confinement-report") {
      options.confinement_report_path = value("--confinement-report");
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(std::cerr);
      return 2;
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) options.roots = {"src", "tools"};

  fa::LayersConfig layers;
  std::string layers_error;
  if (!fa::load_layers(layers_path, &layers, &layers_error)) {
    layers.path = layers_path;
  } else {
    layers_error.clear();
  }

  fa::PassRegistry registry;
  registry.add(std::make_unique<fa::ArchitecturePass>(std::move(layers),
                                                      layers_error));
  registry.add(std::make_unique<fa::LockDisciplinePass>());
  registry.add(std::make_unique<fa::SpanBalancePass>());
  registry.add(std::make_unique<fa::DeterminismPass>());
  registry.add(std::make_unique<fa::IpcLocksPass>());
  registry.add(std::make_unique<fa::IpcDeterminismPass>());
  registry.add(std::make_unique<fa::SharedStatePass>());
  registry.add(std::make_unique<fa::ConfinementPass>());

  if (list_rules) {
    std::vector<std::string> rules;
    for (const auto& pass : registry.passes()) {
      for (std::string& rule : pass->rules()) rules.push_back(std::move(rule));
    }
    std::sort(rules.begin(), rules.end());
    for (const std::string& rule : rules) std::cout << rule << "\n";
    return 0;
  }

  return fa::run_driver(options, registry, std::cout, std::cerr);
}
