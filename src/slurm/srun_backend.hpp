// srun-based task backend: RP's default executor path on Slurm platforms.
//
// One srun invocation per task. The site-wide ceiling on concurrently active
// srun processes (112 on Frontier) is modeled as a FIFO resource held for
// the *entire* task lifetime — an srun process stays alive while its step
// runs — which is exactly what caps utilization at 50% on 4 nodes in
// Experiment srun (Fig 4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/tracer.hpp"
#include "platform/backend.hpp"
#include "platform/calibration.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "slurm/slurmctld.hpp"

namespace flotilla::slurm {

class SrunBackend : public platform::TaskBackend {
 public:
  // `shared_ceiling` (optional) is the allocation-wide concurrent-srun
  // ceiling shared with other srun consumers (e.g. Flux instance launches);
  // when null the backend owns a private ceiling of cal.concurrency_ceiling.
  SrunBackend(sim::Engine& engine, platform::Cluster& cluster,
              platform::NodeRange allocation,
              const platform::SlurmCalibration& cal, std::uint64_t seed,
              sim::Resource* shared_ceiling = nullptr);
  ~SrunBackend() override;

  const std::string& name() const override { return name_; }
  bool accepts(platform::TaskModality modality) const override {
    return modality == platform::TaskModality::kExecutable;
  }
  platform::NodeRange span() const override { return ctld_.allocation(); }
  void bootstrap(ReadyHandler ready) override;
  void submit(platform::LaunchRequest request) override;
  void on_task_start(StartHandler handler) override {
    start_handler_ = std::move(handler);
  }
  void on_task_complete(CompletionHandler handler) override {
    completion_handler_ = std::move(handler);
  }
  void shutdown() override;
  bool healthy() const override { return healthy_; }
  std::size_t inflight() const override { return inflight_; }

  Slurmctld& controller() { return ctld_; }
  std::int64_t active_sruns() const { return ceiling_->in_use(); }

  // Adds the concurrent-srun ceiling occupancy: a restored backend must
  // hold exactly as many srun slots as the uninterrupted run.
  std::string restore_summary() const override {
    return TaskBackend::restore_summary() +
           "|active_sruns=" + std::to_string(active_sruns());
  }

  // Attaches structured tracing: bootstrap span, queue-wait spans on the
  // concurrent-srun ceiling, and controller placement attempts.
  void set_trace(obs::TraceHandle handle) override {
    obs_trace_ = handle;
    ctld_.set_trace(handle, "srun.ctld");
  }

 private:
  struct Srun;  // one live srun client

  void accept(platform::LaunchRequest request);  // shard-local submit half
  void start_srun(std::shared_ptr<Srun> srun);
  void attempt_step(std::shared_ptr<Srun> srun);
  void handle_reply(std::shared_ptr<Srun> srun,
                    std::optional<platform::Placement> placement);
  void run_step(std::shared_ptr<Srun> srun);
  void finish(std::shared_ptr<Srun> srun, bool success, std::string error);

  sim::Engine& engine_;
  // Engine shard the srun/slurmctld event chains run on (docs/sharding.md).
  sim::ShardId shard_ = sim::kControlShard;
  platform::SlurmCalibration cal_;
  sim::RngStream rng_;
  Slurmctld ctld_;
  std::unique_ptr<sim::Resource> owned_ceiling_;
  sim::Resource* ceiling_;  // concurrent-srun ceiling (owned or shared)
  obs::TraceHandle obs_trace_;
  std::string name_ = "srun";
  bool healthy_ = false;
  bool shut_down_ = false;
  std::size_t inflight_ = 0;
  StartHandler start_handler_;
  CompletionHandler completion_handler_;
};

}  // namespace flotilla::slurm
