// Slurm controller model.
//
// Captures the two slurmctld behaviours that drive the paper's srun results:
//
//  1. Step-creation RPCs are *serialized* in the controller, with a service
//     time that grows with the allocation's node count (credential and
//     layout cover every node of the allocation). This produces the Fig 5(a)
//     shape: 152 tasks/s at 1 node, 61 at 4, declining further with scale.
//  2. When a step cannot get resources, the controller answers
//     "job step creation temporarily disabled" and the srun client retries
//     with exponential backoff — polling, not events. Each retry costs the
//     controller another RPC, so a backlog of waiting sruns degrades the
//     launch path for everyone (the erratic srun start rate of Fig 8 a,b).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "obs/tracer.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "platform/placement.hpp"
#include "sched/placer.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"

namespace flotilla::slurm {

struct StepRequest {
  std::string id;
  platform::ResourceDemand demand;
};

class Slurmctld {
 public:
  // Reply carries the placement on success, or nullopt for "temporarily
  // disabled, retry later".
  using CreateReply =
      std::function<void(std::optional<platform::Placement>)>;

  Slurmctld(sim::Engine& engine, platform::Cluster& cluster,
            platform::NodeRange allocation,
            const platform::SlurmCalibration& cal, std::uint64_t seed);

  // First step-create RPC for a step (full-cost service).
  void request_step(StepRequest request, CreateReply reply);

  // Subsequent retry RPC (cheaper service, same placement logic).
  void retry_step(StepRequest request, CreateReply reply);

  // Step completion: retire the step and free its resources. `done` fires
  // after the controller has processed the completion.
  void complete_step(platform::Placement placement,
                     std::function<void()> done);

  platform::NodeRange allocation() const { return allocation_; }
  std::int64_t free_cores() const;
  std::uint64_t steps_created() const { return steps_created_; }
  std::uint64_t retries_served() const { return retries_served_; }

  // Placement over the allocation: packs `demand` greedily, or in
  // cores_per_node-sized node chunks for tightly coupled steps. Public for
  // white-box testing.
  std::optional<platform::Placement> try_place(
      const platform::ResourceDemand& demand);

  // Controller service time for one step-create over this allocation.
  double step_create_cost() const;

  void release(const platform::Placement& placement);

  // Attaches structured tracing: placement attempts under `component`.
  void set_trace(obs::TraceHandle handle, std::string component) {
    placer_.set_trace(handle, std::move(component));
  }

 private:
  void serve(double cost, StepRequest request, CreateReply reply);

  sim::Engine& engine_;
  platform::Cluster& cluster_;
  platform::NodeRange allocation_;
  platform::SlurmCalibration cal_;
  sim::RngStream rng_;
  // slurmctld handles step creation and step completion on different RPC
  // threads; creates serialize against each other (the launch bottleneck),
  // completions against each other, but not across the two.
  sim::Server rpc_create_;
  sim::Server rpc_complete_;
  sched::Placer placer_;  // rotating indexed first-fit over the allocation
  std::uint64_t steps_created_ = 0;
  std::uint64_t retries_served_ = 0;
};

}  // namespace flotilla::slurm
