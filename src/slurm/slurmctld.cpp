#include "slurm/slurmctld.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace flotilla::slurm {

Slurmctld::Slurmctld(sim::Engine& engine, platform::Cluster& cluster,
                     platform::NodeRange allocation,
                     const platform::SlurmCalibration& cal,
                     std::uint64_t seed)
    : engine_(engine),
      cluster_(cluster),
      allocation_(allocation),
      cal_(cal),
      rng_(seed, "slurmctld"),
      rpc_create_(engine, 1),
      rpc_complete_(engine, 1),
      placer_(cluster, allocation) {
  FLOT_CHECK(allocation.count >= 1, "empty allocation");
  FLOT_CHECK(allocation.end() <= cluster.size(),
             "allocation exceeds cluster: end=", allocation.end());
}

std::int64_t Slurmctld::free_cores() const {
  return cluster_.free_cores(allocation_);
}

double Slurmctld::step_create_cost() const {
  const double n = static_cast<double>(allocation_.count);
  return cal_.ctl_step_base + cal_.ctl_step_per_node * n +
         cal_.ctl_step_per_node_sq * n * n;
}

void Slurmctld::request_step(StepRequest request, CreateReply reply) {
  const double cost =
      rng_.lognormal_mean_cv(step_create_cost(), cal_.jitter_cv);
  serve(cost, std::move(request), std::move(reply));
}

void Slurmctld::retry_step(StepRequest request, CreateReply reply) {
  const double cost = rng_.lognormal_mean_cv(
      cal_.ctl_retry_cost +
          cal_.ctl_retry_fraction * (step_create_cost() - cal_.ctl_step_base),
      cal_.jitter_cv);
  ++retries_served_;
  serve(cost, std::move(request), std::move(reply));
}

void Slurmctld::serve(double cost, StepRequest request, CreateReply reply) {
  rpc_create_.submit(cost, [this, request = std::move(request),
                     reply = std::move(reply)]() {
    auto placement = try_place(request.demand);
    if (placement) ++steps_created_;
    reply(std::move(placement));
  });
}

void Slurmctld::complete_step(platform::Placement placement,
                              std::function<void()> done) {
  const double cost =
      rng_.lognormal_mean_cv(cal_.ctl_complete_cost, cal_.jitter_cv);
  rpc_complete_.submit(cost, [this, placement = std::move(placement),
                     done = std::move(done)]() {
    release(placement);
    if (done) done();
  });
}

void Slurmctld::release(const platform::Placement& placement) {
  placer_.release(placement);
}

std::optional<platform::Placement> Slurmctld::try_place(
    const platform::ResourceDemand& demand) {
  return placer_.place(demand);
}

}  // namespace flotilla::slurm
