#include "slurm/srun_backend.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace flotilla::slurm {

struct SrunBackend::Srun {
  platform::LaunchRequest request;
  platform::Placement placement;
  double retry_delay = 0.0;
  sim::Time started = 0.0;
  bool running = false;
};

SrunBackend::SrunBackend(sim::Engine& engine, platform::Cluster& cluster,
                         platform::NodeRange allocation,
                         const platform::SlurmCalibration& cal,
                         std::uint64_t seed, sim::Resource* shared_ceiling)
    : engine_(engine),
      cal_(cal),
      rng_(seed, "srun"),
      ctld_(engine, cluster, allocation, cal, seed) {
  shard_ = engine.affinity(name_);
  if (shared_ceiling) {
    ceiling_ = shared_ceiling;
  } else {
    owned_ceiling_ =
        std::make_unique<sim::Resource>(engine, cal.concurrency_ceiling);
    ceiling_ = owned_ceiling_.get();
  }
}

SrunBackend::~SrunBackend() = default;

void SrunBackend::bootstrap(ReadyHandler ready) {
  // srun needs no runtime bootstrap: Slurm is already running system-wide.
  // A small constant covers RP's executor component coming up.
  obs_trace_.begin(obs::SpanType::kBootstrap, name_, "");
  engine_.in(shard_, 0.1, [this, ready = std::move(ready)] {
    healthy_ = true;
    obs_trace_.end(obs::SpanType::kBootstrap, name_, "");
    ready(true, "");
  });
}

void SrunBackend::submit(platform::LaunchRequest request) {
  // Submissions arrive on the agent's control shard; the srun client and
  // everything behind it (slurmctld RPCs, stepd spawns) run on this
  // backend's shard. Direct call on a single-shard engine.
  engine_.invoke_on(shard_, [this, request = std::move(request)]() mutable {
    accept(std::move(request));
  });
}

void SrunBackend::accept(platform::LaunchRequest request) {
  FLOT_CHECK(healthy_, "submit to srun backend before bootstrap");
  ++inflight_;
  auto srun = std::make_shared<Srun>();
  srun->request = std::move(request);
  srun->retry_delay = cal_.step_retry_initial;
  // The srun slot is taken for the whole task lifetime; the FIFO queue on
  // this resource is the system-level concurrency ceiling.
  obs_trace_.begin(obs::SpanType::kTaskQueueWait, "srun.ceiling",
                   srun->request.id);
  ceiling_->acquire(1, [this, srun] { start_srun(srun); });
}

void SrunBackend::start_srun(std::shared_ptr<Srun> srun) {
  obs_trace_.end(obs::SpanType::kTaskQueueWait, "srun.ceiling",
                 srun->request.id);
  if (shut_down_) {
    finish(std::move(srun), false, "backend shut down");
    return;
  }
  const double startup =
      rng_.lognormal_mean_cv(cal_.srun_client_startup, cal_.jitter_cv);
  engine_.in(startup, [this, srun = std::move(srun)]() mutable {
    attempt_step(std::move(srun));
  });
}

void SrunBackend::attempt_step(std::shared_ptr<Srun> srun) {
  if (shut_down_) {
    finish(std::move(srun), false, "backend shut down");
    return;
  }
  StepRequest step{srun->request.id, srun->request.demand};
  auto reply = [this, srun](std::optional<platform::Placement> placement) {
    handle_reply(srun, std::move(placement));
  };
  if (srun->retry_delay > cal_.step_retry_initial) {
    ctld_.retry_step(std::move(step), std::move(reply));
  } else {
    ctld_.request_step(std::move(step), std::move(reply));
  }
}

void SrunBackend::handle_reply(std::shared_ptr<Srun> srun,
                               std::optional<platform::Placement> placement) {
  if (shut_down_) {
    if (placement) ctld_.release(*placement);
    finish(std::move(srun), false, "backend shut down");
    return;
  }
  if (!placement) {
    // "Job step creation temporarily disabled, retrying": poll with
    // exponential backoff. The uniform factor desynchronizes waiting sruns.
    const double delay =
        srun->retry_delay * rng_.uniform(0.7, 1.3);
    srun->retry_delay =
        std::min(srun->retry_delay * cal_.step_retry_factor,
                 cal_.step_retry_max);
    engine_.in(delay, [this, srun = std::move(srun)]() mutable {
      attempt_step(std::move(srun));
    });
    return;
  }
  srun->placement = std::move(*placement);
  run_step(std::move(srun));
}

void SrunBackend::run_step(std::shared_ptr<Srun> srun) {
  // slurmstepd fork/exec happens in parallel on every target node; the step
  // starts when the slowest node is up, so one jittered sample stands in
  // for the max over nodes. Multi-node (MPI) steps additionally pay PMI
  // wireup through the controller-mediated path (§3.1).
  double spawn = rng_.lognormal_mean_cv(cal_.node_task_spawn, cal_.jitter_cv);
  const auto step_nodes = srun->placement.slices.size();
  if (step_nodes > 1) {
    spawn += rng_.lognormal_mean_cv(
        cal_.mpi_wireup_base +
            cal_.mpi_wireup_per_node * static_cast<double>(step_nodes),
        cal_.jitter_cv);
  }
  engine_.in(spawn, [this, srun = std::move(srun)]() mutable {
    srun->started = engine_.now();
    srun->running = true;
    if (start_handler_) start_handler_(srun->request.id);
    const auto duration = srun->request.duration;
    engine_.in(duration, [this, srun = std::move(srun)]() mutable {
      srun->running = false;
      const bool failed =
          srun->request.fail_probability > 0.0 &&
          rng_.bernoulli(srun->request.fail_probability);
      ctld_.complete_step(srun->placement, [this, srun, failed] {
        finish(srun, !failed,
               failed ? "task exited with non-zero status" : "");
      });
    });
  });
}

void SrunBackend::finish(std::shared_ptr<Srun> srun, bool success,
                         std::string error) {
  FLOT_CHECK(inflight_ > 0, "finish without inflight task");
  --inflight_;
  // Every finish path runs after the ceiling slot was granted (the srun
  // process exits here), so the slot is always returned exactly once.
  ceiling_->release(1);
  platform::LaunchOutcome outcome;
  outcome.id = srun->request.id;
  outcome.success = success;
  outcome.error = std::move(error);
  outcome.started = srun->started;
  outcome.finished = engine_.now();
  if (completion_handler_) completion_handler_(outcome);
}

void SrunBackend::shutdown() {
  shut_down_ = true;
  healthy_ = false;
}

}  // namespace flotilla::slurm
