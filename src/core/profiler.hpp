// Profiler: RADICAL-Analytics-style event recording plus online metrics.
//
// Components report task lifecycle moments; the profiler appends trace
// records (when per-task tracing is enabled) and keeps RunMetrics current.
// Per-task tracing is off by default because paper-scale runs launch up to
// 229,376 tasks; metrics are always maintained.
#pragma once

#include "analytics/metrics.hpp"
#include "core/session.hpp"
#include "core/task.hpp"

namespace flotilla::core {

class Profiler {
 public:
  explicit Profiler(Session& session, bool trace_tasks = false)
      : session_(session), trace_tasks_(trace_tasks) {}

  analytics::RunMetrics& metrics() { return metrics_; }
  const analytics::RunMetrics& metrics() const { return metrics_; }

  void submitted(const Task& task);
  void state_change(const Task& task);  // after Task::advance
  void launched(const Task& task);
  void attempt_ended(const Task& task);
  void retried(const Task& task);
  void finalized(const Task& task, bool success);

 private:
  void record(const Task& task, const char* event);

  Session& session_;
  analytics::RunMetrics metrics_;
  bool trace_tasks_;
};

}  // namespace flotilla::core
