// Umbrella header: the Flotilla public API.
//
//   #include "core/flotilla.hpp"
//
//   flotilla::core::Session session(flotilla::platform::frontier_spec(), 64);
//   flotilla::core::PilotManager pmgr(session);
//   auto& pilot = pmgr.submit({.nodes = 64, .backends = {{"flux", 4}}});
//   pilot.launch(...);
//   flotilla::core::TaskManager tmgr(session, pilot.agent());
//   tmgr.submit(...);
//   session.run();
//
// See examples/quickstart.cpp for a complete program.
#pragma once

#include "core/agent.hpp"
#include "core/asyncflow.hpp"
#include "core/pilot.hpp"
#include "core/profiler.hpp"
#include "core/session.hpp"
#include "core/task.hpp"
#include "core/task_manager.hpp"
#include "core/workflow.hpp"
