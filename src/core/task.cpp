#include "core/task.hpp"

#include "util/error.hpp"

namespace flotilla::core {

std::string_view to_string(TaskState state) {
  switch (state) {
    case TaskState::kNew:
      return "NEW";
    case TaskState::kTmgrScheduling:
      return "TMGR_SCHEDULING";
    case TaskState::kStagingInput:
      return "AGENT_STAGING_INPUT";
    case TaskState::kAgentScheduling:
      return "AGENT_SCHEDULING";
    case TaskState::kExecutorPending:
      return "EXECUTOR_PENDING";
    case TaskState::kRunning:
      return "RUNNING";
    case TaskState::kStagingOutput:
      return "AGENT_STAGING_OUTPUT";
    case TaskState::kDone:
      return "DONE";
    case TaskState::kFailed:
      return "FAILED";
    case TaskState::kCanceled:
      return "CANCELED";
  }
  return "?";
}

bool is_final(TaskState state) {
  return state == TaskState::kDone || state == TaskState::kFailed ||
         state == TaskState::kCanceled;
}

namespace {

bool valid_transition(TaskState from, TaskState to) {
  if (is_final(from)) return false;
  if (to == TaskState::kCanceled || to == TaskState::kFailed) return true;
  switch (from) {
    case TaskState::kNew:
      return to == TaskState::kTmgrScheduling;
    case TaskState::kTmgrScheduling:
      // Staging-input is optional (tasks without input data skip it).
      return to == TaskState::kStagingInput ||
             to == TaskState::kAgentScheduling;
    case TaskState::kStagingInput:
      return to == TaskState::kAgentScheduling;
    case TaskState::kAgentScheduling:
      return to == TaskState::kExecutorPending;
    case TaskState::kExecutorPending:
      // Retry edge: a backend may reject/lose the task before it ran.
      return to == TaskState::kRunning || to == TaskState::kAgentScheduling;
    case TaskState::kRunning:
      // Staging-output is optional; retry edge goes back to the agent
      // scheduler.
      return to == TaskState::kStagingOutput || to == TaskState::kDone ||
             to == TaskState::kAgentScheduling;
    case TaskState::kStagingOutput:
      return to == TaskState::kDone;
    default:
      return false;
  }
}

}  // namespace

void Task::advance(TaskState next, sim::Time now) {
  FLOT_CHECK(valid_transition(state_, next), "task ", uid_,
             ": invalid transition ", to_string(state_), " -> ",
             to_string(next));
  const TaskState from = state_;
  state_ = next;
  state_times_.emplace(next, now);  // keep the *first* entry time
  if (transition_hook_ && *transition_hook_) {
    (*transition_hook_)(*this, from, next);
  }
}

bool Task::state_time(TaskState state, sim::Time& out) const {
  const auto it = state_times_.find(state);
  if (it == state_times_.end()) return false;
  out = it->second;
  return true;
}

}  // namespace flotilla::core
