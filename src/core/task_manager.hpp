// TaskManager: the user-facing task API (Fig 1 ①②).
//
// Accepts task descriptions, assigns uids, runs them through the TMGR
// pipeline (a serialized intake component with a calibrated per-task cost)
// and hands them to a pilot's agent. Completion callbacks fire once per
// task on a final state.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.hpp"
#include "core/session.hpp"
#include "core/task.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"
#include "util/ordered.hpp"

namespace flotilla::core {

class TaskManager {
 public:
  using TaskHandler = std::function<void(const Task&)>;

  TaskManager(Session& session, Agent& agent);

  // Submits one task; returns its uid.
  std::string submit(TaskDescription description);
  std::vector<std::string> submit(std::vector<TaskDescription> descriptions);

  // Submits a batch as ONE intake transaction (flux-core job-ingest
  // style): every task advances to kTmgrScheduling now, but the whole
  // batch pays a single amortized intake cost
  // (tmgr_batch_base + n * tmgr_batch_per_task) instead of n serialized
  // per-task costs. Tasks reach the agent in batch order. The ingress
  // service (src/ingress) is the intended caller.
  std::vector<std::string> submit_batch(
      std::vector<TaskDescription> descriptions);

  // Tasks currently queued or in service in the TMGR intake component —
  // the dispatcher-saturation signal admission control keys off.
  std::size_t intake_backlog() const {
    return intake_.backlog() + intake_.in_service();
  }

  // Fires on every task reaching a final state.
  void on_complete(TaskHandler handler) {
    completion_handler_ = std::move(handler);
  }

  // Observes every state transition of every task submitted *after* this
  // call (installed on the task before its first transition). Multiple
  // consumers may register — invariant checkers (src/check) and the
  // journal scribe (src/journal) coexist; hooks fire in registration
  // order. Tasks already submitted keep the hook set they were given.
  void on_transition(Task::TransitionHook hook);

  const Task& task(const std::string& uid) const;

  // Requests cancellation (cooperative; see Agent::cancel). Returns false
  // for unknown or already-final tasks.
  bool cancel(const std::string& uid);

  Agent& agent() { return agent_; }
  Session& session() { return session_; }

  // Visits every task ever submitted (analytics/reporting), in sorted uid
  // order so downstream reports are reproducible.
  void for_each_task(const std::function<void(const Task&)>& fn) const {
    for (const auto& uid : util::sorted_keys(tasks_)) fn(*tasks_.at(uid));
  }
  std::size_t submitted() const { return total_submitted_; }
  std::size_t finished() const { return finished_; }
  bool idle() const { return finished_ == total_submitted_; }

 private:
  Session& session_;
  Agent& agent_;
  sim::RngStream rng_;
  sim::Server intake_;
  obs::TraceHandle obs_trace_;
  std::unordered_map<std::string, std::shared_ptr<Task>> tasks_;
  std::vector<Task::TransitionHook> transition_hooks_;
  std::shared_ptr<const Task::TransitionHook> transition_hook_;
  TaskHandler completion_handler_;
  std::size_t total_submitted_ = 0;
  std::size_t finished_ = 0;
};

}  // namespace flotilla::core
