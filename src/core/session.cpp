#include "core/session.hpp"

namespace flotilla::core {

Session::Session(platform::PlatformSpec spec, int num_nodes,
                 std::uint64_t seed, platform::Calibration calibration,
                 int engine_shards, int engine_threads)
    : engine_(sim::Engine::Config{engine_shards, engine_threads,
                                  /*lookahead=*/0.0}),
      cluster_(std::move(spec), num_nodes),
      calibration_(calibration),
      trace_(engine_),
      seed_(seed),
      uid_(ids_.next("session", 4)) {}

obs::Tracer& Session::enable_tracing(std::size_t capacity) {
  if (!tracer_) {
    tracer_ = std::make_unique<obs::Tracer>(engine_, capacity);
    // Event-loop progress sampled into the trace: one counter record
    // every 4096 processed events keeps the overhead negligible while
    // still giving Perfetto an events/s series to plot.
    engine_.set_trace_probe(
        [tracer = tracer_.get()](sim::Time, std::uint64_t processed) {
          if (processed % 4096 == 0) {
            tracer->counter("engine", "events_processed",
                            static_cast<double>(processed));
          }
        });
  }
  return *tracer_;
}

}  // namespace flotilla::core
