#include "core/session.hpp"

namespace flotilla::core {

Session::Session(platform::PlatformSpec spec, int num_nodes,
                 std::uint64_t seed, platform::Calibration calibration)
    : cluster_(std::move(spec), num_nodes),
      calibration_(calibration),
      trace_(engine_),
      seed_(seed),
      uid_(ids_.next("session", 4)) {}

}  // namespace flotilla::core
