// Task model: description + state machine, mirroring RADICAL-Pilot's task
// abstraction (§3). Every task — executable or function, routed to any
// backend — passes through the same lifecycle, which is what lets RP keep
// uniform profiling and failure handling across execution substrates.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "platform/backend.hpp"
#include "platform/types.hpp"
#include "sim/engine.hpp"

namespace flotilla::core {

// User-facing description; immutable once submitted.
struct TaskDescription {
  std::string name;  // optional human label (e.g. "docking.12")
  platform::ResourceDemand demand;
  sim::Time duration = 0.0;  // synthetic payload runtime (0 = null task)
  platform::TaskModality modality = platform::TaskModality::kExecutable;
  // "": let the router decide; otherwise a backend name ("srun", "flux",
  // "dragon") that must accept the task's modality.
  std::string backend_hint;
  int max_retries = 0;          // §4.2: "basic fault tolerance via retries"
  double fail_probability = 0;  // fault-injection knob
  std::string stage;            // workflow stage tag (analytics/grouping)
  // Data staged through the shared filesystem before/after execution
  // (Fig 1: StagerInput / StagerOutput). 0 skips the staging states.
  double input_mb = 0.0;
  double output_mb = 0.0;
  // Co-scheduling: tasks sharing a non-empty gang tag (with gang_size
  // members) are placed atomically and started together. Requires a
  // backend with co-scheduling support (Flux).
  std::string gang;
  int gang_size = 0;
  // Scheduling urgency (Flux semantics: 0..31, default 16; higher is
  // considered first). Honored by backends with priority queues (Flux).
  int priority = 16;
};

enum class TaskState {
  kNew,              // described, not yet accepted
  kTmgrScheduling,   // in the task manager pipeline
  kStagingInput,     // input data moving through the stager
  kAgentScheduling,  // agent scheduler deciding backend/queue
  kExecutorPending,  // serialized toward a backend
  kRunning,          // payload executing
  kStagingOutput,    // output data moving through the stager
  kDone,             // final: success
  kFailed,           // final: exhausted retries or unrecoverable
  kCanceled,         // final: canceled by the user or shutdown
};

std::string_view to_string(TaskState state);
bool is_final(TaskState state);

// Runtime object tracked by the session. Transitions are validated: a task
// can only move forward, except for the retry edge Running/ExecutorPending
// -> AgentScheduling.
class Task {
 public:
  // Observes every state transition, after it was applied. `from` is the
  // state the task left. Invariant checkers (src/check) subscribe through
  // TaskManager::on_transition; the hook is shared across tasks, hence the
  // shared_ptr indirection.
  using TransitionHook =
      std::function<void(const Task&, TaskState from, TaskState to)>;

  Task(std::string uid, TaskDescription description)
      : uid_(std::move(uid)), description_(std::move(description)) {}

  const std::string& uid() const { return uid_; }
  const TaskDescription& description() const { return description_; }

  TaskState state() const { return state_; }
  void advance(TaskState next, sim::Time now);

  void set_transition_hook(std::shared_ptr<const TransitionHook> hook) {
    transition_hook_ = std::move(hook);
  }

  // Time of first entry into `state`; returns false if never entered.
  bool state_time(TaskState state, sim::Time& out) const;

  int attempts() const { return attempts_; }
  void begin_attempt() { ++attempts_; }

  const std::string& backend() const { return backend_; }
  void set_backend(std::string backend) { backend_ = std::move(backend); }

  const std::string& error() const { return error_; }
  void set_error(std::string error) { error_ = std::move(error); }

  // Whether the *current* attempt reached execution; reset on retry.
  bool launched() const { return launched_; }
  void mark_launched() { launched_ = true; }
  void clear_launched() { launched_ = false; }

  // Cooperative cancellation: the flag is honored at the next lifecycle
  // point (backends cannot preempt a running payload).
  bool cancel_requested() const { return cancel_requested_; }
  void request_cancel() { cancel_requested_ = true; }

 private:
  std::string uid_;
  TaskDescription description_;
  std::shared_ptr<const TransitionHook> transition_hook_;
  TaskState state_ = TaskState::kNew;
  std::map<TaskState, sim::Time> state_times_;
  std::string backend_;
  std::string error_;
  int attempts_ = 0;
  bool launched_ = false;
  bool cancel_requested_ = false;
};

}  // namespace flotilla::core
