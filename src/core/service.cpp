#include "core/service.hpp"

#include "util/error.hpp"

namespace flotilla::core {

ServiceManager::ServiceManager(Session& session, TaskManager& tmgr)
    : session_(session), tmgr_(tmgr) {
  tmgr_.agent().on_task_start([this](const Task& task) {
    const auto it = uid_to_name_.find(task.uid());
    if (it == uid_to_name_.end()) return;
    const std::string name = it->second;
    auto& service = services_.at(name);
    if (service.startup_delay > 0.0) {
      session_.engine().in(service.startup_delay,
                           [this, name] { mark_ready(name); });
    } else {
      mark_ready(name);
    }
  });
  tmgr_.agent().add_final_listener([this](const Task& task) {
    const auto it = uid_to_name_.find(task.uid());
    if (it == uid_to_name_.end()) return;
    auto& service = services_.at(it->second);
    service.ended = true;
    service.ready = false;
  });
}

std::string ServiceManager::start(ServiceDescription description,
                                  std::function<void()> on_ready) {
  FLOT_CHECK(!description.name.empty(), "service needs a name");
  FLOT_CHECK(!services_.count(description.name), "duplicate service '",
             description.name, "'");
  TaskDescription task;
  task.name = "service:" + description.name;
  task.demand = description.demand;
  task.duration = description.lifetime;
  task.modality = description.modality;
  task.backend_hint = description.backend_hint;
  task.stage = "services";
  const auto uid = tmgr_.submit(std::move(task));

  Service service;
  service.uid = uid;
  service.startup_delay = description.startup_delay;
  if (on_ready) service.waiters.push_back(std::move(on_ready));
  uid_to_name_.emplace(uid, description.name);
  services_.emplace(std::move(description.name), std::move(service));
  return uid;
}

void ServiceManager::mark_ready(const std::string& name) {
  auto& service = services_.at(name);
  if (service.ended || service.ready) return;
  service.ready = true;
  auto waiters = std::move(service.waiters);
  service.waiters.clear();
  for (auto& waiter : waiters) waiter();
}

bool ServiceManager::ready(const std::string& name) const {
  const auto it = services_.find(name);
  return it != services_.end() && it->second.ready;
}

bool ServiceManager::running(const std::string& name) const {
  const auto it = services_.find(name);
  return it != services_.end() && !it->second.ended;
}

void ServiceManager::when_ready(const std::string& name,
                                std::function<void()> fn) {
  const auto it = services_.find(name);
  FLOT_CHECK(it != services_.end(), "unknown service '", name, "'");
  if (it->second.ready) {
    session_.engine().in(0.0, std::move(fn));
    return;
  }
  FLOT_CHECK(!it->second.ended, "service '", name, "' already ended");
  it->second.waiters.push_back(std::move(fn));
}

}  // namespace flotilla::core
