// AsyncFlow: future/continuation-style task composition.
//
// The paper's ecosystem runs workflow layers on top of RP — notably
// RADICAL-AsyncFlow ("fast and scalable asynchronous workflows", cited in
// §5) — whose model is futures and continuations rather than named stages.
// This is that API surface for Flotilla: submit() returns a TaskFuture;
// then() chains work onto completion; when_all()/when_any() join groups.
// All callbacks run inside the simulation event loop (single-threaded, no
// synchronization needed).
//
//   AsyncFlow flow(tmgr);
//   auto sim  = flow.submit(sim_task);
//   auto post = sim.then([&](const Task& t) { return flow.submit(reduce); });
//   flow.when_all({a, b, c}, [&] { ... });
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/task_manager.hpp"

namespace flotilla::core {

class AsyncFlow;

// Handle to an asynchronously executing task. Cheap to copy; all copies
// alias the same underlying state.
class TaskFuture {
 public:
  using Continuation = std::function<void(const Task&)>;

  TaskFuture() = default;

  const std::string& uid() const;
  bool valid() const { return state_ != nullptr; }
  bool done() const;               // final state reached
  bool succeeded() const;          // final state is DONE

  // Registers a continuation; fires immediately (via the event queue) if
  // the task already finished. Multiple continuations are allowed and run
  // in registration order.
  TaskFuture& then(Continuation fn);

 private:
  friend class AsyncFlow;

  struct State {
    std::string uid;
    const Task* task = nullptr;  // set at completion
    std::vector<Continuation> continuations;
    AsyncFlow* flow = nullptr;
  };

  explicit TaskFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class AsyncFlow {
 public:
  // The AsyncFlow takes over the TaskManager's completion callback; use
  // on_task() for a global observer instead.
  explicit AsyncFlow(TaskManager& tmgr);

  // Submits a task and returns its future.
  TaskFuture submit(TaskDescription description);

  // Fires `fn` once every listed future is final.
  void when_all(const std::vector<TaskFuture>& futures,
                std::function<void()> fn);

  // Fires `fn` with the first future to reach a final state (exactly once).
  void when_any(const std::vector<TaskFuture>& futures,
                std::function<void(const Task&)> fn);

  // Global per-task observer (runs before continuations).
  void on_task(std::function<void(const Task&)> fn) {
    observer_ = std::move(fn);
  }

  std::size_t inflight() const { return inflight_; }
  TaskManager& task_manager() { return tmgr_; }
  Session& session() { return tmgr_.session(); }

 private:
  friend class TaskFuture;

  void handle_completion(const Task& task);

  TaskManager& tmgr_;
  std::unordered_map<std::string, std::shared_ptr<TaskFuture::State>>
      pending_;
  std::function<void(const Task&)> observer_;
  std::size_t inflight_ = 0;
};

}  // namespace flotilla::core
