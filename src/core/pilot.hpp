// Pilot: a resource placeholder plus the agent that runs on it (§3).
//
// A pilot description names the node count and the backend stack to bring
// up inside the allocation — the five runtime configurations of Table 1 are
// all expressible here:
//
//   {nodes=4,    {srun}}                          -> Experiment srun
//   {nodes=1024, {flux x1}}                       -> Experiment flux_1
//   {nodes=64,   {flux x16}}                      -> Experiment flux_n
//   {nodes=64,   {dragon}}                        -> Experiment dragon
//   {nodes=64,   {flux x8 on 32n, dragon on 32n}} -> Experiment flux+dragon
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/agent.hpp"
#include "core/session.hpp"
#include "sim/resource.hpp"

namespace flotilla::core {

struct BackendSpec {
  std::string type;    // "srun" | "flux" | "dragon"
  int partitions = 1;  // flux/dragon: concurrent instances
  int nodes = 0;       // nodes for this backend; 0 = equal share of the rest
  // flux scheduling policy: 1 = strict FCFS, >1 = backfill window.
  int flux_backfill_depth = 64;
};

struct PilotDescription {
  int nodes = 1;
  std::vector<BackendSpec> backends{{"srun"}};
  bool trace_tasks = false;
  RouterPolicy router = RouterPolicy::kStatic;
};

enum class PilotState {
  kNew,
  kLaunching,
  kActive,    // agent up, at least one backend ready
  kFailed,    // no backend came up
  kCanceled,  // torn down
};

std::string_view to_string(PilotState state);

class Pilot {
 public:
  using ReadyHandler = std::function<void(bool ok, std::string error)>;

  Pilot(Session& session, std::string uid, PilotDescription description,
        platform::NodeRange allocation);

  const std::string& uid() const { return uid_; }
  const PilotDescription& description() const { return description_; }
  PilotState state() const { return state_; }
  platform::NodeRange allocation() const { return allocation_; }

  // Builds the backend stack and bootstraps the agent; `ready` fires once.
  void launch(ReadyHandler ready);
  void cancel();

  Agent& agent() { return *agent_; }
  sim::Resource& srun_ceiling() { return srun_ceiling_; }

  std::int64_t total_cores() const;
  std::int64_t total_gpus() const;

 private:
  void build_backends();

  Session& session_;
  std::string uid_;
  PilotDescription description_;
  platform::NodeRange allocation_;
  PilotState state_ = PilotState::kNew;
  sim::Resource srun_ceiling_;  // allocation-wide concurrent-srun ceiling
  std::unique_ptr<Agent> agent_;
};

class PilotManager {
 public:
  explicit PilotManager(Session& session) : session_(session) {}

  // Carves a contiguous allocation out of the cluster and creates the
  // pilot. Throws if the cluster has too few nodes left.
  Pilot& submit(PilotDescription description);

  std::size_t pilot_count() const { return pilots_.size(); }
  Pilot& pilot(std::size_t i) { return *pilots_.at(i); }

 private:
  Session& session_;
  std::vector<std::unique_ptr<Pilot>> pilots_;
  platform::NodeId next_node_ = 0;
};

}  // namespace flotilla::core
