#include "core/workflow.hpp"

#include "util/error.hpp"
#include "util/ordered.hpp"

namespace flotilla::core {

Workflow::Workflow(TaskManager& tmgr) : tmgr_(tmgr) {
  tmgr_.on_complete([this](const Task& task) { handle_completion(task); });
}

void Workflow::add_stage(std::string name,
                         std::vector<TaskDescription> tasks,
                         std::vector<std::string> deps) {
  FLOT_CHECK(!stages_.count(name), "duplicate stage '", name, "'");
  FLOT_CHECK(!tasks.empty(), "stage '", name, "' has no tasks");
  for (const auto& dep : deps) {
    FLOT_CHECK(stages_.count(dep), "stage '", name, "' depends on unknown '",
               dep, "'");
  }
  Stage stage;
  stage.remaining = tasks.size();
  stage.tasks = std::move(tasks);
  stage.deps = std::move(deps);
  const auto [it, inserted] = stages_.emplace(std::move(name), std::move(stage));
  (void)inserted;
  if (started_) maybe_submit(it->first);
}

void Workflow::start() {
  FLOT_CHECK(!started_, "workflow started twice");
  started_ = true;
  // Snapshot names first: submissions can complete stages synchronously in
  // degenerate cases and mutate the map's values. Sorted so submission
  // order never depends on hash layout.
  for (const auto& name : util::sorted_keys(stages_)) maybe_submit(name);
}

bool Workflow::deps_met(const Stage& stage) const {
  for (const auto& dep : stage.deps) {
    const auto it = stages_.find(dep);
    if (it == stages_.end() || !it->second.complete) return false;
  }
  return true;
}

void Workflow::maybe_submit(const std::string& name) {
  auto& stage = stages_.at(name);
  if (stage.submitted || !deps_met(stage)) return;
  stage.submitted = true;
  for (auto& description : stage.tasks) {
    if (description.stage.empty()) description.stage = name;
    const auto uid = tmgr_.submit(std::move(description));
    task_stage_.emplace(uid, name);
  }
  stage.tasks.clear();
}

bool Workflow::stage_complete(const std::string& name) const {
  const auto it = stages_.find(name);
  return it != stages_.end() && it->second.complete;
}

void Workflow::handle_completion(const Task& task) {
  if (task_handler_) task_handler_(task);
  const auto it = task_stage_.find(task.uid());
  if (it == task_stage_.end()) return;  // task outside this workflow
  const std::string stage_name = it->second;
  task_stage_.erase(it);
  if (task.state() != TaskState::kDone) ++failed_tasks_;

  {
    auto& stage = stages_.at(stage_name);
    FLOT_CHECK(stage.remaining > 0, "stage '", stage_name,
               "' over-completed");
    if (--stage.remaining > 0) return;
    stage.complete = true;
    ++completed_stages_;
  }  // drop the reference: the handler below may add stages (rehash)
  if (stage_handler_) stage_handler_(stage_name);

  // Unblock dependents over a sorted name snapshot — adaptive handlers may
  // have grown the map, and submission order must not depend on hash
  // layout. (Linear scan is fine: campaigns have tens to hundreds of
  // stages, and this runs once per completed stage.)
  std::vector<std::string> candidates;
  for (const auto& name : util::sorted_keys(stages_)) {
    const auto& candidate = stages_.at(name);
    if (!candidate.submitted && !candidate.complete) {
      candidates.push_back(name);
    }
  }
  for (const auto& name : candidates) maybe_submit(name);

  if (completed_stages_ == stages_.size() && done_handler_) done_handler_();
}

}  // namespace flotilla::core
