#include "core/profiler.hpp"

namespace flotilla::core {

void Profiler::record(const Task& task, const char* event) {
  if (!trace_tasks_) return;
  session_.trace().record("core.profiler", event, task.uid(),
                          static_cast<double>(task.description().demand.cores));
}

void Profiler::submitted(const Task& task) {
  metrics_.on_submit(session_.now());
  record(task, "task_submit");
}

void Profiler::state_change(const Task& task) {
  if (!trace_tasks_) return;
  session_.trace().record("core.profiler", "task_state", task.uid(),
                          static_cast<double>(task.state()));
}

void Profiler::launched(const Task& task) {
  const auto& demand = task.description().demand;
  metrics_.on_launch(session_.now(), demand.cores, demand.gpus);
  record(task, "task_exec_start");
}

void Profiler::attempt_ended(const Task& task) {
  const auto& demand = task.description().demand;
  metrics_.on_attempt_end(session_.now(), demand.cores, demand.gpus);
  record(task, "task_exec_stop");
}

void Profiler::retried(const Task& task) {
  metrics_.on_retry();
  record(task, "task_retry");
}

void Profiler::finalized(const Task& task, bool success) {
  metrics_.on_final(session_.now(), success);
  record(task, success ? "task_done" : "task_failed");
}

}  // namespace flotilla::core
