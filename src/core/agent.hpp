// The RP Agent: acquires resources and manages task execution (§3, Fig 1).
//
// Pipeline per task (each arrow is a serialized component with a calibrated
// per-task cost, so RP's own throughput ceilings emerge from queueing):
//
//   TaskManager -> [agent scheduler] -> router -> [backend executor] ->
//   TaskBackend -> (events) -> [collector] -> final state / retry
//
// The router implements the paper's task-type-aware backend selection:
// executables to Flux (or srun), functions to Dragon, with hints and
// failover. The collector applies retry-with-budget fault tolerance and
// routes retries around unhealthy backends (§3.2's failover behaviour).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/profiler.hpp"
#include "core/session.hpp"
#include "core/task.hpp"
#include "platform/backend.hpp"
#include "sched/placer.hpp"
#include "sched/queue.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"

namespace flotilla::core {

// Backend selection policy (§6 lists "dynamic backend selection based on
// workload characteristics" as future work; both policies are provided).
enum class RouterPolicy {
  // Hint, else first registered healthy backend accepting the modality.
  kStatic,
  // Hint, else the compatible backend with the least queued work
  // (executor backlog + backend in-flight), balancing mixed loads.
  kAdaptive,
};

class Agent {
 public:
  using TaskHandler = std::function<void(const Task&)>;
  using ReadyHandler = std::function<void(bool ok, std::string error)>;

  Agent(Session& session, platform::NodeRange allocation,
        bool trace_tasks = false,
        RouterPolicy router = RouterPolicy::kStatic);

  // Registers a backend executor; `submit_cost` is RP's per-task
  // serialization+RPC cost toward that backend (CoreCalibration). Order of
  // registration is the router's preference order.
  void add_backend(std::unique_ptr<platform::TaskBackend> backend,
                   double submit_cost);

  // Bootstraps the agent and all backends concurrently. Reports success if
  // at least one backend comes up; backends that fail to bootstrap are
  // dropped (degraded mode) and noted in the error string.
  void bootstrap(ReadyHandler ready);
  bool active() const { return active_; }

  // Accepts a task in TMGR_SCHEDULING state.
  void execute(std::shared_ptr<Task> task);

  // Requests cancellation of a non-final task. Tasks not yet handed to a
  // backend cancel at their next pipeline step; running tasks cancel when
  // their payload ends (backends cannot preempt). Returns false if the
  // task is unknown or already final.
  bool cancel(const std::string& uid);

  // Fires exactly once per task, on a final state. Single owner (the task
  // manager); observers should use add_final_listener.
  void on_task_final(TaskHandler handler) {
    final_handler_ = std::move(handler);
  }

  // Observer called (after the owner) on every final state.
  void add_final_listener(TaskHandler handler) {
    final_listeners_.push_back(std::move(handler));
  }

  // Registers a listener fired whenever a task's payload begins executing
  // (also on retried attempts). Multiple listeners are supported; service
  // managers use this to detect service readiness.
  void on_task_start(TaskHandler handler) {
    start_handlers_.push_back(std::move(handler));
  }

  Profiler& profiler() { return profiler_; }
  platform::NodeRange allocation() const { return allocation_; }
  std::size_t inflight() const { return tasks_.size(); }

  platform::TaskBackend* backend(const std::string& name);
  std::vector<std::string> backend_names() const;

  void shutdown();

 private:
  struct BackendSlot {
    std::unique_ptr<platform::TaskBackend> backend;
    std::unique_ptr<sim::Server> submit_server;
    double submit_cost = 0.0;
    bool ready = false;
    // State for externally scheduled backends (self_scheduling() false):
    // the agent places tasks itself, holds their resources, and waitlists
    // tasks that do not fit until a completion frees capacity. The placer
    // rotates an indexed first-fit cursor over the backend's span; the
    // waitlist policy is strict FIFO (head-of-line blocking) to mirror
    // the agent scheduler's FIFO admission.
    std::unique_ptr<sched::Placer> placer;
    std::unordered_map<std::string, platform::Placement> held;
    sched::TaskQueue waitlist{std::make_unique<sched::FifoPolicy>()};
  };

  void enter_scheduling(std::shared_ptr<Task> task);
  void schedule(std::shared_ptr<Task> task);
  double staging_time(double mb);
  BackendSlot* route(const Task& task);
  void submit_to(BackendSlot& slot, std::shared_ptr<Task> task);
  // Agent-side placement for externally scheduled backends; returns false
  // when the task was waitlisted.
  bool place_and_launch(BackendSlot& slot, std::shared_ptr<Task> task);
  void release_held(BackendSlot& slot, const std::string& uid);
  void drain_waitlist(BackendSlot& slot);
  BackendSlot* slot_of(const std::string& backend_name);
  void handle_start(const std::string& uid);
  void handle_completion(const platform::LaunchOutcome& outcome);
  void finalize(std::shared_ptr<Task> task, TaskState state);
  bool any_backend_for(const Task& task);

  Session& session_;
  platform::NodeRange allocation_;
  RouterPolicy router_policy_;
  obs::TraceHandle obs_trace_;
  Profiler profiler_;
  sim::RngStream rng_;
  sim::Server scheduler_;   // agent scheduler component
  sim::Server collector_;   // completion bookkeeping component
  sim::Server stager_in_;   // concurrent input-staging streams
  sim::Server stager_out_;  // concurrent output-staging streams
  std::vector<BackendSlot> backends_;
  std::unordered_map<std::string, std::shared_ptr<Task>> tasks_;
  TaskHandler final_handler_;
  std::vector<TaskHandler> final_listeners_;
  std::vector<TaskHandler> start_handlers_;
  bool active_ = false;
  bool shut_down_ = false;
};

}  // namespace flotilla::core
