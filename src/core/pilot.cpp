#include "core/pilot.hpp"

#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "prrte/dvm_backend.hpp"
#include "slurm/srun_backend.hpp"
#include "util/error.hpp"

namespace flotilla::core {

std::string_view to_string(PilotState state) {
  switch (state) {
    case PilotState::kNew:
      return "NEW";
    case PilotState::kLaunching:
      return "LAUNCHING";
    case PilotState::kActive:
      return "ACTIVE";
    case PilotState::kFailed:
      return "FAILED";
    case PilotState::kCanceled:
      return "CANCELED";
  }
  return "?";
}

Pilot::Pilot(Session& session, std::string uid, PilotDescription description,
             platform::NodeRange allocation)
    : session_(session),
      uid_(std::move(uid)),
      description_(std::move(description)),
      allocation_(allocation),
      srun_ceiling_(session.engine(),
                    session.cluster().spec().srun_concurrency_ceiling) {
  FLOT_CHECK(!description_.backends.empty(), "pilot needs >= 1 backend");
}

std::int64_t Pilot::total_cores() const {
  return session_.cluster().total_cores(allocation_);
}

std::int64_t Pilot::total_gpus() const {
  return session_.cluster().total_gpus(allocation_);
}

void Pilot::build_backends() {
  agent_ = std::make_unique<Agent>(session_, allocation_,
                                   description_.trace_tasks,
                                   description_.router);
  const auto& cal = session_.calibration();

  // Split the allocation: backends with explicit node counts take theirs
  // first, the rest share the remainder equally.
  int fixed = 0, flexible = 0;
  for (const auto& spec : description_.backends) {
    spec.nodes > 0 ? fixed += spec.nodes : ++flexible;
  }
  FLOT_CHECK(fixed <= allocation_.count, "backend node demands (", fixed,
             ") exceed pilot allocation (", allocation_.count, ")");
  const int share_pool = allocation_.count - fixed;
  FLOT_CHECK(flexible == 0 || share_pool >= flexible,
             "not enough nodes to share among backends");

  platform::NodeId next = allocation_.first;
  int flex_seen = 0;
  for (const auto& spec : description_.backends) {
    int count = spec.nodes;
    if (count == 0) {
      // Near-equal split of the shared pool.
      const int base = share_pool / flexible;
      const int extra = flex_seen < share_pool % flexible ? 1 : 0;
      count = base + extra;
      ++flex_seen;
    }
    const platform::NodeRange span{next, count};
    next += count;
    FLOT_CHECK(span.end() <= allocation_.end(),
               "backend span exceeds allocation");

    if (spec.type == "srun") {
      agent_->add_backend(
          std::make_unique<slurm::SrunBackend>(
              session_.engine(), session_.cluster(), span,
              cal.slurm, session_.seed(), &srun_ceiling_),
          cal.core.submit_cost_srun);
    } else if (spec.type == "flux") {
      agent_->add_backend(
          std::make_unique<flux::FluxBackend>(
              session_.engine(), session_.cluster(), span, spec.partitions,
              cal.flux, session_.seed(), &srun_ceiling_,
              spec.flux_backfill_depth),
          cal.core.submit_cost_flux);
    } else if (spec.type == "dragon") {
      agent_->add_backend(
          std::make_unique<dragon::DragonBackend>(
              session_.engine(), session_.cluster(), span, cal.dragon,
              session_.seed(), spec.partitions),
          cal.core.submit_cost_dragon);
    } else if (spec.type == "prrte") {
      agent_->add_backend(
          std::make_unique<prrte::DvmBackend>(
              session_.engine(), session_.cluster(), span, cal.prrte,
              session_.seed()),
          cal.core.submit_cost_prrte);
    } else {
      util::raise("unknown backend type '", spec.type, "'");
    }
  }
}

void Pilot::launch(ReadyHandler ready) {
  FLOT_CHECK(state_ == PilotState::kNew, "pilot ", uid_,
             " launched twice (state ", to_string(state_), ")");
  state_ = PilotState::kLaunching;
  session_.trace().record("pilot", "launch", uid_,
                          static_cast<double>(allocation_.count));
  build_backends();
  agent_->bootstrap([this, ready = std::move(ready)](bool ok,
                                                     std::string error) {
    state_ = ok ? PilotState::kActive : PilotState::kFailed;
    session_.trace().record("pilot", ok ? "active" : "failed", uid_);
    if (ready) ready(ok, std::move(error));
  });
}

void Pilot::cancel() {
  if (state_ == PilotState::kCanceled) return;
  if (agent_) agent_->shutdown();
  state_ = PilotState::kCanceled;
  session_.trace().record("pilot", "canceled", uid_);
}

Pilot& PilotManager::submit(PilotDescription description) {
  FLOT_CHECK(description.nodes >= 1, "pilot needs >= 1 node");
  FLOT_CHECK(next_node_ + description.nodes <= session_.cluster().size(),
             "cluster exhausted: requested ", description.nodes,
             " nodes, free ", session_.cluster().size() - next_node_);
  const platform::NodeRange allocation{next_node_, description.nodes};
  next_node_ += description.nodes;
  pilots_.push_back(std::make_unique<Pilot>(
      session_, session_.ids().next("pilot", 4), std::move(description),
      allocation));
  return *pilots_.back();
}

}  // namespace flotilla::core
