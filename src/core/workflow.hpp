// Workflow: stages of tasks with dependencies, submitted through a
// TaskManager as their dependencies resolve.
//
// This is the control-flow layer the IMPECCABLE campaign generator builds
// on (§2: "workflow of workflows"): stages can be added dynamically while
// the workflow runs, which is how adaptive task generation ("the number of
// tasks ... is adjusted dynamically at runtime", §4.2) is expressed.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/task.hpp"
#include "core/task_manager.hpp"

namespace flotilla::core {

class Workflow {
 public:
  using StageHandler = std::function<void(const std::string& stage)>;
  using DoneHandler = std::function<void()>;
  using TaskHandler = std::function<void(const Task&)>;

  explicit Workflow(TaskManager& tmgr);

  // Adds a stage. `deps` must name existing stages. May be called before or
  // after start(), enabling adaptive campaigns. Stages with no unresolved
  // deps are submitted immediately once the workflow started.
  void add_stage(std::string name, std::vector<TaskDescription> tasks,
                 std::vector<std::string> deps = {});

  void on_stage_complete(StageHandler handler) {
    stage_handler_ = std::move(handler);
  }
  // Fires whenever all known stages are complete (it can fire again if an
  // adaptive hook adds more work afterwards).
  void on_drained(DoneHandler handler) { done_handler_ = std::move(handler); }
  // Per-task passthrough (the workflow owns the TaskManager's completion
  // callback).
  void on_task(TaskHandler handler) { task_handler_ = std::move(handler); }

  void start();
  bool started() const { return started_; }

  bool stage_complete(const std::string& name) const;
  std::size_t stages_total() const { return stages_.size(); }
  std::size_t stages_completed() const { return completed_stages_; }
  std::uint64_t tasks_failed() const { return failed_tasks_; }

 private:
  struct Stage {
    std::vector<TaskDescription> tasks;
    std::vector<std::string> deps;
    std::size_t remaining = 0;
    bool submitted = false;
    bool complete = false;
  };

  void maybe_submit(const std::string& name);
  bool deps_met(const Stage& stage) const;
  void handle_completion(const Task& task);

  TaskManager& tmgr_;
  std::unordered_map<std::string, Stage> stages_;
  std::unordered_map<std::string, std::string> task_stage_;  // uid -> stage
  StageHandler stage_handler_;
  DoneHandler done_handler_;
  TaskHandler task_handler_;
  std::size_t completed_stages_ = 0;
  std::uint64_t failed_tasks_ = 0;
  bool started_ = false;
};

}  // namespace flotilla::core
