#include "core/agent.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace flotilla::core {

Agent::Agent(Session& session, platform::NodeRange allocation,
             bool trace_tasks, RouterPolicy router)
    : session_(session),
      allocation_(allocation),
      router_policy_(router),
      obs_trace_(session.trace_handle()),
      profiler_(session, trace_tasks),
      rng_(session.seed(), "agent"),
      scheduler_(session.engine(), 1),
      collector_(session.engine(), 1),
      stager_in_(session.engine(),
                 session.calibration().core.stager_instances),
      stager_out_(session.engine(),
                  session.calibration().core.stager_instances) {}

void Agent::add_backend(std::unique_ptr<platform::TaskBackend> backend,
                        double submit_cost) {
  FLOT_CHECK(!active_, "cannot add backends after bootstrap");
  BackendSlot slot;
  slot.backend = std::move(backend);
  slot.submit_server = std::make_unique<sim::Server>(session_.engine(), 1);
  slot.submit_cost = submit_cost;
  if (!slot.backend->self_scheduling()) {
    // The agent is this backend's scheduler; give it a placer over the
    // backend's span.
    slot.placer = std::make_unique<sched::Placer>(session_.cluster(),
                                                  slot.backend->span());
  }
  if (obs_trace_) {
    slot.backend->set_trace(obs_trace_);
    const auto& name = slot.backend->name();
    if (slot.placer) {
      slot.placer->set_trace(obs_trace_, util::cat("agent.", name));
    }
    slot.waitlist.set_trace(obs_trace_,
                            util::cat("agent.", name, ".waitlist"));
  }
  // Backend callbacks fire on the backend's shard; the agent pipeline
  // (scheduler, collector, waitlists) lives on the control shard, so hop
  // there. With a single-shard engine invoke_on calls straight through —
  // the historical path, bit-identical.
  slot.backend->on_task_start([this](const std::string& uid) {
    session_.engine().invoke_on(sim::kControlShard,
                                [this, uid] { handle_start(uid); });
  });
  slot.backend->on_task_complete(
      [this](const platform::LaunchOutcome& outcome) {
        session_.engine().invoke_on(
            sim::kControlShard,
            [this, outcome] { handle_completion(outcome); });
      });
  backends_.push_back(std::move(slot));
}

void Agent::bootstrap(ReadyHandler ready) {
  FLOT_CHECK(!backends_.empty(), "agent has no backends");
  const auto& cal = session_.calibration().core;
  auto ready_shared = std::make_shared<ReadyHandler>(std::move(ready));
  // Agent components come up first, then all backends bootstrap
  // concurrently (Fig 7's non-additive overhead).
  session_.engine().in(
      rng_.lognormal_mean_cv(cal.agent_bootstrap, cal.jitter_cv),
      [this, ready_shared] {
        auto remaining = std::make_shared<int>(
            static_cast<int>(backends_.size()));
        auto errors = std::make_shared<std::string>();
        for (auto& slot : backends_) {
          BackendSlot* slot_ptr = &slot;
          slot.backend->bootstrap([this, slot_ptr, remaining, errors,
                                   ready_shared](bool ok,
                                                 std::string error) {
            slot_ptr->ready = ok;
            if (!ok) {
              *errors += util::cat("[", slot_ptr->backend->name(), ": ",
                                   error, "]");
            }
            if (--*remaining == 0) {
              const bool any = std::any_of(
                  backends_.begin(), backends_.end(),
                  [](const BackendSlot& s) { return s.ready; });
              active_ = any;
              session_.trace().record("agent", "bootstrap_done", "",
                                      any ? 1.0 : 0.0);
              (*ready_shared)(any, *errors);
            }
          });
        }
      });
}

double Agent::staging_time(double mb) {
  const auto& cal = session_.calibration().core;
  return rng_.lognormal_mean_cv(
      cal.stage_latency + mb / cal.fs_stream_bandwidth_mbps, cal.jitter_cv);
}

void Agent::execute(std::shared_ptr<Task> task) {
  FLOT_CHECK(active_, "agent is not active");
  FLOT_CHECK(task->state() == TaskState::kTmgrScheduling ||
                 task->state() == TaskState::kAgentScheduling,
             "unexpected task state ", to_string(task->state()));
  if (task->state() == TaskState::kAgentScheduling) {
    // Retry path: data is already staged in.
    enter_scheduling(std::move(task));
    return;
  }
  tasks_.emplace(task->uid(), task);
  if (task->cancel_requested()) {
    task->set_error("canceled by user");
    finalize(std::move(task), TaskState::kCanceled);
    return;
  }
  if (task->description().input_mb > 0.0) {
    task->advance(TaskState::kStagingInput, session_.now());
    profiler_.state_change(*task);
    const double mb = task->description().input_mb;
    obs_trace_.begin(obs::SpanType::kTaskStageIn, "agent", task->uid(), mb);
    stager_in_.submit(staging_time(mb),
                      [this, task = std::move(task)]() mutable {
                        obs_trace_.end(obs::SpanType::kTaskStageIn, "agent",
                                       task->uid());
                        task->advance(TaskState::kAgentScheduling,
                                      session_.now());
                        profiler_.state_change(*task);
                        enter_scheduling(std::move(task));
                      });
    return;
  }
  task->advance(TaskState::kAgentScheduling, session_.now());
  profiler_.state_change(*task);
  enter_scheduling(std::move(task));
}

void Agent::enter_scheduling(std::shared_ptr<Task> task) {
  const auto& cal = session_.calibration().core;
  obs_trace_.begin(obs::SpanType::kTaskSchedule, "agent", task->uid());
  scheduler_.submit(
      rng_.lognormal_mean_cv(cal.agent_sched_cost, cal.jitter_cv),
      [this, task = std::move(task)]() mutable { schedule(std::move(task)); });
}

Agent::BackendSlot* Agent::route(const Task& task) {
  const auto& desc = task.description();
  // An explicit, healthy hint always wins. Without one:
  //  - kStatic: first registered healthy backend accepting the modality
  //    (registration order encodes preference, e.g. flux for executables);
  //  - kAdaptive: the compatible backend with the least queued work.
  BackendSlot* best = nullptr;
  std::size_t best_load = 0;
  for (auto& slot : backends_) {
    if (!slot.ready || !slot.backend->healthy()) continue;
    if (!slot.backend->accepts(desc.modality)) continue;
    // Gang members need a backend with atomic co-scheduling.
    if (!desc.gang.empty() && !slot.backend->supports_coscheduling()) {
      continue;
    }
    if (slot.backend->name() == desc.backend_hint) return &slot;
    if (router_policy_ == RouterPolicy::kStatic) {
      if (!best) best = &slot;
      continue;
    }
    const std::size_t load =
        slot.submit_server->backlog() + slot.backend->inflight();
    if (!best || load < best_load) {
      best = &slot;
      best_load = load;
    }
  }
  // If a hint was given but its backend is gone, `best` is the failover.
  return best;
}

bool Agent::cancel(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return false;
  auto task = it->second;
  task->request_cancel();
  // Waitlisted tasks can be removed right away; everything else cancels at
  // its next pipeline step.
  for (auto& slot : backends_) {
    if (slot.waitlist.remove(uid) == nullptr) continue;
    task->set_error("canceled by user");
    finalize(std::move(task), TaskState::kCanceled);
    return true;
  }
  return true;
}

void Agent::schedule(std::shared_ptr<Task> task) {
  obs_trace_.end(obs::SpanType::kTaskSchedule, "agent", task->uid());
  if (shut_down_ || task->cancel_requested()) {
    task->set_error(shut_down_ ? "agent shut down" : "canceled by user");
    finalize(std::move(task), TaskState::kCanceled);
    return;
  }
  BackendSlot* slot = route(*task);
  if (!slot) {
    task->set_error(
        !task->description().gang.empty()
            ? std::string("no healthy backend supports co-scheduling")
            : util::cat("no healthy backend accepts task (modality=",
                        task->description().modality ==
                                platform::TaskModality::kFunction
                            ? "function"
                            : "executable",
                        ")"));
    finalize(std::move(task), TaskState::kFailed);
    return;
  }
  if (obs_trace_) {
    obs_trace_.instant(
        obs::SpanType::kRouting, "agent", task->uid(),
        static_cast<double>(slot - backends_.data()));
  }
  task->advance(TaskState::kExecutorPending, session_.now());
  profiler_.state_change(*task);
  submit_to(*slot, std::move(task));
}

void Agent::submit_to(BackendSlot& slot, std::shared_ptr<Task> task) {
  const auto& cal = session_.calibration().core;
  task->set_backend(slot.backend->name());
  task->begin_attempt();
  BackendSlot* slot_ptr = &slot;
  slot.submit_server->submit(
      rng_.lognormal_mean_cv(slot.submit_cost, cal.jitter_cv),
      [this, slot_ptr, task = std::move(task)]() mutable {
        if (task->cancel_requested()) {
          task->set_error("canceled by user");
          finalize(std::move(task), TaskState::kCanceled);
          return;
        }
        if (!slot_ptr->backend->healthy()) {
          // Backend died between routing and submit: retry the routing.
          task->advance(TaskState::kAgentScheduling, session_.now());
          execute(std::move(task));
          return;
        }
        if (!slot_ptr->backend->self_scheduling()) {
          // The agent is the scheduler (PRRTE DVM model): place here,
          // waitlist if the span is full.
          place_and_launch(*slot_ptr, std::move(task));
          return;
        }
        platform::LaunchRequest request;
        request.id = task->uid();
        request.demand = task->description().demand;
        request.duration = task->description().duration;
        request.modality = task->description().modality;
        request.fail_probability = task->description().fail_probability;
        request.gang = task->description().gang;
        request.gang_size = task->description().gang_size;
        request.priority = task->description().priority;
        obs_trace_.begin(obs::SpanType::kTaskLaunch,
                         slot_ptr->backend->name(), task->uid());
        slot_ptr->backend->submit(std::move(request));
      });
}

bool Agent::place_and_launch(BackendSlot& slot, std::shared_ptr<Task> task) {
  auto placement = slot.placer->place(task->description().demand);
  if (!placement) {
    sched::QueueEntry entry;
    entry.id = task->uid();
    entry.priority = task->description().priority;
    entry.demand = task->description().demand;
    entry.payload = std::move(task);
    slot.waitlist.push(std::move(entry));
    return false;
  }
  platform::LaunchRequest request;
  request.id = task->uid();
  request.demand = task->description().demand;
  request.duration = task->description().duration;
  request.modality = task->description().modality;
  request.fail_probability = task->description().fail_probability;
  request.placement = *placement;
  request.preplaced = true;
  slot.held.emplace(task->uid(), std::move(*placement));
  obs_trace_.begin(obs::SpanType::kTaskLaunch, slot.backend->name(),
                   task->uid());
  slot.backend->submit(std::move(request));
  return true;
}

Agent::BackendSlot* Agent::slot_of(const std::string& backend_name) {
  for (auto& slot : backends_) {
    if (slot.backend->name() == backend_name) return &slot;
  }
  return nullptr;
}

void Agent::release_held(BackendSlot& slot, const std::string& uid) {
  const auto it = slot.held.find(uid);
  if (it == slot.held.end()) return;
  slot.placer->release(it->second);
  slot.held.erase(it);
  drain_waitlist(slot);
}

void Agent::drain_waitlist(BackendSlot& slot) {
  // The waitlist policy bounds how far past a blocked entry a drain pass
  // may look. The default FIFO policy is strict (head only): the first
  // task that does not fit blocks the rest, mirroring the agent
  // scheduler's FIFO admission. After every launch the scan restarts —
  // capacity changed.
  std::size_t i = 0;
  while (slot.backend->healthy() && i < slot.waitlist.scan_limit()) {
    auto placement = slot.placer->place(slot.waitlist.at(i).demand);
    if (!placement) {
      ++i;
      continue;
    }
    auto task =
        std::static_pointer_cast<Task>(slot.waitlist.take(i).payload);
    platform::LaunchRequest request;
    request.id = task->uid();
    request.demand = task->description().demand;
    request.duration = task->description().duration;
    request.modality = task->description().modality;
    request.fail_probability = task->description().fail_probability;
    request.placement = *placement;
    request.preplaced = true;
    slot.held.emplace(task->uid(), std::move(*placement));
    obs_trace_.begin(obs::SpanType::kTaskLaunch, slot.backend->name(),
                     task->uid());
    slot.backend->submit(std::move(request));
    i = 0;
  }
}

void Agent::handle_start(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end()) return;  // canceled meanwhile
  auto& task = it->second;
  obs_trace_.end(obs::SpanType::kTaskLaunch, task->backend(), uid);
  obs_trace_.begin(obs::SpanType::kTaskRun, task->backend(), uid,
                   static_cast<double>(task->description().demand.cores));
  task->advance(TaskState::kRunning, session_.now());
  task->mark_launched();
  profiler_.launched(*task);
  profiler_.state_change(*task);
  for (const auto& handler : start_handlers_) handler(*task);
}

void Agent::handle_completion(const platform::LaunchOutcome& outcome) {
  const auto it = tasks_.find(outcome.id);
  if (it == tasks_.end()) return;
  auto task = it->second;
  if (obs_trace_) {
    // A launched attempt closes its run span; one that never started
    // (backend rejected/crashed pre-start) closes its launch span instead.
    obs_trace_.end(task->launched() ? obs::SpanType::kTaskRun
                                    : obs::SpanType::kTaskLaunch,
                   task->backend(), task->uid(), outcome.success ? 1.0 : 0.0);
    obs_trace_.begin(obs::SpanType::kTaskCollect, "agent", task->uid());
  }
  // Resources the agent placed for an externally scheduled backend are
  // returned the moment the backend reports completion.
  if (BackendSlot* slot = slot_of(task->backend())) {
    release_held(*slot, task->uid());
    if (!slot->backend->healthy() && !slot->waitlist.empty()) {
      // The backend died: re-route its waitlisted tasks (they never
      // launched, so this is failover, not a retry).
      for (auto& entry : slot->waitlist.drain()) {
        auto waiting = std::static_pointer_cast<Task>(std::move(entry.payload));
        waiting->advance(TaskState::kAgentScheduling, session_.now());
        execute(std::move(waiting));
      }
    }
  }
  const auto& cal = session_.calibration().core;
  const bool success = outcome.success;
  std::string error = outcome.error;
  collector_.submit(
      rng_.lognormal_mean_cv(cal.collect_cost, cal.jitter_cv),
      [this, task = std::move(task), success,
       error = std::move(error)]() mutable {
        obs_trace_.end(obs::SpanType::kTaskCollect, "agent", task->uid());
        if (task->launched()) {
          profiler_.attempt_ended(*task);
        }
        if (task->cancel_requested()) {
          task->set_error("canceled by user");
          finalize(std::move(task), TaskState::kCanceled);
          return;
        }
        if (success) {
          if (task->description().output_mb > 0.0) {
            task->advance(TaskState::kStagingOutput, session_.now());
            profiler_.state_change(*task);
            const double mb = task->description().output_mb;
            obs_trace_.begin(obs::SpanType::kTaskStageOut, "agent",
                             task->uid(), mb);
            stager_out_.submit(staging_time(mb),
                               [this, task = std::move(task)]() mutable {
                                 obs_trace_.end(obs::SpanType::kTaskStageOut,
                                                "agent", task->uid());
                                 finalize(std::move(task), TaskState::kDone);
                               });
            return;
          }
          finalize(std::move(task), TaskState::kDone);
          return;
        }
        task->set_error(error);
        // Retry with budget, re-routing around unhealthy backends.
        const int budget = task->description().max_retries + 1;
        if (!shut_down_ && task->attempts() < budget &&
            any_backend_for(*task)) {
          profiler_.retried(*task);
          task->clear_launched();
          task->advance(TaskState::kAgentScheduling, session_.now());
          profiler_.state_change(*task);
          execute(std::move(task));
          return;
        }
        finalize(std::move(task), TaskState::kFailed);
      });
}

bool Agent::any_backend_for(const Task& task) {
  for (auto& slot : backends_) {
    if (slot.ready && slot.backend->healthy() &&
        slot.backend->accepts(task.description().modality)) {
      return true;
    }
  }
  return false;
}

void Agent::finalize(std::shared_ptr<Task> task, TaskState state) {
  // A retried task re-enters tasks_ only once; guard double finalize.
  if (tasks_.erase(task->uid()) == 0 && is_final(task->state())) return;
  task->advance(state, session_.now());
  profiler_.state_change(*task);
  profiler_.finalized(*task, state == TaskState::kDone);
  if (final_handler_) final_handler_(*task);
  for (const auto& listener : final_listeners_) listener(*task);
  obs_trace_.instant(obs::SpanType::kStateCallback, "agent", task->uid(),
                     static_cast<double>(state));
}

platform::TaskBackend* Agent::backend(const std::string& name) {
  for (auto& slot : backends_) {
    if (slot.backend->name() == name) return slot.backend.get();
  }
  return nullptr;
}

std::vector<std::string> Agent::backend_names() const {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& slot : backends_) names.push_back(slot.backend->name());
  return names;
}

void Agent::shutdown() {
  shut_down_ = true;
  for (auto& slot : backends_) {
    // Waitlisted tasks never reached a backend; cancel them here.
    for (auto& entry : slot.waitlist.drain()) {
      auto task = std::static_pointer_cast<Task>(std::move(entry.payload));
      task->set_error("agent shut down");
      finalize(std::move(task), TaskState::kCanceled);
    }
    if (slot.backend->healthy()) slot.backend->shutdown();
  }
}

}  // namespace flotilla::core
