// Service tasks: persistent components running inside the pilot.
//
// §2 motivates them directly: "reinforcement learning agents, active
// learning loops, and streaming pipelines ... often require persistent
// services (e.g., learners, replay buffers)". RP accepts service
// descriptions alongside task descriptions (Fig 1 ②); Flotilla models a
// service as a long-lived task whose readiness gates dependent work.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/task_manager.hpp"

namespace flotilla::core {

struct ServiceDescription {
  std::string name;  // registry key; must be unique per manager
  platform::ResourceDemand demand;
  // How long the service stays up. Services outlive the workload they
  // serve; pick a lifetime covering the session (there is no preemptive
  // cancel inside a backend).
  sim::Time lifetime = 3600.0;
  // Delay between the service process starting and its endpoint accepting
  // clients (model load, port bind, ...).
  sim::Time startup_delay = 0.0;
  platform::TaskModality modality = platform::TaskModality::kExecutable;
  std::string backend_hint;
};

class ServiceManager {
 public:
  ServiceManager(Session& session, TaskManager& tmgr);

  // Launches the service through the normal task path; returns its task
  // uid. `on_ready` (optional) fires once the endpoint is up.
  std::string start(ServiceDescription description,
                    std::function<void()> on_ready = {});

  bool ready(const std::string& name) const;
  bool running(const std::string& name) const;

  // Invokes `fn` as soon as the named service is ready (immediately if it
  // already is). Throws for unknown services.
  void when_ready(const std::string& name, std::function<void()> fn);

  std::size_t count() const { return services_.size(); }

 private:
  struct Service {
    std::string uid;
    sim::Time startup_delay = 0.0;
    bool ready = false;
    bool ended = false;
    std::vector<std::function<void()>> waiters;
  };

  void mark_ready(const std::string& name);

  Session& session_;
  TaskManager& tmgr_;
  std::unordered_map<std::string, Service> services_;
  std::unordered_map<std::string, std::string> uid_to_name_;
};

}  // namespace flotilla::core
