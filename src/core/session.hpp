// Session: the root object of a Flotilla run.
//
// Owns the simulation engine, the cluster model, the calibration profile,
// the trace, and id generation — everything components need shared access
// to. Mirrors radical.pilot.Session as the umbrella for pilot and task
// managers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/tracer.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/config.hpp"
#include "util/id_registry.hpp"

namespace flotilla::core {

class Session {
 public:
  // `num_nodes` sizes the modeled machine (the job allocation lives inside
  // it); `seed` drives every random stream deterministically.
  //
  // `engine_shards` partitions the event calendar (docs/sharding.md):
  // backends self-assign a shard via engine().affinity(name) and the agent
  // hops completion events back to the control shard, so the schedule is
  // identical for any shard count (the determinism suites assert this).
  //
  // `engine_threads` enables concurrent shard drains (clamped to
  // [1, engine_shards] by the engine). Safe because every class on the
  // shared-state inventory carries a machine-checked confinement proof —
  // flotilla-analyze's conf-* passes verify analyze/confined.txt on every
  // CI run (docs/correctness.md#confinement-proofs). Threaded sessions
  // must be driven through run(): step() executes on the calling thread
  // and would serialize the drains. Lookahead stays 0 — the
  // same-timestamp batch drain keeps virtual time monotone for the
  // invariant monitor.
  Session(platform::PlatformSpec spec, int num_nodes, std::uint64_t seed = 42,
          platform::Calibration calibration = platform::frontier_calibration(),
          int engine_shards = 1, int engine_threads = 1);

  sim::Engine& engine() { return engine_; }
  platform::Cluster& cluster() { return cluster_; }
  const platform::Calibration& calibration() const { return calibration_; }
  sim::Trace& trace() { return trace_; }
  util::IdRegistry& ids() { return ids_; }

  // Structured tracing (src/obs). Off by default — paper-scale runs
  // launch hundreds of thousands of tasks. Enable *before* constructing
  // pilots/task managers: components capture their TraceHandle at
  // construction. The handle is null (all record calls no-ops) until then.
  obs::Tracer& enable_tracing(
      std::size_t capacity = obs::Tracer::kDefaultCapacity);
  obs::Tracer* tracer() { return tracer_.get(); }
  obs::TraceHandle trace_handle() { return obs::TraceHandle(tracer_.get()); }
  std::uint64_t seed() const { return seed_; }
  const std::string& uid() const { return uid_; }

  // Runs the simulation until the event queue drains (or `until`).
  void run(sim::Time until = sim::kInfiniteTime) { engine_.run(until); }
  sim::Time now() const { return engine_.now(); }

 private:
  sim::Engine engine_;
  platform::Cluster cluster_;
  platform::Calibration calibration_;
  sim::Trace trace_;
  std::unique_ptr<obs::Tracer> tracer_;
  util::IdRegistry ids_;
  std::uint64_t seed_;
  std::string uid_;
};

}  // namespace flotilla::core
