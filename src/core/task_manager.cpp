#include "core/task_manager.hpp"

#include "util/error.hpp"

namespace flotilla::core {

TaskManager::TaskManager(Session& session, Agent& agent)
    : session_(session),
      agent_(agent),
      rng_(session.seed(), "tmgr"),
      intake_(session.engine(), 1),
      obs_trace_(session.trace_handle()) {
  agent_.on_task_final([this](const Task& task) {
    ++finished_;
    if (completion_handler_) completion_handler_(task);
  });
}

void TaskManager::on_transition(Task::TransitionHook hook) {
  transition_hooks_.push_back(std::move(hook));
  // Tasks hold one shared hook; fan out to every registered consumer in
  // registration order. Rebuilt per registration so tasks submitted
  // earlier keep the hook set that existed when they entered the system.
  transition_hook_ = std::make_shared<const Task::TransitionHook>(
      [hooks = transition_hooks_](const Task& task, TaskState from,
                                  TaskState to) {
        for (const auto& h : hooks) h(task, from, to);
      });
}

std::string TaskManager::submit(TaskDescription description) {
  const std::string uid = session_.ids().next("task");
  auto task = std::make_shared<Task>(uid, std::move(description));
  if (transition_hook_) task->set_transition_hook(transition_hook_);
  tasks_.emplace(uid, task);
  ++total_submitted_;
  agent_.profiler().submitted(*task);
  const auto& cal = session_.calibration().core;
  task->advance(TaskState::kTmgrScheduling, session_.now());
  obs_trace_.begin(obs::SpanType::kTaskSubmit, "tmgr", uid,
                   static_cast<double>(task->description().demand.cores));
  intake_.submit(rng_.lognormal_mean_cv(cal.tmgr_task_cost, cal.jitter_cv),
                 [this, task = std::move(task)]() mutable {
                   obs_trace_.end(obs::SpanType::kTaskSubmit, "tmgr",
                                  task->uid());
                   agent_.execute(std::move(task));
                 });
  return uid;
}

std::vector<std::string> TaskManager::submit(
    std::vector<TaskDescription> descriptions) {
  std::vector<std::string> uids;
  uids.reserve(descriptions.size());
  for (auto& description : descriptions) {
    uids.push_back(submit(std::move(description)));
  }
  return uids;
}

std::vector<std::string> TaskManager::submit_batch(
    std::vector<TaskDescription> descriptions) {
  std::vector<std::string> uids;
  uids.reserve(descriptions.size());
  if (descriptions.empty()) return uids;
  std::vector<std::shared_ptr<Task>> batch;
  batch.reserve(descriptions.size());
  const auto& cal = session_.calibration().core;
  for (auto& description : descriptions) {
    const std::string uid = session_.ids().next("task");
    auto task = std::make_shared<Task>(uid, std::move(description));
    if (transition_hook_) task->set_transition_hook(transition_hook_);
    tasks_.emplace(uid, task);
    ++total_submitted_;
    agent_.profiler().submitted(*task);
    task->advance(TaskState::kTmgrScheduling, session_.now());
    obs_trace_.begin(obs::SpanType::kTaskSubmit, "tmgr", uid,
                     static_cast<double>(task->description().demand.cores));
    uids.push_back(uid);
    batch.push_back(std::move(task));
  }
  const double cost =
      cal.tmgr_batch_base +
      static_cast<double>(batch.size()) * cal.tmgr_batch_per_task;
  intake_.submit(rng_.lognormal_mean_cv(cost, cal.jitter_cv),
                 [this, batch = std::move(batch)]() mutable {
                   for (auto& task : batch) {
                     obs_trace_.end(obs::SpanType::kTaskSubmit, "tmgr",
                                    task->uid());
                     agent_.execute(std::move(task));
                   }
                 });
  return uids;
}

bool TaskManager::cancel(const std::string& uid) {
  const auto it = tasks_.find(uid);
  if (it == tasks_.end() || is_final(it->second->state())) return false;
  // A task still in TMGR intake has not reached the agent; flag it and the
  // agent will cancel it on arrival.
  if (it->second->state() == TaskState::kTmgrScheduling ||
      it->second->state() == TaskState::kStagingInput) {
    it->second->request_cancel();
    return true;
  }
  return agent_.cancel(uid);
}

const Task& TaskManager::task(const std::string& uid) const {
  const auto it = tasks_.find(uid);
  FLOT_CHECK(it != tasks_.end(), "unknown task ", uid);
  return *it->second;
}

}  // namespace flotilla::core
