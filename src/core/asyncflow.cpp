#include "core/asyncflow.hpp"

#include "util/error.hpp"

namespace flotilla::core {

const std::string& TaskFuture::uid() const {
  FLOT_CHECK(state_, "uid() on an invalid TaskFuture");
  return state_->uid;
}

bool TaskFuture::done() const { return state_ && state_->task != nullptr; }

bool TaskFuture::succeeded() const {
  return done() && state_->task->state() == TaskState::kDone;
}

TaskFuture& TaskFuture::then(Continuation fn) {
  FLOT_CHECK(state_, "then() on an invalid TaskFuture");
  FLOT_CHECK(fn, "then() with an empty continuation");
  if (state_->task != nullptr) {
    // Already final: deliver through the event queue to keep the "never
    // inline" invariant callers rely on.
    const Task* task = state_->task;
    state_->flow->session().engine().in(
        0.0, [fn = std::move(fn), task] { fn(*task); });
    return *this;
  }
  state_->continuations.push_back(std::move(fn));
  return *this;
}

AsyncFlow::AsyncFlow(TaskManager& tmgr) : tmgr_(tmgr) {
  tmgr_.on_complete([this](const Task& task) { handle_completion(task); });
}

TaskFuture AsyncFlow::submit(TaskDescription description) {
  auto state = std::make_shared<TaskFuture::State>();
  state->flow = this;
  state->uid = tmgr_.submit(std::move(description));
  pending_.emplace(state->uid, state);
  ++inflight_;
  return TaskFuture(std::move(state));
}

void AsyncFlow::handle_completion(const Task& task) {
  if (observer_) observer_(task);
  const auto it = pending_.find(task.uid());
  if (it == pending_.end()) return;
  auto state = it->second;
  pending_.erase(it);
  FLOT_CHECK(inflight_ > 0, "completion without inflight task");
  --inflight_;
  // The Task object lives in the TaskManager for the session's lifetime.
  state->task = &tmgr_.task(task.uid());
  auto continuations = std::move(state->continuations);
  state->continuations.clear();
  for (auto& fn : continuations) fn(*state->task);
}

void AsyncFlow::when_all(const std::vector<TaskFuture>& futures,
                         std::function<void()> fn) {
  FLOT_CHECK(fn, "when_all with an empty callback");
  auto remaining = std::make_shared<std::size_t>(0);
  auto fn_shared = std::make_shared<std::function<void()>>(std::move(fn));
  for (const auto& future : futures) {
    FLOT_CHECK(future.valid(), "when_all with an invalid future");
    if (future.done()) continue;
    ++*remaining;
  }
  if (*remaining == 0) {
    session().engine().in(0.0, [fn_shared] { (*fn_shared)(); });
    return;
  }
  for (auto future : futures) {
    if (future.done()) continue;
    future.then([remaining, fn_shared](const Task&) {
      if (--*remaining == 0) (*fn_shared)();
    });
  }
}

void AsyncFlow::when_any(const std::vector<TaskFuture>& futures,
                         std::function<void(const Task&)> fn) {
  FLOT_CHECK(fn, "when_any with an empty callback");
  FLOT_CHECK(!futures.empty(), "when_any with no futures");
  auto fired = std::make_shared<bool>(false);
  auto fn_shared =
      std::make_shared<std::function<void(const Task&)>>(std::move(fn));
  for (auto future : futures) {
    FLOT_CHECK(future.valid(), "when_any with an invalid future");
    future.then([fired, fn_shared](const Task& task) {
      if (*fired) return;
      *fired = true;
      (*fn_shared)(task);
    });
  }
}

}  // namespace flotilla::core
