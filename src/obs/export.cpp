#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace flotilla::obs {

namespace {

// Fixed-precision number formatting: iostream state (precision, locale)
// must not leak into the export, and the same double must always render
// the same bytes (the .prof determinism contract).
std::string fmt_time_us(sim::Time t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t * 1e6);
  return buf;
}

std::string fmt_time_s(sim::Time t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", t);
  return buf;
}

std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kBegin:
      return "B";
    case RecordKind::kEnd:
      return "E";
    case RecordKind::kInstant:
      return "i";
    case RecordKind::kCounter:
      return "C";
  }
  return "?";
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  // Lane (tid) per timeline row: task spans get the task's lane (entity),
  // component spans/instants/counters the component's. Assigned in
  // first-seen chronological order -> deterministic file.
  std::map<std::string, int> lanes;
  auto lane_of = [&lanes](const Record& r) {
    const std::string& key = r.entity.empty() ? r.component : r.entity;
    const auto [it, inserted] =
        lanes.emplace(key, static_cast<int>(lanes.size()) + 1);
    (void)inserted;
    return it->second;
  };

  // Pair begin/end records per (type, component, entity), LIFO so nested
  // same-key spans close innermost-first.
  struct OpenSpan {
    sim::Time begin;
    double value;
    int lane;
  };
  std::map<std::string, std::vector<OpenSpan>> open;
  auto span_key = [](const Record& r) {
    std::string key;
    key.reserve(r.component.size() + r.entity.size() + 8);
    key += to_string(r.type);
    key += '\x1f';
    key += r.component;
    key += '\x1f';
    key += r.entity;
    return key;
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&os, &first](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  std::uint64_t unmatched_ends = 0;
  tracer.for_each([&](const Record& r) {
    const int lane = lane_of(r);
    switch (r.kind) {
      case RecordKind::kBegin:
        open[span_key(r)].push_back(OpenSpan{r.time, r.value, lane});
        return;
      case RecordKind::kEnd: {
        auto it = open.find(span_key(r));
        if (it == open.end() || it->second.empty()) {
          // Begin fell off the ring: keep the end visible as an instant.
          ++unmatched_ends;
          emit("{\"name\":\"" + std::string(to_string(r.type)) +
               " (begin dropped)\",\"cat\":\"" + json_escape(r.component) +
               "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + fmt_time_us(r.time) +
               ",\"pid\":1,\"tid\":" + std::to_string(lane) + "}");
          return;
        }
        const OpenSpan span = it->second.back();
        it->second.pop_back();
        emit("{\"name\":\"" + std::string(to_string(r.type)) +
             "\",\"cat\":\"" + json_escape(r.component) +
             "\",\"ph\":\"X\",\"ts\":" + fmt_time_us(span.begin) +
             ",\"dur\":" + fmt_time_us(r.time - span.begin) +
             ",\"pid\":1,\"tid\":" + std::to_string(span.lane) +
             ",\"args\":{\"entity\":\"" + json_escape(r.entity) +
             "\",\"value\":" + fmt_value(r.value) + "}}");
        return;
      }
      case RecordKind::kInstant:
        emit("{\"name\":\"" + std::string(to_string(r.type)) +
             "\",\"cat\":\"" + json_escape(r.component) +
             "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + fmt_time_us(r.time) +
             ",\"pid\":1,\"tid\":" + std::to_string(lane) +
             ",\"args\":{\"entity\":\"" + json_escape(r.entity) +
             "\",\"value\":" + fmt_value(r.value) + "}}");
        return;
      case RecordKind::kCounter:
        emit("{\"name\":\"" + json_escape(r.component) + "." +
             json_escape(r.entity) + "\",\"ph\":\"C\",\"ts\":" +
             fmt_time_us(r.time) + ",\"pid\":1,\"args\":{\"value\":" +
             fmt_value(r.value) + "}}");
        return;
    }
  });

  // Spans still open at export time (e.g. a trace cut mid-run) become
  // zero-duration events at their begin time, flagged in the name.
  std::uint64_t unclosed = 0;
  for (const auto& [key, spans] : open) {
    const auto first_sep = key.find('\x1f');
    const std::string name = key.substr(0, first_sep);
    const auto second_sep = key.find('\x1f', first_sep + 1);
    const std::string component =
        key.substr(first_sep + 1, second_sep - first_sep - 1);
    const std::string entity = key.substr(second_sep + 1);
    for (const OpenSpan& span : spans) {
      ++unclosed;
      emit("{\"name\":\"" + name + " (unclosed)\",\"cat\":\"" +
           json_escape(component) + "\",\"ph\":\"X\",\"ts\":" +
           fmt_time_us(span.begin) + ",\"dur\":0,\"pid\":1,\"tid\":" +
           std::to_string(span.lane) + ",\"args\":{\"entity\":\"" +
           json_escape(entity) + "\"}}");
    }
  }

  // Lane names so Perfetto shows task uids / components, not raw tids.
  for (const auto& [name, tid] : lanes) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(tid) + ",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }

  char meta[160];
  std::snprintf(meta, sizeof(meta),
                "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64
                ",\"unclosed\":%" PRIu64 ",\"unmatched_ends\":%" PRIu64 "}}",
                tracer.recorded(), tracer.dropped(), unclosed,
                unmatched_ends);
  os << meta << "\n";
}

void write_prof(const Tracer& tracer, std::ostream& os) {
  os << "#flotilla-prof,v1,records=" << tracer.size()
     << ",dropped=" << tracer.dropped() << "\n";
  os << "time,comp,event,kind,entity,value\n";
  tracer.for_each([&os](const Record& r) {
    os << fmt_time_s(r.time) << "," << r.component << ","
       << to_string(r.type) << "," << kind_name(r.kind) << "," << r.entity
       << "," << fmt_value(r.value) << "\n";
  });
}

void write_chrome_trace(TraceLanes& lanes, std::ostream& os) {
  Tracer merged(lanes.engine(),
                std::max<std::size_t>(std::size_t{1}, lanes.total_records()));
  lanes.merge_into(merged);
  write_chrome_trace(merged, os);
}

void write_prof(TraceLanes& lanes, std::ostream& os) {
  Tracer merged(lanes.engine(),
                std::max<std::size_t>(std::size_t{1}, lanes.total_records()));
  lanes.merge_into(merged);
  write_prof(merged, os);
}

}  // namespace flotilla::obs
