#include "obs/tracer.hpp"

#include "util/error.hpp"

namespace flotilla::obs {

std::string_view to_string(SpanType type) {
  switch (type) {
    case SpanType::kTaskSubmit:
      return "submit";
    case SpanType::kTaskStageIn:
      return "stage_in";
    case SpanType::kTaskSchedule:
      return "schedule";
    case SpanType::kTaskQueueWait:
      return "queue_wait";
    case SpanType::kTaskLaunch:
      return "launch";
    case SpanType::kTaskRun:
      return "run";
    case SpanType::kTaskStageOut:
      return "stage_out";
    case SpanType::kTaskCollect:
      return "collect";
    case SpanType::kBootstrap:
      return "bootstrap";
    case SpanType::kRouting:
      return "routing";
    case SpanType::kPlacementAttempt:
      return "placement_attempt";
    case SpanType::kStateCallback:
      return "state_callback";
  }
  return "?";
}

Tracer::Tracer(sim::Engine& engine, std::size_t capacity)
    : engine_(&engine), ring_(capacity) {
  FLOT_CHECK(capacity >= 1, "tracer capacity must be >= 1");
}

void Tracer::push(RecordKind kind, SpanType type, std::string_view component,
                  std::string_view entity, double value) {
  // Overwrite the oldest slot once full (drop-oldest). Slots are
  // preallocated; the strings inside reuse their capacity after the first
  // lap around the ring.
  const std::size_t slot = (head_ + count_) % ring_.size();
  Record& record = ring_[slot];
  record.time = engine_->now();
  record.kind = kind;
  record.type = type;
  record.component.assign(component);
  record.entity.assign(entity);
  record.value = value;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    head_ = (head_ + 1) % ring_.size();
  }
  ++recorded_;
}

}  // namespace flotilla::obs
