#include "obs/tracer.hpp"

#include "util/error.hpp"

namespace flotilla::obs {

std::string_view to_string(SpanType type) {
  switch (type) {
    case SpanType::kTaskSubmit:
      return "submit";
    case SpanType::kTaskStageIn:
      return "stage_in";
    case SpanType::kTaskSchedule:
      return "schedule";
    case SpanType::kTaskQueueWait:
      return "queue_wait";
    case SpanType::kTaskLaunch:
      return "launch";
    case SpanType::kTaskRun:
      return "run";
    case SpanType::kTaskStageOut:
      return "stage_out";
    case SpanType::kTaskCollect:
      return "collect";
    case SpanType::kBootstrap:
      return "bootstrap";
    case SpanType::kRouting:
      return "routing";
    case SpanType::kPlacementAttempt:
      return "placement_attempt";
    case SpanType::kStateCallback:
      return "state_callback";
    case SpanType::kJournal:
      return "journal";
    case SpanType::kSubmitLaunch:
      return "submit_launch";
    case SpanType::kAdmission:
      return "admission";
  }
  return "?";
}

Tracer::Tracer(sim::Engine& engine, std::size_t capacity)
    : engine_(&engine), ring_(capacity) {
  FLOT_CHECK(capacity >= 1, "tracer capacity must be >= 1");
}

void Tracer::push(RecordKind kind, SpanType type, std::string_view component,
                  std::string_view entity, double value) {
  // Overwrite the oldest slot once full (drop-oldest). Slots are
  // preallocated; the strings inside reuse their capacity after the first
  // lap around the ring.
  const std::size_t slot = (head_ + count_) % ring_.size();
  Record& record = ring_[slot];
  record.time = engine_->now();
  record.kind = kind;
  record.type = type;
  record.component.assign(component);
  record.entity.assign(entity);
  record.value = value;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    head_ = (head_ + 1) % ring_.size();
  }
  ++recorded_;
}

void Tracer::push_record(const Record& record) {
  const std::size_t slot = (head_ + count_) % ring_.size();
  ring_[slot] = record;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    head_ = (head_ + 1) % ring_.size();
  }
  ++recorded_;
}

TraceLanes::TraceLanes(sim::Engine& engine, std::size_t capacity_per_lane)
    : engine_(&engine) {
  lanes_.reserve(static_cast<std::size_t>(engine.shards()));
  for (int s = 0; s < engine.shards(); ++s) {
    lanes_.push_back(std::make_unique<Tracer>(engine, capacity_per_lane));
  }
}

Tracer& TraceLanes::lane(sim::ShardId shard) {
  FLOT_CHECK(shard >= 0 && shard < static_cast<int>(lanes_.size()),
             "trace lane ", shard, " out of range");
  return *lanes_[static_cast<std::size_t>(shard)];
}

std::size_t TraceLanes::total_records() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->size();
  return n;
}

std::uint64_t TraceLanes::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->dropped();
  return n;
}

void TraceLanes::merge_into(Tracer& out) const {
  // K-way stable merge. Each lane is already chronological (virtual time
  // never regresses within a shard), so the smallest head wins; ties pick
  // the lowest shard id, which is what makes the merged order independent
  // of how many threads drained the shards.
  std::vector<std::size_t> pos(lanes_.size(), 0);
  for (;;) {
    int best = -1;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      if (pos[l] >= lanes_[l]->size()) continue;
      if (best < 0 ||
          lanes_[l]->at(pos[l]).time <
              lanes_[static_cast<std::size_t>(best)]
                  ->at(pos[static_cast<std::size_t>(best)])
                  .time) {
        best = static_cast<int>(l);
      }
    }
    if (best < 0) break;
    const auto b = static_cast<std::size_t>(best);
    out.push_record(lanes_[b]->at(pos[b]++));
  }
}

}  // namespace flotilla::obs
