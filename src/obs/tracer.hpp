// Structured event tracing: the profiling substrate for overhead
// attribution (docs/observability.md).
//
// Components record typed spans (begin/end pairs) and counters into a
// preallocated ring buffer keyed by virtual time — the RP-profiler
// methodology (arXiv:2103.00091) applied to the simulated stack. Two
// exporters (obs/export.hpp) turn a trace into a Chrome trace_event JSON
// (Perfetto / chrome://tracing) or an RP-style flat .prof CSV, and
// obs::OverheadReport (obs/report.hpp) aggregates spans into the paper's
// Fig 7 overhead categories.
//
// Everything is driven by sim::Engine::now(), so a trace is as
// deterministic as the simulation itself: same seed, byte-identical
// export. Instrumentation sites hold a TraceHandle, which is a null
// pointer when tracing is off — the disabled path is a single branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace flotilla::obs {

// Span taxonomy. Task lifecycle spans follow one task through the
// pipeline (submit -> schedule-queue -> placement -> launch -> run ->
// collect); component spans attribute time to a piece of the runtime
// rather than a task. docs/observability.md maps these to the Fig 7
// overhead categories.
enum class SpanType : std::uint8_t {
  // Task lifecycle.
  kTaskSubmit,     // TMGR intake: submit() until the agent accepts it
  kTaskStageIn,    // input staging through the stager
  kTaskSchedule,   // agent scheduler queue + routing decision
  kTaskQueueWait,  // waiting in a backend queue / agent waitlist
  kTaskLaunch,     // backend submit until the payload starts
  kTaskRun,        // payload executing
  kTaskStageOut,   // output staging
  kTaskCollect,    // completion event until the final state is applied
  // Component spans / instants.
  kBootstrap,         // backend or instance bootstrap
  kRouting,           // instant: agent routing decision (value = slot)
  kPlacementAttempt,  // instant: placer call (value: 1 placed, 0 rejected)
  kStateCallback,     // instant: final-state callback delivery
  kJournal,           // instant: durable journal record appended
  // Service-mode ingress (docs/ingress.md).
  kSubmitLaunch,      // client offer accepted until the payload starts
  kAdmission,         // instant: admission verdict (entity: accept/
                      // reject/defer, value: client id)
};

// Stable short name ("submit", "run", "bootstrap", ...) used by both
// exporters and the report; never reused or renumbered.
std::string_view to_string(SpanType type);

enum class RecordKind : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

struct Record {
  sim::Time time = 0.0;
  RecordKind kind = RecordKind::kInstant;
  SpanType type = SpanType::kTaskSubmit;  // unused for counters
  std::string component;  // "tmgr", "agent", "flux.0", "dragon", ...
  std::string entity;     // task uid, instance name, or counter name
  double value = 0.0;     // optional payload (cores, slot index, count)
};

// Preallocated ring buffer of trace records. Overflow policy: drop-oldest
// — the newest records always land, and dropped() reports how many fell
// off the head (exporters surface the loss instead of hiding it).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  explicit Tracer(sim::Engine& engine,
                  std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  sim::Time now() const { return engine_->now(); }
  sim::Engine& engine() { return *engine_; }

  void begin(SpanType type, std::string_view component,
             std::string_view entity, double value = 0.0) {
    push(RecordKind::kBegin, type, component, entity, value);
  }
  void end(SpanType type, std::string_view component,
           std::string_view entity, double value = 0.0) {
    push(RecordKind::kEnd, type, component, entity, value);
  }
  void instant(SpanType type, std::string_view component,
               std::string_view entity, double value = 0.0) {
    push(RecordKind::kInstant, type, component, entity, value);
  }
  // Counters are sampled time series (name -> value at time t); the type
  // field is ignored.
  void counter(std::string_view component, std::string_view name,
               double value) {
    push(RecordKind::kCounter, SpanType::kTaskSubmit, component, name,
         value);
  }

  // Appends a fully-formed record, bypassing the engine clock — the lane
  // merge (TraceLanes::merge_into) and replay tooling use this. Normal
  // instrumentation goes through begin/end/instant/counter.
  void push_record(const Record& record);

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - count_; }

  // Visits the retained records oldest-first (chronological: virtual time
  // never goes backwards, and same-time records keep insertion order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) fn(at(i));
  }

  // i-th retained record, 0 = oldest.
  const Record& at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  void clear() {
    count_ = 0;
    head_ = 0;
    recorded_ = 0;
  }

 private:
  void push(RecordKind kind, SpanType type, std::string_view component,
            std::string_view entity, double value);

  sim::Engine* engine_;
  std::vector<Record> ring_;  // preallocated; strings grow on demand
  std::size_t head_ = 0;      // index of the oldest retained record
  std::size_t count_ = 0;     // retained records
  std::uint64_t recorded_ = 0;
};

// Nullable, copyable view over a Tracer. Instrumentation sites hold one
// by value; when no tracer is attached every call is a tested branch and
// nothing else (zero-cost-when-disabled).
class TraceHandle {
 public:
  TraceHandle() = default;
  explicit TraceHandle(Tracer* tracer) : tracer_(tracer) {}

  bool enabled() const { return tracer_ != nullptr; }
  explicit operator bool() const { return enabled(); }
  Tracer* tracer() const { return tracer_; }

  void begin(SpanType type, std::string_view component,
             std::string_view entity, double value = 0.0) const {
    if (tracer_) tracer_->begin(type, component, entity, value);
  }
  void end(SpanType type, std::string_view component,
           std::string_view entity, double value = 0.0) const {
    if (tracer_) tracer_->end(type, component, entity, value);
  }
  void instant(SpanType type, std::string_view component,
               std::string_view entity, double value = 0.0) const {
    if (tracer_) tracer_->instant(type, component, entity, value);
  }
  void counter(std::string_view component, std::string_view name,
               double value) const {
    if (tracer_) tracer_->counter(component, name, value);
  }

 private:
  Tracer* tracer_ = nullptr;
};

// Per-shard trace lanes for the partitioned engine (docs/sharding.md).
//
// One Tracer per shard: an event records into the lane of the shard it
// executes on (current()), so under sim::Engine::Config::threads > 1
// every ring buffer has exactly one writer per drain round and no lock is
// needed. merge_into() folds the lanes into a single Tracer in
// (time, shard, lane-insertion) order — a deterministic merge, so the
// combined Chrome trace / .prof export is byte-identical for any
// shards x threads combination (asserted by trace_test.cpp).
class TraceLanes {
 public:
  explicit TraceLanes(sim::Engine& engine,
                      std::size_t capacity_per_lane = Tracer::kDefaultCapacity);

  sim::Engine& engine() { return *engine_; }
  std::size_t lanes() const { return lanes_.size(); }
  Tracer& lane(sim::ShardId shard);
  // Lane of the shard the calling event is executing on (the control
  // shard outside callbacks).
  Tracer& current() { return lane(engine_->current_shard()); }
  TraceHandle handle(sim::ShardId shard) { return TraceHandle(&lane(shard)); }

  std::size_t total_records() const;
  std::uint64_t total_dropped() const;

  // Appends every lane's retained records to `out`, globally ordered by
  // (time, shard id, within-lane insertion order). Only safe between
  // engine rounds (not from inside a threaded drain).
  void merge_into(Tracer& out) const;

 private:
  sim::Engine* engine_;
  std::vector<std::unique_ptr<Tracer>> lanes_;
};

}  // namespace flotilla::obs
