// Trace exporters (docs/observability.md).
//
//  - write_chrome_trace: Chrome trace_event JSON. Spans become complete
//    ("X") events paired begin/end per (type, component, entity); lanes
//    (tids) are assigned in first-seen order so the file is deterministic.
//    Loads in Perfetto (ui.perfetto.dev) and chrome://tracing.
//  - write_prof: RP-profiler-style flat CSV, one record per line, for
//    RADICAL-Analytics-style notebook post-processing. Fixed-precision
//    formatting: same seed => byte-identical file.
#pragma once

#include <iosfwd>

#include "obs/tracer.hpp"

namespace flotilla::obs {

void write_chrome_trace(const Tracer& tracer, std::ostream& os);
void write_prof(const Tracer& tracer, std::ostream& os);

// Sharded variants: merge the per-shard lanes (deterministically, by
// (time, shard, insertion) — see TraceLanes::merge_into) and export the
// combined timeline as one coherent file. Byte-identical for any
// shards x threads combination of the producing engine.
void write_chrome_trace(TraceLanes& lanes, std::ostream& os);
void write_prof(TraceLanes& lanes, std::ostream& os);

}  // namespace flotilla::obs
