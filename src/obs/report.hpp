// OverheadReport: aggregates a trace's spans into the paper's Fig 7
// overhead categories, so the figure and the trace can never disagree —
// the CSV is regenerated from the same records the timeline view shows.
//
// Categories (docs/observability.md maps spans -> categories):
//   - backend launch overhead: kBootstrap spans per backend/instance
//     component, and kTaskLaunch spans per backend (submit -> start);
//   - scheduler wait: kTaskQueueWait spans (backend queues + agent
//     waitlists);
//   - RP-core routing: kTaskSubmit + kTaskSchedule + kTaskCollect spans
//     (TMGR intake, agent scheduler, collector).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>

#include "obs/tracer.hpp"

namespace flotilla::obs {

struct SpanStats {
  std::uint64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : total / count; }

  void add(double duration) {
    if (count == 0 || duration < min) min = duration;
    if (count == 0 || duration > max) max = duration;
    ++count;
    total += duration;
  }
};

class OverheadReport {
 public:
  // Pairs every begin/end in the trace (LIFO per (type, component,
  // entity)) and aggregates durations per (type, component). Unmatched
  // records are counted, not silently dropped.
  static OverheadReport from_trace(const Tracer& tracer);

  // Stats for one (span type, component); zero-stats if absent.
  SpanStats stats(SpanType type, const std::string& component) const;
  // Stats for a span type across all components.
  SpanStats aggregate(SpanType type) const;
  // Stats for a span type over components with the given prefix
  // ("flux" matches "flux.0", "flux.1", ...).
  SpanStats aggregate_prefix(SpanType type,
                             const std::string& component_prefix) const;

  // Fig 7 categories.
  double backend_launch_overhead(const std::string& backend) const {
    return aggregate_prefix(SpanType::kBootstrap, backend).mean();
  }
  double scheduler_wait_total() const {
    return aggregate(SpanType::kTaskQueueWait).total +
           aggregate(SpanType::kTaskSchedule).total;
  }
  double rp_core_total() const {
    return aggregate(SpanType::kTaskSubmit).total +
           aggregate(SpanType::kTaskSchedule).total +
           aggregate(SpanType::kTaskCollect).total;
  }

  std::uint64_t unmatched_ends() const { return unmatched_ends_; }
  std::uint64_t unclosed_begins() const { return unclosed_begins_; }

  // Instant records per (span type, component) — e.g. routing decisions,
  // placement attempts, durable journal appends (kJournal).
  std::uint64_t instants(SpanType type, const std::string& component) const;
  // Durable-journal row: total records the scribe appended (src/journal).
  std::uint64_t journal_records() const {
    return instants(SpanType::kJournal, "journal");
  }

  // All (type, component) cells, deterministically ordered.
  const std::map<std::pair<SpanType, std::string>, SpanStats>& cells()
      const {
    return cells_;
  }

  void print(std::ostream& os) const;

 private:
  std::map<std::pair<SpanType, std::string>, SpanStats> cells_;
  std::map<std::pair<SpanType, std::string>, std::uint64_t> instants_;
  std::uint64_t unmatched_ends_ = 0;
  std::uint64_t unclosed_begins_ = 0;
};

}  // namespace flotilla::obs
