// OverheadReport: aggregates a trace's spans into the paper's Fig 7
// overhead categories, so the figure and the trace can never disagree —
// the CSV is regenerated from the same records the timeline view shows.
//
// Categories (docs/observability.md maps spans -> categories):
//   - backend launch overhead: kBootstrap spans per backend/instance
//     component, and kTaskLaunch spans per backend (submit -> start);
//   - scheduler wait: kTaskQueueWait spans (backend queues + agent
//     waitlists);
//   - RP-core routing: kTaskSubmit + kTaskSchedule + kTaskCollect spans
//     (TMGR intake, agent scheduler, collector).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>

#include "obs/tracer.hpp"

namespace flotilla::obs {

// Log-spaced duration histogram with interpolated percentile queries —
// the tail-latency companion to SpanStats' mean/min/max. Mirrors the
// bucket layout of analytics::LatencyHistogram (obs sits below analytics
// in the layer DAG, so the type is duplicated rather than shared):
// constant memory, ~2.3% relative resolution over [10 us, ~3.6 h].
class DurationHistogram {
 public:
  void record(double seconds);

  std::uint64_t count() const { return count_; }
  double max() const { return max_; }

  // Value at quantile q in [0, 1], interpolated within the bucket;
  // 0 for an empty histogram.
  double percentile(double q) const;

  double p50() const { return percentile(0.50); }
  double p99() const { return percentile(0.99); }
  double p999() const { return percentile(0.999); }

 private:
  static constexpr double kFloor = 1e-5;  // bucket 0 lower bound [s]
  static constexpr double kGrowth = 1.1;  // per-bucket growth factor
  static constexpr int kBuckets = 220;

  static int bucket_of(double seconds);
  static double bucket_lower(int bucket);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double max_ = 0.0;
};

struct SpanStats {
  std::uint64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : total / count; }

  void add(double duration) {
    if (count == 0 || duration < min) min = duration;
    if (count == 0 || duration > max) max = duration;
    ++count;
    total += duration;
  }
};

class OverheadReport {
 public:
  // Pairs every begin/end in the trace (LIFO per (type, component,
  // entity)) and aggregates durations per (type, component). Unmatched
  // records are counted, not silently dropped.
  static OverheadReport from_trace(const Tracer& tracer);

  // Stats for one (span type, component); zero-stats if absent.
  SpanStats stats(SpanType type, const std::string& component) const;
  // Stats for a span type across all components.
  SpanStats aggregate(SpanType type) const;
  // Stats for a span type over components with the given prefix
  // ("flux" matches "flux.0", "flux.1", ...).
  SpanStats aggregate_prefix(SpanType type,
                             const std::string& component_prefix) const;

  // Fig 7 categories.
  double backend_launch_overhead(const std::string& backend) const {
    return aggregate_prefix(SpanType::kBootstrap, backend).mean();
  }
  double scheduler_wait_total() const {
    return aggregate(SpanType::kTaskQueueWait).total +
           aggregate(SpanType::kTaskSchedule).total;
  }
  double rp_core_total() const {
    return aggregate(SpanType::kTaskSubmit).total +
           aggregate(SpanType::kTaskSchedule).total +
           aggregate(SpanType::kTaskCollect).total;
  }

  std::uint64_t unmatched_ends() const { return unmatched_ends_; }
  std::uint64_t unclosed_begins() const { return unclosed_begins_; }

  // Full duration distribution per span type (all components), filled
  // from the same pairing pass as the cells; empty-histogram if absent.
  const DurationHistogram& histogram(SpanType type) const;
  // Service-mode ingress (docs/ingress.md): the per-task submit->launch
  // latency distribution, client offer until the payload starts.
  const DurationHistogram& submit_to_launch() const {
    return histogram(SpanType::kSubmitLaunch);
  }

  // Instant records per (span type, component) — e.g. routing decisions,
  // placement attempts, durable journal appends (kJournal).
  std::uint64_t instants(SpanType type, const std::string& component) const;
  // Durable-journal row: total records the scribe appended (src/journal).
  std::uint64_t journal_records() const {
    return instants(SpanType::kJournal, "journal");
  }

  // All (type, component) cells, deterministically ordered.
  const std::map<std::pair<SpanType, std::string>, SpanStats>& cells()
      const {
    return cells_;
  }

  void print(std::ostream& os) const;

 private:
  std::map<std::pair<SpanType, std::string>, SpanStats> cells_;
  std::map<std::pair<SpanType, std::string>, std::uint64_t> instants_;
  std::map<SpanType, DurationHistogram> histograms_;
  std::uint64_t unmatched_ends_ = 0;
  std::uint64_t unclosed_begins_ = 0;
};

}  // namespace flotilla::obs
