#include "obs/report.hpp"

#include <ostream>
#include <tuple>
#include <vector>

namespace flotilla::obs {

OverheadReport OverheadReport::from_trace(const Tracer& tracer) {
  OverheadReport report;
  // (type, component, entity) -> stack of begin times.
  std::map<std::tuple<SpanType, std::string, std::string>,
           std::vector<sim::Time>>
      open;
  tracer.for_each([&](const Record& r) {
    if (r.kind == RecordKind::kBegin) {
      open[{r.type, r.component, r.entity}].push_back(r.time);
      return;
    }
    if (r.kind == RecordKind::kInstant) {
      ++report.instants_[{r.type, r.component}];
      return;
    }
    if (r.kind != RecordKind::kEnd) return;
    auto it = open.find({r.type, r.component, r.entity});
    if (it == open.end() || it->second.empty()) {
      ++report.unmatched_ends_;
      return;
    }
    const sim::Time begin = it->second.back();
    it->second.pop_back();
    report.cells_[{r.type, r.component}].add(r.time - begin);
  });
  for (const auto& [key, stack] : open) {
    report.unclosed_begins_ += stack.size();
  }
  return report;
}

std::uint64_t OverheadReport::instants(SpanType type,
                                       const std::string& component) const {
  const auto it = instants_.find({type, component});
  return it == instants_.end() ? 0 : it->second;
}

SpanStats OverheadReport::stats(SpanType type,
                                const std::string& component) const {
  const auto it = cells_.find({type, component});
  return it == cells_.end() ? SpanStats{} : it->second;
}

SpanStats OverheadReport::aggregate(SpanType type) const {
  SpanStats out;
  for (const auto& [key, cell] : cells_) {
    if (key.first != type || cell.count == 0) continue;
    if (out.count == 0 || cell.min < out.min) out.min = cell.min;
    if (out.count == 0 || cell.max > out.max) out.max = cell.max;
    out.count += cell.count;
    out.total += cell.total;
  }
  return out;
}

SpanStats OverheadReport::aggregate_prefix(
    SpanType type, const std::string& component_prefix) const {
  SpanStats out;
  for (const auto& [key, cell] : cells_) {
    if (key.first != type || cell.count == 0) continue;
    if (key.second.compare(0, component_prefix.size(), component_prefix) !=
        0) {
      continue;
    }
    if (out.count == 0 || cell.min < out.min) out.min = cell.min;
    if (out.count == 0 || cell.max > out.max) out.max = cell.max;
    out.count += cell.count;
    out.total += cell.total;
  }
  return out;
}

void OverheadReport::print(std::ostream& os) const {
  os << "=== overhead report (per span type x component) ===\n";
  for (const auto& [key, cell] : cells_) {
    os << "  " << to_string(key.first) << " @ " << key.second
       << ": n=" << cell.count << " total=" << cell.total
       << "s mean=" << cell.mean() << "s min=" << cell.min
       << "s max=" << cell.max << "s\n";
  }
  os << "  fig7: scheduler_wait=" << scheduler_wait_total()
     << "s rp_core=" << rp_core_total() << "s\n";
  if (journal_records() > 0) {
    os << "  journal: records=" << journal_records() << "\n";
  }
  if (unmatched_ends_ + unclosed_begins_ > 0) {
    os << "  (unmatched ends: " << unmatched_ends_
       << ", unclosed begins: " << unclosed_begins_ << ")\n";
  }
}

}  // namespace flotilla::obs
