#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <tuple>
#include <vector>

namespace flotilla::obs {

int DurationHistogram::bucket_of(double seconds) {
  if (seconds <= kFloor) return 0;
  const int bucket =
      static_cast<int>(std::log(seconds / kFloor) / std::log(kGrowth));
  return std::clamp(bucket, 0, kBuckets - 1);
}

double DurationHistogram::bucket_lower(int bucket) {
  return kFloor * std::pow(kGrowth, bucket);
}

void DurationHistogram::record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;  // defensive: spans never run backwards
  ++buckets_[static_cast<std::size_t>(bucket_of(seconds))];
  if (count_ == 0 || seconds > max_) max_ = seconds;
  ++count_;
}

double DurationHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const auto in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Linear interpolation within the bucket.
      const double frac = (target - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket);
      const double lo = bucket_lower(b);
      const double hi = bucket_lower(b + 1);
      const double value = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      return std::min(value, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

OverheadReport OverheadReport::from_trace(const Tracer& tracer) {
  OverheadReport report;
  // (type, component, entity) -> stack of begin times.
  std::map<std::tuple<SpanType, std::string, std::string>,
           std::vector<sim::Time>>
      open;
  tracer.for_each([&](const Record& r) {
    if (r.kind == RecordKind::kBegin) {
      open[{r.type, r.component, r.entity}].push_back(r.time);
      return;
    }
    if (r.kind == RecordKind::kInstant) {
      ++report.instants_[{r.type, r.component}];
      return;
    }
    if (r.kind != RecordKind::kEnd) return;
    auto it = open.find({r.type, r.component, r.entity});
    if (it == open.end() || it->second.empty()) {
      ++report.unmatched_ends_;
      return;
    }
    const sim::Time begin = it->second.back();
    it->second.pop_back();
    report.cells_[{r.type, r.component}].add(r.time - begin);
    report.histograms_[r.type].record(r.time - begin);
  });
  for (const auto& [key, stack] : open) {
    report.unclosed_begins_ += stack.size();
  }
  return report;
}

const DurationHistogram& OverheadReport::histogram(SpanType type) const {
  static const DurationHistogram kEmpty;
  const auto it = histograms_.find(type);
  return it == histograms_.end() ? kEmpty : it->second;
}

std::uint64_t OverheadReport::instants(SpanType type,
                                       const std::string& component) const {
  const auto it = instants_.find({type, component});
  return it == instants_.end() ? 0 : it->second;
}

SpanStats OverheadReport::stats(SpanType type,
                                const std::string& component) const {
  const auto it = cells_.find({type, component});
  return it == cells_.end() ? SpanStats{} : it->second;
}

SpanStats OverheadReport::aggregate(SpanType type) const {
  SpanStats out;
  for (const auto& [key, cell] : cells_) {
    if (key.first != type || cell.count == 0) continue;
    if (out.count == 0 || cell.min < out.min) out.min = cell.min;
    if (out.count == 0 || cell.max > out.max) out.max = cell.max;
    out.count += cell.count;
    out.total += cell.total;
  }
  return out;
}

SpanStats OverheadReport::aggregate_prefix(
    SpanType type, const std::string& component_prefix) const {
  SpanStats out;
  for (const auto& [key, cell] : cells_) {
    if (key.first != type || cell.count == 0) continue;
    if (key.second.compare(0, component_prefix.size(), component_prefix) !=
        0) {
      continue;
    }
    if (out.count == 0 || cell.min < out.min) out.min = cell.min;
    if (out.count == 0 || cell.max > out.max) out.max = cell.max;
    out.count += cell.count;
    out.total += cell.total;
  }
  return out;
}

void OverheadReport::print(std::ostream& os) const {
  os << "=== overhead report (per span type x component) ===\n";
  for (const auto& [key, cell] : cells_) {
    os << "  " << to_string(key.first) << " @ " << key.second
       << ": n=" << cell.count << " total=" << cell.total
       << "s mean=" << cell.mean() << "s min=" << cell.min
       << "s max=" << cell.max << "s\n";
  }
  os << "  fig7: scheduler_wait=" << scheduler_wait_total()
     << "s rp_core=" << rp_core_total() << "s\n";
  if (journal_records() > 0) {
    os << "  journal: records=" << journal_records() << "\n";
  }
  const auto& ingress = submit_to_launch();
  if (ingress.count() > 0) {
    os << "  ingress: submit->launch p50=" << ingress.p50()
       << "s p99=" << ingress.p99() << "s p999=" << ingress.p999()
       << "s n=" << ingress.count() << "\n";
  }
  if (unmatched_ends_ + unclosed_begins_ > 0) {
    os << "  (unmatched ends: " << unmatched_ends_
       << ", unclosed begins: " << unclosed_begins_ << ")\n";
  }
}

}  // namespace flotilla::obs
