// Append-only journal writer + crash-tolerant reader (docs/recovery.md).
//
// The writer appends encoded records to an in-memory byte buffer; the
// caller persists the bytes (flotilla-run --journal streams them to a
// file, the fuzz harness keeps them in memory). Appends are line-atomic:
// the buffer only ever grows by whole records, so a simulated crash
// between events leaves a clean prefix. Torn tails — a real crash mid-
// write() — are the reader's job: an incomplete final line is discarded
// and reported as truncation, while a checksum or grammar failure on a
// *complete* line is corruption, reported with the record index.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "journal/record.hpp"

namespace flotilla::journal {

class Writer {
 public:
  // Appends one record (encoded, checksummed, '\n'-terminated).
  void append(const Record& record) {
    bytes_ += record.encode();
    ++records_;
  }

  const std::string& bytes() const { return bytes_; }
  std::size_t records() const { return records_; }

 private:
  std::string bytes_;
  std::size_t records_ = 0;
};

struct ReadResult {
  std::vector<Record> records;  // every intact record, in order

  // A final line without '\n' or whose checksum fails: the classic
  // crash-mid-write artifact. The partial bytes are discarded; recovery
  // proceeds from the last intact record.
  bool truncated = false;
  std::size_t truncated_bytes = 0;  // length of the discarded tail

  // A non-final line that fails its checksum or does not parse: the
  // journal is damaged, not merely torn. corrupt_index is the index the
  // bad record would have had.
  bool corrupt = false;
  std::size_t corrupt_index = 0;
  std::string error;

  bool intact() const { return !corrupt; }
};

// Decodes journal bytes. Never throws: damage is reported in the result
// so callers can decide whether a torn tail is acceptable (recovery) or
// any damage is fatal (the codec tests).
ReadResult read(std::string_view bytes);

}  // namespace flotilla::journal
