#include "journal/recovery.hpp"

#include "util/error.hpp"

namespace flotilla::journal {

namespace {

bool is_terminal_state(const std::string& state) {
  return state == "DONE" || state == "FAILED" || state == "CANCELED";
}

}  // namespace

std::size_t StateImage::tasks_in_flight() const {
  std::size_t n = 0;
  for (const auto& [uid, task] : tasks) {
    (void)uid;
    if (task.terminal_edges == 0) ++n;
  }
  return n;
}

RecoveryManager::RecoveryManager(std::string_view bytes) {
  ReadResult parsed = read(bytes);
  if (parsed.corrupt) {
    util::raise("journal: corrupt record #", parsed.corrupt_index, ": ",
                parsed.error);
  }
  if (parsed.records.empty()) {
    util::raise("journal: no intact records to recover from");
  }
  if (parsed.records.front().type != RecordType::kHeader) {
    util::raise("journal: first record is not a header");
  }
  prefix_ = std::move(parsed.records);
  seed_ = prefix_.front().seed;
  spec_ = prefix_.front().spec;
  truncated_ = parsed.truncated;
  truncated_bytes_ = parsed.truncated_bytes;
}

StateImage RecoveryManager::image() const {
  StateImage image;
  for (const Record& r : prefix_) {
    switch (r.type) {
      case RecordType::kHeader:
        break;
      case RecordType::kReady:
        image.ready = true;
        image.ready_time = r.time;
        break;
      case RecordType::kTransition: {
        auto& task = image.tasks[r.uid];
        task.state = r.to;
        task.backend = r.backend;
        task.attempt = r.attempt;
        if (is_terminal_state(r.to)) ++task.terminal_edges;
        break;
      }
      case RecordType::kAlloc:
        image.core_delta[r.node] += r.cores;
        image.gpu_delta[r.node] += r.gpus;
        break;
      case RecordType::kFault:
        ++image.faults;
        break;
      case RecordType::kEnd:
        image.ended = true;
        break;
    }
    if (r.type != RecordType::kHeader) image.last_time = r.time;
  }
  return image;
}

}  // namespace flotilla::journal
