// Journal record model + byte-stable codec (docs/recovery.md).
//
// A journal is an append-only sequence of text records, one per line,
// recording everything the control plane must not lose across a crash:
// the run's identity (header), pilot readiness, every task lifecycle
// edge, every node capacity change, every injected fault, and the final
// summary. The codec is deterministic down to the byte — fixed-precision
// times, fixed field order — so the same seed always produces the same
// journal bytes (the recovery oracle in src/check compares journals
// bit-for-bit, like the .prof exporter's byte-identity guarantee).
//
// Every line carries a trailing FNV-1a-32 checksum; the reader uses it to
// distinguish a torn tail (a crash mid-write: the partial final line is
// discarded and reported) from mid-stream corruption (a hard error with
// the record index).
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"

namespace flotilla::journal {

enum class RecordType : std::uint8_t {
  kHeader,      // run identity: seed + the serialized scenario/config line
  kReady,       // pilot reported ready; recovery clocks makespan from here
  kTransition,  // one task lifecycle edge (uid, from, to, backend, attempt)
  kAlloc,       // node free-capacity delta (negative = allocation)
  kFault,       // an injected fault fired (crash / cancel storm)
  kEnd,         // terminal summary; present only on uninterrupted runs
};

// Stable wire tag ("journal", "ready", "task", "alloc", "fault", "end").
std::string_view to_string(RecordType type);

// One journal record. A single struct holds the union of all per-type
// fields; encode()/decode() only read/write the fields of record's type,
// in a fixed order, so the line grammar stays canonical.
struct Record {
  RecordType type = RecordType::kTransition;
  sim::Time time = 0.0;  // virtual time; unused for kHeader

  // kHeader.
  std::uint64_t seed = 0;
  std::string spec;  // serialized ScenarioSpec / tool config line

  // kTransition.
  std::string uid;
  std::string from;
  std::string to;
  std::string backend;  // also kFault's crash target
  std::int64_t attempt = 0;

  // kAlloc: change of free capacity on `node` (negative = claimed).
  std::int64_t node = 0;
  std::int64_t cores = 0;
  std::int64_t gpus = 0;

  // kFault.
  std::string kind;       // "crash" | "cancel"
  std::int64_t index = 0;  // crash: partition/instance index
  std::int64_t count = 0;  // cancel: storm size

  // kEnd.
  std::int64_t done = 0;
  std::int64_t failed = 0;
  std::int64_t canceled = 0;
  std::uint64_t events = 0;

  // One '\n'-terminated line with a trailing checksum field. Raises
  // util::Error if any string field contains '|' or '\n' (the journal is
  // single-line records by construction).
  std::string encode() const;

  // Two records are equal iff their canonical encodings are equal.
  friend bool operator==(const Record& a, const Record& b) {
    return a.encode() == b.encode();
  }
};

// Convenience constructors for the record kinds the scribe emits.
Record header_record(std::uint64_t seed, std::string spec);
Record ready_record(sim::Time time);
Record transition_record(sim::Time time, std::string uid, std::string from,
                         std::string to, std::string backend,
                         std::int64_t attempt);
Record alloc_record(sim::Time time, std::int64_t node, std::int64_t cores,
                    std::int64_t gpus);
Record fault_record(sim::Time time, std::string kind, std::string backend,
                    std::int64_t index, std::int64_t count);
Record end_record(sim::Time time, std::int64_t done, std::int64_t failed,
                  std::int64_t canceled, std::uint64_t events);

// FNV-1a 32-bit over `text`, the per-line checksum primitive.
std::uint32_t fnv1a32(std::string_view text);

}  // namespace flotilla::journal
