#include "journal/journal.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace flotilla::journal {

namespace {

// One key=value field split out of a line body.
struct Field {
  std::string_view key;
  std::string_view value;
};

// Splits "tag|k1=v1|k2=v2|...". Returns false on grammar violations
// (missing '=' in a field).
bool split_fields(std::string_view body, std::string_view& tag,
                  std::vector<Field>& fields) {
  const std::size_t bar = body.find('|');
  tag = body.substr(0, bar);
  fields.clear();
  std::string_view rest =
      bar == std::string_view::npos ? std::string_view{} : body.substr(bar + 1);
  while (!rest.empty()) {
    const std::size_t next = rest.find('|');
    const std::string_view piece = rest.substr(0, next);
    const std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos) return false;
    fields.push_back({piece.substr(0, eq), piece.substr(eq + 1)});
    rest = next == std::string_view::npos ? std::string_view{}
                                          : rest.substr(next + 1);
  }
  return true;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_time(std::string_view text, sim::Time& out) {
  // std::from_chars for double is not universally available; sscanf on a
  // bounded copy is. The %.9f canonical form always fits.
  std::array<char, 64> buf{};
  if (text.empty() || text.size() >= buf.size()) return false;
  text.copy(buf.data(), text.size());
  double value = 0.0;
  if (std::sscanf(buf.data(), "%lf", &value) != 1) return false;
  out = value;
  return true;
}

// Decodes one line body (checksum already stripped and verified) into
// `record`. Enforces the canonical field order so that decode(encode(r))
// round-trips and any hand-edited journal is rejected loudly.
bool decode_body(std::string_view body, Record& record, std::string& error) {
  std::string_view tag;
  std::vector<Field> fields;
  if (!split_fields(body, tag, fields)) {
    error = "malformed field (missing '=')";
    return false;
  }
  const auto expect = [&](std::size_t i, std::string_view key,
                          std::string_view& value) {
    if (i >= fields.size() || fields[i].key != key) {
      error = "expected field '" + std::string(key) + "'";
      return false;
    }
    value = fields[i].value;
    return true;
  };
  const auto expect_i64 = [&](std::size_t i, std::string_view key,
                              std::int64_t& out) {
    std::string_view v;
    if (!expect(i, key, v)) return false;
    if (!parse_i64(v, out)) {
      error = "bad integer in field '" + std::string(key) + "'";
      return false;
    }
    return true;
  };
  const auto expect_time = [&](std::size_t i, sim::Time& out) {
    std::string_view v;
    if (!expect(i, "t", v)) return false;
    if (!parse_time(v, out)) {
      error = "bad time";
      return false;
    }
    return true;
  };
  const auto check_arity = [&](std::size_t n) {
    if (fields.size() != n) {
      error = "wrong field count for '" + std::string(tag) + "'";
      return false;
    }
    return true;
  };

  std::string_view v;
  if (tag == "journal") {
    record.type = RecordType::kHeader;
    if (!check_arity(3)) return false;
    if (!expect(0, "v", v)) return false;
    std::int64_t version = 0;
    if (!parse_i64(v, version) || version != 1) {
      error = "unsupported journal version";
      return false;
    }
    if (!expect(1, "seed", v) || !parse_u64(v, record.seed)) {
      error = error.empty() ? "bad seed" : error;
      return false;
    }
    if (!expect(2, "spec", v)) return false;
    record.spec = std::string(v);
    return true;
  }
  if (tag == "ready") {
    record.type = RecordType::kReady;
    if (!check_arity(1)) return false;
    return expect_time(0, record.time);
  }
  if (tag == "task") {
    record.type = RecordType::kTransition;
    if (!check_arity(6)) return false;
    if (!expect_time(0, record.time)) return false;
    if (!expect(1, "uid", v)) return false;
    record.uid = std::string(v);
    if (!expect(2, "from", v)) return false;
    record.from = std::string(v);
    if (!expect(3, "to", v)) return false;
    record.to = std::string(v);
    if (!expect(4, "backend", v)) return false;
    record.backend = std::string(v);
    return expect_i64(5, "attempt", record.attempt);
  }
  if (tag == "alloc") {
    record.type = RecordType::kAlloc;
    if (!check_arity(4)) return false;
    return expect_time(0, record.time) &&
           expect_i64(1, "node", record.node) &&
           expect_i64(2, "cores", record.cores) &&
           expect_i64(3, "gpus", record.gpus);
  }
  if (tag == "fault") {
    record.type = RecordType::kFault;
    if (!check_arity(5)) return false;
    if (!expect_time(0, record.time)) return false;
    if (!expect(1, "kind", v)) return false;
    record.kind = std::string(v);
    if (!expect(2, "backend", v)) return false;
    record.backend = std::string(v);
    return expect_i64(3, "index", record.index) &&
           expect_i64(4, "count", record.count);
  }
  if (tag == "end") {
    record.type = RecordType::kEnd;
    if (!check_arity(5)) return false;
    if (!expect_time(0, record.time)) return false;
    if (!expect_i64(1, "done", record.done)) return false;
    if (!expect_i64(2, "failed", record.failed)) return false;
    if (!expect_i64(3, "canceled", record.canceled)) return false;
    if (!expect(4, "events", v) || !parse_u64(v, record.events)) {
      error = error.empty() ? "bad event count" : error;
      return false;
    }
    return true;
  }
  error = "unknown record tag '" + std::string(tag) + "'";
  return false;
}

// Verifies and strips the trailing "|h=XXXXXXXX" checksum field.
bool strip_checksum(std::string_view line, std::string_view& body,
                    std::string& error) {
  constexpr std::size_t kSuffix = 11;  // "|h=" + 8 hex digits
  if (line.size() < kSuffix || line.substr(line.size() - kSuffix, 3) != "|h=") {
    error = "missing checksum";
    return false;
  }
  body = line.substr(0, line.size() - kSuffix);
  const std::string_view hex = line.substr(line.size() - 8);
  std::uint64_t stored = 0;
  const auto [ptr, ec] = std::from_chars(
      hex.data(), hex.data() + hex.size(), stored, 16);
  if (ec != std::errc{} || ptr != hex.data() + hex.size()) {
    error = "malformed checksum";
    return false;
  }
  const std::uint32_t expected = fnv1a32(std::string(body) + "|h=");
  if (static_cast<std::uint32_t>(stored) != expected) {
    error = "checksum mismatch";
    return false;
  }
  return true;
}

}  // namespace

ReadResult read(std::string_view bytes) {
  ReadResult out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    const bool is_tail = nl == std::string_view::npos;
    const std::string_view line =
        is_tail ? bytes.substr(pos) : bytes.substr(pos, nl - pos);
    std::string_view body;
    std::string error;
    Record record;
    const bool ok = strip_checksum(line, body, error) &&
                    decode_body(body, record, error);
    if (!ok) {
      if (is_tail) {
        // Crash-mid-write artifact: tolerated, reported.
        out.truncated = true;
        out.truncated_bytes = line.size();
      } else {
        out.corrupt = true;
        out.corrupt_index = out.records.size();
        out.error = error;
      }
      return out;
    }
    if (is_tail) {
      // A line that decodes but lacks its '\n' still counts as torn: the
      // writer terminates every record, so the terminator itself is part
      // of the durable unit.
      out.truncated = true;
      out.truncated_bytes = line.size();
      return out;
    }
    out.records.push_back(std::move(record));
    pos = nl + 1;
  }
  return out;
}

}  // namespace flotilla::journal
