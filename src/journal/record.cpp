#include "journal/record.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace flotilla::journal {

namespace {

// %.9f is the journal's canonical time form: fixed precision keeps the
// bytes stable across runs, and re-encoding a decoded record reproduces
// the exact same text (decimal -> nearest double -> same decimal).
std::string time_str(sim::Time t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", t);
  return buf;
}

void put(std::string& line, std::string_view key, std::string_view value) {
  for (const char c : value) {
    if (c == '|' || c == '\n') {
      util::raise("journal: field '", key, "' contains a record delimiter: ",
                  value);
    }
  }
  line += '|';
  line += key;
  line += '=';
  line += value;
}

void put(std::string& line, std::string_view key, std::int64_t value) {
  put(line, key, std::to_string(value));
}

void put(std::string& line, std::string_view key, std::uint64_t value) {
  put(line, key, std::to_string(value));
}

}  // namespace

std::string_view to_string(RecordType type) {
  switch (type) {
    case RecordType::kHeader:
      return "journal";
    case RecordType::kReady:
      return "ready";
    case RecordType::kTransition:
      return "task";
    case RecordType::kAlloc:
      return "alloc";
    case RecordType::kFault:
      return "fault";
    case RecordType::kEnd:
      return "end";
  }
  return "?";
}

std::uint32_t fnv1a32(std::string_view text) {
  std::uint32_t h = 2166136261u;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

std::string Record::encode() const {
  std::string line(to_string(type));
  switch (type) {
    case RecordType::kHeader:
      put(line, "v", std::int64_t{1});
      put(line, "seed", seed);
      put(line, "spec", spec);
      break;
    case RecordType::kReady:
      put(line, "t", time_str(time));
      break;
    case RecordType::kTransition:
      put(line, "t", time_str(time));
      put(line, "uid", uid);
      put(line, "from", from);
      put(line, "to", to);
      put(line, "backend", backend);
      put(line, "attempt", attempt);
      break;
    case RecordType::kAlloc:
      put(line, "t", time_str(time));
      put(line, "node", node);
      put(line, "cores", cores);
      put(line, "gpus", gpus);
      break;
    case RecordType::kFault:
      put(line, "t", time_str(time));
      put(line, "kind", kind);
      put(line, "backend", backend);
      put(line, "index", index);
      put(line, "count", count);
      break;
    case RecordType::kEnd:
      put(line, "t", time_str(time));
      put(line, "done", done);
      put(line, "failed", failed);
      put(line, "canceled", canceled);
      put(line, "events", events);
      break;
  }
  line += "|h=";
  char sum[16];
  std::snprintf(sum, sizeof(sum), "%08x", fnv1a32(line));
  line += sum;
  line += '\n';
  return line;
}

Record header_record(std::uint64_t seed, std::string spec) {
  Record r;
  r.type = RecordType::kHeader;
  r.seed = seed;
  r.spec = std::move(spec);
  return r;
}

Record ready_record(sim::Time time) {
  Record r;
  r.type = RecordType::kReady;
  r.time = time;
  return r;
}

Record transition_record(sim::Time time, std::string uid, std::string from,
                         std::string to, std::string backend,
                         std::int64_t attempt) {
  Record r;
  r.type = RecordType::kTransition;
  r.time = time;
  r.uid = std::move(uid);
  r.from = std::move(from);
  r.to = std::move(to);
  r.backend = std::move(backend);
  r.attempt = attempt;
  return r;
}

Record alloc_record(sim::Time time, std::int64_t node, std::int64_t cores,
                    std::int64_t gpus) {
  Record r;
  r.type = RecordType::kAlloc;
  r.time = time;
  r.node = node;
  r.cores = cores;
  r.gpus = gpus;
  return r;
}

Record fault_record(sim::Time time, std::string kind, std::string backend,
                    std::int64_t index, std::int64_t count) {
  Record r;
  r.type = RecordType::kFault;
  r.time = time;
  r.kind = std::move(kind);
  r.backend = std::move(backend);
  r.index = index;
  r.count = count;
  return r;
}

Record end_record(sim::Time time, std::int64_t done, std::int64_t failed,
                  std::int64_t canceled, std::uint64_t events) {
  Record r;
  r.type = RecordType::kEnd;
  r.time = time;
  r.done = done;
  r.failed = failed;
  r.canceled = canceled;
  r.events = events;
  return r;
}

}  // namespace flotilla::journal
