// RecoveryManager: turns surviving journal bytes back into a runnable,
// checkable recovery plan (docs/recovery.md).
//
// Flotilla recovers by deterministic re-execution: the journal header
// carries the full serialized scenario/config line, so the recovering
// controller rebuilds the run from the seed and validates every record it
// re-emits against the journal prefix (a Scribe in validate mode). Any
// mismatch means the restored state machine does not reproduce its own
// history — a recovery bug, surfaced as a Divergence. Once the prefix is
// exhausted the run goes live and finishes normally, which is what makes
// "recovered terminal state == uninterrupted terminal state" an exact,
// byte-level oracle rather than a statistical one.
//
// The manager also folds the prefix into a StateImage — the per-task /
// per-node summary a restored controller would hold — used by the backend
// RecoveryContract suite and by tools to describe what a journal contains.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "journal/journal.hpp"
#include "journal/record.hpp"

namespace flotilla::journal {

// Summary state reconstructed from a journal prefix.
struct StateImage {
  struct TaskImage {
    std::string state;    // last journaled state name
    std::string backend;  // last journaled backend assignment
    std::int64_t attempt = 0;
    int terminal_edges = 0;  // edges into kDone/kFailed/kCanceled
  };

  // Ordered by uid so iteration (and test output) is deterministic.
  std::map<std::string, TaskImage> tasks;
  // Net journaled free-capacity delta per node (0 = node back to its
  // attach-time capacity; negative = capacity still claimed at the crash).
  std::map<std::int64_t, std::int64_t> core_delta;
  std::map<std::int64_t, std::int64_t> gpu_delta;

  bool ready = false;  // pilot had reported ready
  sim::Time ready_time = 0.0;
  std::size_t faults = 0;     // fault records seen
  bool ended = false;         // end record present (run was uninterrupted)
  sim::Time last_time = 0.0;  // time of the last journaled record

  std::size_t tasks_in_flight() const;  // tasks without a terminal edge
};

class RecoveryManager {
 public:
  // Parses journal bytes. A torn tail (crash-mid-write) is tolerated and
  // reported via truncated(); mid-stream corruption or a missing/invalid
  // header raises util::Error with the damaged record's index.
  explicit RecoveryManager(std::string_view bytes);

  // Run identity from the header record.
  std::uint64_t seed() const { return seed_; }
  const std::string& spec_line() const { return spec_; }

  // Every intact record, header included — the validation prefix for a
  // Scribe in validate mode.
  const std::vector<Record>& prefix() const { return prefix_; }

  // Torn-tail report from the reader.
  bool truncated() const { return truncated_; }
  std::size_t truncated_bytes() const { return truncated_bytes_; }

  // Folds the prefix into the restored-controller summary state.
  StateImage image() const;

 private:
  std::vector<Record> prefix_;
  std::uint64_t seed_ = 0;
  std::string spec_;
  bool truncated_ = false;
  std::size_t truncated_bytes_ = 0;
};

}  // namespace flotilla::journal
