#include "journal/scribe.hpp"

#include <utility>

namespace flotilla::journal {

namespace {

// Snapshot of one node's free capacity, via the cluster's range aggregate
// so the scribe never reaches into Node internals.
std::int64_t node_free_cores(const platform::Cluster& cluster,
                             platform::NodeId node) {
  return cluster.free_cores(platform::NodeRange{node, 1});
}

std::int64_t node_free_gpus(const platform::Cluster& cluster,
                            platform::NodeId node) {
  return cluster.free_gpus(platform::NodeRange{node, 1});
}

}  // namespace

Scribe::Scribe(core::Session& session)
    : session_(session), obs_trace_(session.trace_handle()) {
  const int nodes = session_.cluster().size();
  free_cores_.reserve(nodes);
  free_gpus_.reserve(nodes);
  for (platform::NodeId n = 0; n < nodes; ++n) {
    free_cores_.push_back(node_free_cores(session_.cluster(), n));
    free_gpus_.push_back(node_free_gpus(session_.cluster(), n));
  }
  session_.cluster().add_observer(this);
}

Scribe::Scribe(core::Session& session, std::vector<Record> prefix)
    : Scribe(session) {
  prefix_ = std::move(prefix);
  validating_ = true;
}

Scribe::~Scribe() { session_.cluster().remove_observer(this); }

void Scribe::attach(core::TaskManager& tmgr) {
  tmgr.on_transition([this](const core::Task& task, core::TaskState from,
                            core::TaskState to) {
    emit(transition_record(session_.now(), task.uid(),
                           std::string(core::to_string(from)),
                           std::string(core::to_string(to)), task.backend(),
                           task.attempts()));
  });
}

void Scribe::record_header(std::uint64_t seed, std::string spec) {
  emit(header_record(seed, std::move(spec)));
}

void Scribe::record_ready() { emit(ready_record(session_.now())); }

void Scribe::record_fault(std::string kind, std::string backend,
                          std::int64_t index, std::int64_t count) {
  emit(fault_record(session_.now(), std::move(kind), std::move(backend),
                    index, count));
}

void Scribe::record_end(std::int64_t done, std::int64_t failed,
                        std::int64_t canceled, std::uint64_t events) {
  emit(end_record(session_.now(), done, failed, canceled, events));
}

void Scribe::node_changed(platform::NodeId node) {
  const std::int64_t cores = node_free_cores(session_.cluster(), node);
  const std::int64_t gpus = node_free_gpus(session_.cluster(), node);
  const std::int64_t dc = cores - free_cores_[node];
  const std::int64_t dg = gpus - free_gpus_[node];
  free_cores_[node] = cores;
  free_gpus_[node] = gpus;
  // A notify with no net capacity change (e.g. a rejected probe) carries
  // no durable information — journaling it would only couple the record
  // stream to scheduler-internal probing patterns.
  if (dc == 0 && dg == 0) return;
  emit(alloc_record(session_.now(), node, dc, dg));
}

void Scribe::emit(const Record& record) {
  if (validating_ && !diverged_ && cursor_ < prefix_.size()) {
    const std::string expected = prefix_[cursor_].encode();
    const std::string got = record.encode();
    if (expected != got) {
      diverged_ = true;
      divergence_ = Divergence{cursor_, expected, got};
    }
    ++cursor_;
  }
  writer_.append(record);
  obs_trace_.instant(obs::SpanType::kJournal, "journal",
                     to_string(record.type), 1.0);
}

}  // namespace flotilla::journal
