// Scribe: feeds the journal from the runtime's observation points.
//
// The scribe rides the same hooks the InvariantMonitor uses — the task
// transition hook (every lifecycle edge) and Cluster::Observer (every
// allocate/release, journaled as per-node free-capacity deltas) — plus
// harness-driven records (header, pilot-ready, fault injections, end
// summary). Because every record is emitted synchronously from the
// deterministic event loop, the journal bytes are a pure function of the
// seed: same spec, same bytes (the recovery oracle's foundation).
//
// Two modes:
//   record    append every record to the journal (a normal durable run).
//   validate  the recovery path. Constructed with a journal prefix, the
//             scribe re-executes the run and compares each emitted record
//             against the prefix, byte for byte. The first mismatch is
//             captured as a Divergence (a recovery bug: the restored state
//             does not reproduce the journaled history). Once the prefix
//             is exhausted the run "goes live" — replay_complete() — and
//             keeps appending, so a recovered journal grows into exactly
//             the bytes an uninterrupted run would have produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/task_manager.hpp"
#include "journal/journal.hpp"
#include "journal/record.hpp"

namespace flotilla::journal {

// First record that failed prefix validation during recovery.
struct Divergence {
  std::size_t index = 0;  // record index in the journal (0 = header)
  std::string expected;   // the journaled line
  std::string got;        // the line the re-execution produced
};

class Scribe : public platform::Cluster::Observer {
 public:
  // Record mode: every emitted record is appended.
  explicit Scribe(core::Session& session);
  // Validate mode: emitted records are checked against `prefix` first
  // (recovery replay); appending continues either way.
  Scribe(core::Session& session, std::vector<Record> prefix);
  ~Scribe() override;

  Scribe(const Scribe&) = delete;
  Scribe& operator=(const Scribe&) = delete;

  // Registers the task transition hook; call before submitting tasks
  // (hooks only cover tasks submitted after registration).
  void attach(core::TaskManager& tmgr);

  // Harness-driven records.
  void record_header(std::uint64_t seed, std::string spec);
  void record_ready();
  void record_fault(std::string kind, std::string backend, std::int64_t index,
                    std::int64_t count);
  void record_end(std::int64_t done, std::int64_t failed,
                  std::int64_t canceled, std::uint64_t events);

  // platform::Cluster::Observer — journals the free-capacity delta of the
  // changed node (negative = allocation claimed capacity).
  void node_changed(platform::NodeId node) override;

  const Writer& writer() const { return writer_; }
  std::size_t records() const { return writer_.records(); }

  // Validation state (validate mode; trivially true/false in record mode).
  bool replay_complete() const { return cursor_ >= prefix_.size(); }
  std::size_t cursor() const { return cursor_; }
  bool diverged() const { return diverged_; }
  const Divergence& divergence() const { return divergence_; }

 private:
  void emit(const Record& record);

  core::Session& session_;
  obs::TraceHandle obs_trace_;
  Writer writer_;

  // Validation cursor over the journal prefix (empty in record mode).
  std::vector<Record> prefix_;
  std::size_t cursor_ = 0;
  bool validating_ = false;
  bool diverged_ = false;
  Divergence divergence_;

  // Last observed free capacity per node, to turn node_changed pings into
  // journaled deltas.
  std::vector<std::int64_t> free_cores_;
  std::vector<std::int64_t> free_gpus_;
};

}  // namespace flotilla::journal
