// Synthetic workload generators for the Table 1 experiments.
//
//  - null workload: empty tasks that return immediately; stresses only the
//    middleware stack (throughput experiments, Figs 5-6).
//  - dummy workload: fixed-duration sleep tasks; keeps queues saturated for
//    utilization measurements (Fig 4, flux_n utilization).
//
// Task counts follow the paper's formula: n_nodes * cpn * 4 single-core
// tasks (four waves per core).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task.hpp"

namespace flotilla::workloads {

// `count` copies of a single-core task with the given payload duration.
std::vector<core::TaskDescription> uniform_tasks(
    int count, double duration = 0.0, std::int64_t cores = 1,
    platform::TaskModality modality = platform::TaskModality::kExecutable,
    std::string backend_hint = "");

// The paper's task count for a throughput/utilization run: nodes * cpn * 4.
int paper_task_count(int nodes, int cores_per_node = 56);

// A mixed executable/function workload (Experiment flux+dragon): half the
// tasks are executables, half are functions, interleaved.
std::vector<core::TaskDescription> mixed_tasks(int count,
                                               double duration = 0.0);

// An open-arrival workload: `count` copies of `prototype` arriving as a
// Poisson process with the given rate (tasks/s), as trace entries ready
// for workloads::replay(). Models streaming/inference services (§2's
// "bursts of high-throughput, concurrent inference tasks").
struct TraceEntry;  // from trace_replay.hpp
std::vector<struct TraceEntry> poisson_arrivals(
    int count, double rate_per_s, const core::TaskDescription& prototype,
    std::uint64_t seed);

}  // namespace flotilla::workloads
