#include "workloads/heterogeneous.hpp"

#include "sim/random.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace flotilla::workloads {

std::vector<TaskClass> default_mixture() {
  return {
      {"inference", 0.70, 1, 0, 0, 20.0, 0.4,
       platform::TaskModality::kFunction},
      {"analysis", 0.20, 8, 0, 0, 120.0, 0.3,
       platform::TaskModality::kExecutable},
      {"training", 0.08, 14, 2, 0, 600.0, 0.2,
       platform::TaskModality::kExecutable},
      {"mpi_sim", 0.02, 112, 0, 56, 900.0, 0.1,
       platform::TaskModality::kExecutable},
  };
}

std::vector<core::TaskDescription> heterogeneous_tasks(
    int count, const std::vector<TaskClass>& classes, std::uint64_t seed) {
  FLOT_CHECK(!classes.empty(), "mixture needs at least one class");
  double total_weight = 0.0;
  for (const auto& cls : classes) {
    FLOT_CHECK(cls.weight >= 0.0, "negative weight for class ", cls.name);
    total_weight += cls.weight;
  }
  FLOT_CHECK(total_weight > 0.0, "mixture weights sum to zero");

  sim::RngStream rng(seed, "heterogeneous");
  std::vector<core::TaskDescription> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    double pick = rng.uniform(0.0, total_weight);
    const TaskClass* chosen = &classes.back();
    for (const auto& cls : classes) {
      if (pick < cls.weight) {
        chosen = &cls;
        break;
      }
      pick -= cls.weight;
    }
    core::TaskDescription desc;
    desc.name = util::cat(chosen->name, ".", i);
    desc.stage = chosen->name;
    desc.demand.cores = chosen->cores;
    desc.demand.gpus = chosen->gpus;
    desc.demand.cores_per_node = chosen->cores_per_node;
    desc.duration =
        chosen->duration_cv > 0.0
            ? rng.lognormal_mean_cv(chosen->mean_duration, chosen->duration_cv)
            : chosen->mean_duration;
    desc.modality = chosen->modality;
    tasks.push_back(std::move(desc));
  }
  return tasks;
}

}  // namespace flotilla::workloads
