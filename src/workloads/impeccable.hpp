// IMPECCABLE.v2 campaign generator (§2, §4.2).
//
// The paper evaluates a dummy-task rendition of the production campaign:
// "a faithful approximation ... using representative dummy tasks to
// preserve its heterogeneity, task structure, and execution dynamics".
// This generator reproduces that rendition:
//
//  - six sub-workflows per iteration, with the paper's resource envelopes:
//      docking    CPU-only, up to 128 nodes           (32-node chunks here)
//      SST train  GPU, up to 4 nodes
//      SST infer  GPU, up to 128 nodes
//      scoring    Dock-Min-MMPBSA: multi-node MPI up to 7,168 cores;
//                 AMPL: CPU/GPU up to 16 nodes
//      ESMACS     ensemble CPU/GPU, tens of nodes per member
//      REINVENT   GPU, 1 node
//  - all tasks sleep 180 s (the paper's dummy workload);
//  - stage dependencies forming the learning/sampling feedback loop:
//      dock -> train -> infer -> {mmpbsa, ampl, reinvent}, dock -> esmacs,
//      and iteration i+1's docking gated on iteration i's inference
//      (surrogate feedback), which pipelines successive iterations;
//  - adaptive width: per-iteration task counts scale with the allocation,
//    and the iteration count shrinks accordingly, so the campaign totals
//    ~550 tasks at 256 nodes and ~1,800 at 1,024 nodes (Table 1) for the
//    same total work.
#pragma once

#include <string>
#include <vector>

#include "core/task.hpp"
#include "core/workflow.hpp"

namespace flotilla::workloads {

struct StageTemplate {
  std::string name;       // stage family ("dock", "train", ...)
  int tasks = 1;          // tasks per iteration
  std::int64_t cores = 1;
  std::int64_t gpus = 0;
  std::int64_t cores_per_node = 0;  // >0: tightly coupled MPI chunks
};

struct CampaignPlan {
  int nodes = 256;
  int iterations = 0;
  double task_duration = 180.0;  // the paper's dummy sleep
  // Optional realism knobs beyond the paper's fixed-duration rendition:
  // lognormal spread of task durations, staged data per task, and a
  // failure-injection rate recovered through `max_retries`.
  double duration_cv = 0.0;
  double stage_in_mb = 0.0;
  double stage_out_mb = 0.0;
  double fail_probability = 0.0;
  int max_retries = 2;
  // Co-schedule each iteration's ESMACS ensemble as a gang (§2: ensemble
  // members are "tightly coupled tasks that must be launched concurrently
  // with co-scheduled resources"). Requires a Flux backend.
  bool coscheduled_esmacs = false;
  std::string backend_hint;  // "" = router decides
  std::vector<StageTemplate> per_iteration;

  int tasks_per_iteration() const;
  int total_tasks() const { return tasks_per_iteration() * iterations; }
};

// The adaptive plan for an allocation of `nodes` (Table 1 rows
// impeccable_*: 256 -> ~550 tasks, 1024 -> ~1,800 tasks).
CampaignPlan impeccable_plan(int nodes);

// Materializes the plan into workflow stages named "<family>.<iteration>".
// `seed` drives the duration jitter when plan.duration_cv > 0.
void build_impeccable(core::Workflow& workflow, const CampaignPlan& plan,
                      std::uint64_t seed = 42);

}  // namespace flotilla::workloads
