#include "workloads/synthetic.hpp"

#include "sim/random.hpp"
#include "util/error.hpp"
#include "workloads/trace_replay.hpp"

namespace flotilla::workloads {

std::vector<core::TaskDescription> uniform_tasks(
    int count, double duration, std::int64_t cores,
    platform::TaskModality modality, std::string backend_hint) {
  std::vector<core::TaskDescription> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = cores;
    desc.duration = duration;
    desc.modality = modality;
    desc.backend_hint = backend_hint;
    tasks.push_back(std::move(desc));
  }
  return tasks;
}

int paper_task_count(int nodes, int cores_per_node) {
  return nodes * cores_per_node * 4;
}

std::vector<core::TaskDescription> mixed_tasks(int count, double duration) {
  std::vector<core::TaskDescription> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = duration;
    desc.modality = (i % 2 == 0) ? platform::TaskModality::kExecutable
                                 : platform::TaskModality::kFunction;
    tasks.push_back(std::move(desc));
  }
  return tasks;
}

std::vector<TraceEntry> poisson_arrivals(
    int count, double rate_per_s, const core::TaskDescription& prototype,
    std::uint64_t seed) {
  FLOT_CHECK(rate_per_s > 0.0, "arrival rate must be positive");
  sim::RngStream rng(seed, "poisson");
  std::vector<TraceEntry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += rng.exponential(1.0 / rate_per_s);
    TraceEntry entry;
    entry.submit_time = t;
    entry.task = prototype;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace flotilla::workloads
