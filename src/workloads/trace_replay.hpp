// Trace replay: drive a session from a recorded workload trace.
//
// Downstream users characterize their own workloads by exporting traces
// (from accounting logs or RP profiles) and replaying them against any
// runtime configuration. Format: CSV with header
//
//   submit_time,cores,gpus,cores_per_node,duration,modality,stage
//
// where modality is "exec" or "func" and stage is an optional tag. Records
// are submitted at their virtual submit_time relative to replay start.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "core/task_manager.hpp"

namespace flotilla::workloads {

struct TraceEntry {
  sim::Time submit_time = 0.0;
  core::TaskDescription task;
};

// Parses the CSV text; throws util::Error on malformed rows.
std::vector<TraceEntry> parse_trace(std::istream& in);

// Serializes entries back to the CSV format (round-trip safe).
void write_trace(std::ostream& out, const std::vector<TraceEntry>& entries);

// Schedules every entry for submission at `start + entry.submit_time`.
// Returns the number of scheduled tasks.
std::size_t replay(core::TaskManager& tmgr,
                   const std::vector<TraceEntry>& entries,
                   sim::Time start = 0.0);

}  // namespace flotilla::workloads
