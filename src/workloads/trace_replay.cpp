#include "workloads/trace_replay.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace flotilla::workloads {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

double to_double(const std::string& cell, const std::string& line) {
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  FLOT_CHECK(end && *end == '\0', "bad numeric field '", cell,
             "' in trace row: ", line);
  return value;
}

}  // namespace

std::vector<TraceEntry> parse_trace(std::istream& in) {
  std::vector<TraceEntry> entries;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("submit_time", 0) == 0) continue;  // header
    }
    const auto cells = split_csv(line);
    FLOT_CHECK(cells.size() >= 6, "trace row needs >= 6 fields: ", line);
    TraceEntry entry;
    entry.submit_time = to_double(cells[0], line);
    FLOT_CHECK(entry.submit_time >= 0.0, "negative submit_time: ", line);
    entry.task.demand.cores =
        static_cast<std::int64_t>(to_double(cells[1], line));
    entry.task.demand.gpus =
        static_cast<std::int64_t>(to_double(cells[2], line));
    entry.task.demand.cores_per_node =
        static_cast<std::int64_t>(to_double(cells[3], line));
    entry.task.duration = to_double(cells[4], line);
    if (cells[5] == "func") {
      entry.task.modality = platform::TaskModality::kFunction;
    } else {
      FLOT_CHECK(cells[5] == "exec", "modality must be exec|func: ", line);
    }
    if (cells.size() >= 7) entry.task.stage = cells[6];
    entries.push_back(std::move(entry));
  }
  return entries;
}

void write_trace(std::ostream& out, const std::vector<TraceEntry>& entries) {
  out << "submit_time,cores,gpus,cores_per_node,duration,modality,stage\n";
  for (const auto& entry : entries) {
    out << entry.submit_time << ',' << entry.task.demand.cores << ','
        << entry.task.demand.gpus << ',' << entry.task.demand.cores_per_node
        << ',' << entry.task.duration << ','
        << (entry.task.modality == platform::TaskModality::kFunction
                ? "func"
                : "exec")
        << ',' << entry.task.stage << '\n';
  }
}

std::size_t replay(core::TaskManager& tmgr,
                   const std::vector<TraceEntry>& entries, sim::Time start) {
  auto& engine = tmgr.session().engine();
  for (const auto& entry : entries) {
    engine.at(start + entry.submit_time, [&tmgr, task = entry.task] {
      tmgr.submit(task);
    });
  }
  return entries.size();
}

}  // namespace flotilla::workloads
