#include "workloads/impeccable.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "sim/random.hpp"
#include "util/strfmt.hpp"

namespace flotilla::workloads {

int CampaignPlan::tasks_per_iteration() const {
  int n = 0;
  for (const auto& stage : per_iteration) n += stage.tasks;
  return n;
}

CampaignPlan impeccable_plan(int nodes) {
  FLOT_CHECK(nodes >= 32, "IMPECCABLE needs at least 32 nodes, got ", nodes);
  CampaignPlan plan;
  plan.nodes = nodes;

  // Width scale: how many replicas of the 256-node stage set fit the
  // allocation. The campaign's total work is fixed, so a wider allocation
  // runs fewer, fatter iterations (the paper's adaptive task counts).
  const double scale = static_cast<double>(nodes) / 256.0;
  const int s = std::max(1, static_cast<int>(std::lround(scale)));

  plan.per_iteration = {
      // docking: CPU-only, high throughput; 32-node chunks.
      {"dock", 6 * s, 1792, 0, 0},
      // SST surrogate training: GPU, up to 4 nodes.
      {"train", 1 * s, 56, 32, 0},
      // SST surrogate inference: GPU, wide.
      {"infer", 4 * s, 448, 256, 0},
      // Physics-based scoring: tightly coupled MPI, up to 7,168 cores.
      {"mmpbsa", 2 * s, 7168, 0, 56},
      // AMPL property prediction: CPU/GPU, up to 16 nodes.
      {"ampl", 2 * s, 112, 64, 0},
      // ESMACS ensemble members: CPU/GPU, tens of nodes each.
      {"esmacs", 3 * s, 1120, 400, 0},
      // REINVENT generative model: single GPU node.
      {"reinvent", 1, 8, 8, 0},
  };

  // Total task budget follows Table 1 (~550 at 256 nodes, ~1,800 at 1,024),
  // sublinear in the allocation because iterations shrink as width grows.
  const int target_total =
      static_cast<int>(std::lround(550.0 * std::pow(scale, 0.85)));
  plan.iterations =
      std::max(4, target_total / std::max(1, plan.tasks_per_iteration()));
  return plan;
}

void build_impeccable(core::Workflow& workflow, const CampaignPlan& plan,
                      std::uint64_t seed) {
  FLOT_CHECK(plan.iterations >= 1, "campaign needs >= 1 iteration");
  sim::RngStream rng(seed, "impeccable");
  auto stage_name = [](const std::string& family, int iter) {
    return util::cat(family, ".", iter);
  };

  for (int iter = 0; iter < plan.iterations; ++iter) {
    // Dependencies inside one iteration, per §2's feedback structure.
    const std::vector<std::pair<std::string, std::vector<std::string>>>
        edges = {
            {"dock", {}},
            {"train", {"dock"}},
            {"infer", {"train"}},
            {"mmpbsa", {"infer"}},
            {"ampl", {"infer"}},
            {"esmacs", {"dock"}},
            {"reinvent", {"infer"}},
        };
    for (const auto& [family, deps] : edges) {
      const auto tmpl_it = std::find_if(
          plan.per_iteration.begin(), plan.per_iteration.end(),
          [&family = family](const StageTemplate& t) {
            return t.name == family;
          });
      FLOT_CHECK(tmpl_it != plan.per_iteration.end(), "missing template ",
                 family);
      std::vector<core::TaskDescription> tasks;
      tasks.reserve(static_cast<std::size_t>(tmpl_it->tasks));
      for (int i = 0; i < tmpl_it->tasks; ++i) {
        core::TaskDescription desc;
        desc.name = util::cat(family, ".", iter, ".", i);
        desc.demand.cores = tmpl_it->cores;
        desc.demand.gpus = tmpl_it->gpus;
        desc.demand.cores_per_node = tmpl_it->cores_per_node;
        desc.duration =
            plan.duration_cv > 0.0
                ? rng.lognormal_mean_cv(plan.task_duration, plan.duration_cv)
                : plan.task_duration;
        desc.input_mb = plan.stage_in_mb;
        desc.output_mb = plan.stage_out_mb;
        desc.fail_probability = plan.fail_probability;
        desc.max_retries = plan.max_retries;
        desc.backend_hint = plan.backend_hint;
        desc.stage = stage_name(family, iter);
        if (plan.coscheduled_esmacs && family == "esmacs") {
          desc.gang = stage_name(family, iter);
          desc.gang_size = tmpl_it->tasks;
        }
        tasks.push_back(std::move(desc));
      }
      std::vector<std::string> dep_stages;
      for (const auto& dep : deps) {
        dep_stages.push_back(stage_name(dep, iter));
      }
      // Surrogate feedback: the next iteration's docking campaign waits for
      // this iteration's inference results.
      if (family == "dock" && iter > 0) {
        dep_stages.push_back(stage_name("infer", iter - 1));
      }
      workflow.add_stage(stage_name(family, iter), std::move(tasks),
                         std::move(dep_stages));
    }
  }
}

}  // namespace flotilla::workloads
