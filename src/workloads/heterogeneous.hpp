// Heterogeneous workload generator: the task-size mixtures that motivate
// hierarchical scheduling (§2: workloads "ranging from tightly coupled MPI
// tasks to short-lived, stateless Python functions").
//
// Produces a randomized mixture of task classes with configurable weights;
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task.hpp"

namespace flotilla::workloads {

struct TaskClass {
  std::string name;
  double weight = 1.0;  // relative frequency
  std::int64_t cores = 1;
  std::int64_t gpus = 0;
  std::int64_t cores_per_node = 0;
  double mean_duration = 180.0;
  double duration_cv = 0.0;
  platform::TaskModality modality = platform::TaskModality::kExecutable;
};

// Draws `count` tasks from the weighted mixture. Class tags land in
// TaskDescription::stage for per-class analytics.
std::vector<core::TaskDescription> heterogeneous_tasks(
    int count, const std::vector<TaskClass>& classes, std::uint64_t seed);

// A representative HPC+AI mixture: 70% short single-core functions, 20%
// medium CPU executables, 8% GPU tasks, 2% multi-node MPI jobs.
std::vector<TaskClass> default_mixture();

}  // namespace flotilla::workloads
