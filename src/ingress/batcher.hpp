// Intake batcher: flux-core job-ingest-style transaction batching.
//
// flux-core's job-ingest module validates submissions as they arrive but
// commits them to the KVS in *batches*: the first job in an empty batch
// arms a flush timer, subsequent jobs pile on, and the batch commits as
// one KVS transaction when the timer fires or the batch fills — one
// commit cost amortized over the whole batch. This class reproduces that
// protocol in virtual time: admitted task descriptions accumulate, and a
// flush hands the whole batch to one TaskManager::submit_batch call,
// whose calibrated cost is `tmgr_batch_base + n * tmgr_batch_per_task`
// instead of n times the serial `tmgr_task_cost`.
//
// Timer events are engine events on the calling shard (ingress runs on
// the control shard), so flush order is deterministic for any shard
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/task.hpp"
#include "sim/engine.hpp"

namespace flotilla::ingress {

struct BatcherConfig {
  double window = 2e-3;        // s: flush timer armed by the first add
  std::size_t max_batch = 64;  // flush immediately at this size
};

class IntakeBatcher {
 public:
  using Flush = std::function<void(std::vector<core::TaskDescription>)>;

  IntakeBatcher(sim::Engine& engine, BatcherConfig config, Flush flush);

  // Adds one admitted description; may flush synchronously when the batch
  // fills. The batcher must outlive any armed flush timer (the owning
  // IngressService guarantees this).
  void add(core::TaskDescription description);

  // Flushes whatever is pending, invalidating any armed timer.
  void flush_now();

  std::size_t pending() const { return pending_.size(); }
  std::uint64_t batches() const { return batches_; }
  std::uint64_t batched_tasks() const { return batched_tasks_; }
  std::size_t max_batch_seen() const { return max_batch_seen_; }

 private:
  sim::Engine& engine_;
  BatcherConfig config_;
  Flush flush_;
  std::vector<core::TaskDescription> pending_;
  // Bumped on every flush so a stale timer (armed for a batch that
  // already flushed on size) becomes a no-op instead of double-flushing.
  std::uint64_t generation_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_tasks_ = 0;
  std::size_t max_batch_seen_ = 0;
};

}  // namespace flotilla::ingress
