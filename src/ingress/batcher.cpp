#include "ingress/batcher.hpp"

#include "util/error.hpp"

namespace flotilla::ingress {

IntakeBatcher::IntakeBatcher(sim::Engine& engine, BatcherConfig config,
                             Flush flush)
    : engine_(engine), config_(config), flush_(std::move(flush)) {
  FLOT_CHECK(config_.max_batch >= 1, "batcher max_batch must be >= 1");
  FLOT_CHECK(config_.window >= 0.0, "batcher window must be >= 0");
}

void IntakeBatcher::add(core::TaskDescription description) {
  pending_.push_back(std::move(description));
  if (pending_.size() >= config_.max_batch) {
    flush_now();
    return;
  }
  if (pending_.size() == 1) {
    engine_.in(config_.window, [this, gen = generation_] {
      if (gen == generation_) flush_now();
    });
  }
}

void IntakeBatcher::flush_now() {
  ++generation_;
  if (pending_.empty()) return;
  ++batches_;
  batched_tasks_ += pending_.size();
  if (pending_.size() > max_batch_seen_) max_batch_seen_ = pending_.size();
  std::vector<core::TaskDescription> batch;
  batch.swap(pending_);
  flush_(std::move(batch));
}

}  // namespace flotilla::ingress
