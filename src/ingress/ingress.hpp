// IngressService: a simulated client population in front of core::Session
// (docs/ingress.md; ROADMAP item 3).
//
// Drives open-loop (Poisson / diurnal / bursty) or closed-loop arrival
// processes of task offers onto a TaskManager, classifies every offer
// through the AdmissionController against the bounded intake depth, and
// commits admitted offers through the IntakeBatcher as amortized
// flux-job-ingest-style transactions. Per-request submit->launch latency
// (client offer until the payload starts) is recorded into an
// analytics::LatencyHistogram and as obs kSubmitLaunch spans, so the
// OverheadReport and the streaming-latency bench read p50/p99/p999 from
// the same records.
//
// Scale: open-loop populations superpose into one aggregate arrival
// stream (see arrival.hpp), so state is O(1) in the client count — a
// 10^6-client population costs exactly one pending timer. Closed-loop
// populations keep one think-timer slot per client and are meant for
// moderate N. All randomness derives from named RngStreams off the
// session seed, and every event lands on the calling (control) shard, so
// traces are byte-identical across seeds and shard counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/latency.hpp"
#include "core/session.hpp"
#include "core/task_manager.hpp"
#include "ingress/admission.hpp"
#include "ingress/arrival.hpp"
#include "ingress/batcher.hpp"
#include "sim/random.hpp"

namespace flotilla::ingress {

struct IngressConfig {
  // Population size. Open loop: a label space for attribution (arrivals
  // aggregate); closed loop: the number of independent think-loop
  // clients.
  int clients = 1;
  ArrivalConfig arrival;
  AdmitConfig admit;
  BatcherConfig batch;
  // Fresh offers to generate before the population goes quiet (deferred
  // re-offers do not consume this budget).
  int total_offers = 0;
  // Closed loop: concurrent outstanding requests allowed per client.
  int in_flight_limit = 1;
};

struct IngressStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deferred = 0;
  std::uint64_t batches = 0;          // intake transactions committed
  std::uint64_t batched_tasks = 0;    // tasks across all transactions
  std::size_t max_batch = 0;          // largest single transaction
  std::uint64_t launched = 0;         // accepted tasks whose payload started
  std::uint64_t completed = 0;        // accepted tasks reaching a final state
  std::size_t max_client_in_flight = 0;  // closed loop: peak per-client

  // Conservation under rejection: every offer classified exactly once.
  bool conserved() const {
    return offered == accepted + rejected + deferred;
  }
};

class IngressService {
 public:
  IngressService(core::Session& session, core::TaskManager& tmgr,
                 IngressConfig config);

  IngressService(const IngressService&) = delete;
  IngressService& operator=(const IngressService&) = delete;

  // Starts the arrival processes. Fresh offer i draws its task from
  // prototypes[i % prototypes.size()]; must be called at most once, with
  // a non-empty prototype set, before the engine drains.
  void start(std::vector<core::TaskDescription> prototypes);

  IngressStats stats() const;
  const AdmissionController& admission() const { return admission_; }
  const analytics::LatencyHistogram& submit_to_launch() const {
    return submit_to_launch_;
  }
  // Client-visible turnaround: offer acceptance until the task reaches a
  // final state (includes intake wait, batching, queueing, and the
  // payload itself). The streaming-latency bench reads this instead of
  // re-deriving it from TMGR state times, which would hide the intake
  // and batch wait in front of kTmgrScheduling.
  const analytics::LatencyHistogram& turnaround() const {
    return turnaround_;
  }
  // Uids of admitted tasks in commit order (grows over the run); fault
  // injection draws cancellation targets from here.
  const std::vector<std::string>& accepted_uids() const {
    return accepted_uids_;
  }

  // Current bounded-intake depth the admission verdicts are made against.
  std::size_t intake_depth() const {
    return batcher_.pending() + tmgr_.intake_backlog();
  }

  // True once the fresh-offer budget is spent and no deferred re-offer or
  // unflushed batch remains (checked by the harness after drain).
  bool quiescent() const {
    return fresh_offers_ == config_.total_offers && pending_reoffers_ == 0 &&
           batcher_.pending() == 0;
  }

 private:
  struct Offer {
    double time = 0.0;      // virtual time of the accepted offer
    int client = 0;
    std::string request;    // span entity: "req-<n>"
  };

  void schedule_open_arrival();
  void schedule_closed_offer(int client, double delay);
  void make_offer(int client, int prior_defers,
                  core::TaskDescription description);
  void commit(std::vector<core::TaskDescription> batch);
  void on_transition(const core::Task& task, core::TaskState to);
  core::TaskDescription next_prototype();

  core::Session& session_;
  core::TaskManager& tmgr_;
  IngressConfig config_;
  AdmissionController admission_;
  IntakeBatcher batcher_;
  sim::RngStream client_rng_;
  std::unique_ptr<ArrivalProcess> arrivals_;  // open loop only
  std::vector<core::TaskDescription> prototypes_;

  int fresh_offers_ = 0;          // fresh offers issued so far
  std::uint64_t request_seq_ = 0;
  int pending_reoffers_ = 0;      // deferred re-offers not yet re-offered
  std::deque<Offer> uncommitted_;  // accepted offers awaiting batch commit
  std::unordered_map<std::string, Offer> awaiting_launch_;  // uid -> offer
  std::unordered_map<std::string, Offer> admitted_;  // uid -> offer, to final
  std::vector<int> client_in_flight_;                // closed loop
  std::vector<std::string> accepted_uids_;
  analytics::LatencyHistogram submit_to_launch_;
  analytics::LatencyHistogram turnaround_;
  obs::TraceHandle obs_trace_;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t max_client_in_flight_ = 0;
};

}  // namespace flotilla::ingress
