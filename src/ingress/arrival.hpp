// Arrival processes for service-mode ingress (docs/ingress.md).
//
// Open-loop processes generate inter-arrival gaps independent of the
// system's response: Poisson (memoryless, the M/·/· baseline), diurnal (a
// nonhomogeneous Poisson process whose rate follows a sinusoidal
// day-cycle envelope, sampled by thinning), and bursty (a two-state
// Markov-modulated Poisson process alternating quiet and storm phases).
// Closed-loop arrivals are not a gap process — each client waits a think
// time after its previous request resolves — and live in IngressService.
//
// A population of N independent Poisson clients superposes into one
// Poisson stream at the aggregate rate, so open-loop configs carry the
// *aggregate* rate and O(1) state regardless of client count: 10^6
// clients cost no more than 10. All randomness derives from a named
// sim::RngStream, so the arrival time series is a pure function of the
// session seed (same seed => byte-identical traces).
#pragma once

#include <cstdint>
#include <string>

#include "sim/random.hpp"

namespace flotilla::ingress {

enum class ArrivalKind : std::uint8_t {
  kPoisson,  // open loop, constant rate
  kDiurnal,  // open loop, sinusoid-modulated rate (day cycle)
  kBursty,   // open loop, MMPP-2 (quiet/storm phases)
  kClosed,   // closed loop: think time per client (IngressService)
};

std::string to_string(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  // Open loop: aggregate offered rate [requests/s] across all clients.
  double rate = 200.0;
  // Closed loop: per-client think time [s] between a resolution and the
  // client's next request.
  double think = 0.25;

  // Diurnal envelope: rate * (1 + amplitude * sin(2*pi*t / period)). The
  // period is virtual seconds — a compressed "day" so sweeps cross whole
  // cycles.
  double diurnal_amplitude = 0.75;
  double diurnal_period = 120.0;

  // Bursty MMPP-2: storms run at burst_factor * rate for a mean sojourn
  // of burst_sojourn seconds, with duty cycle burst_duty; the quiet-state
  // rate is derived so the long-run average stays `rate`. Requires
  // burst_factor * burst_duty < 1.
  double burst_factor = 3.0;
  double burst_duty = 0.25;
  double burst_sojourn = 2.0;

  bool open_loop() const { return kind != ArrivalKind::kClosed; }

  // Compact `kind[:param]` form used by the fuzz spec codec and CLI:
  // the param is the aggregate rate for open kinds and the think time
  // for closed. `parse(to_string(c))` round-trips kind and param.
  std::string to_string() const;
  static ArrivalConfig parse(const std::string& token);
};

// Deterministic inter-arrival gap generator for the open-loop kinds.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& config, std::uint64_t seed);

  // Seconds from `now` until the next arrival. `now` is the virtual time
  // of the previous arrival (the diurnal envelope is evaluated in
  // absolute virtual time).
  double next_gap(double now);

 private:
  double quiet_sojourn_mean() const;

  ArrivalConfig config_;
  sim::RngStream rng_;
  // MMPP-2 state.
  bool storm_ = false;
  double sojourn_left_ = 0.0;
  double quiet_rate_ = 0.0;
  double storm_rate_ = 0.0;
};

}  // namespace flotilla::ingress
