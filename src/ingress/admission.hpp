// Admission control for service-mode ingress (docs/ingress.md).
//
// The intake path is a bounded queue: when its depth (batcher pending +
// TMGR intake backlog) reaches the configured capacity, new offers are
// turned away instead of growing the queue without bound — the
// backpressure half of flux-core's job-ingest design, where a saturated
// broker pushes back on submitting clients rather than buffering
// arbitrarily.
//
// Every offer — including the re-offer of a previously deferred request —
// receives exactly one verdict: ACCEPT, REJECT, or DEFER. This makes
// conservation an exactly-once classification property the fuzz harness
// checks at drain: accepted + rejected + deferred == offered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace flotilla::ingress {

enum class AdmitPolicy : std::uint8_t {
  kReject,  // turn saturated offers away; the client may come back later
  kDefer,   // park saturated offers and re-offer after a backoff, up to
            // max_defers attempts, then reject
};

std::string to_string(AdmitPolicy policy);

struct AdmitConfig {
  AdmitPolicy policy = AdmitPolicy::kReject;
  // Intake depth (batcher pending + TMGR backlog) at or above which new
  // offers are turned away. Zero rejects everything.
  std::size_t capacity = 256;
  // Defer policy: exponential backoff base and retry budget. The k-th
  // retry of an offer waits defer_base * 2^k seconds.
  double defer_base = 0.05;
  int max_defers = 6;

  // Compact `policy[:capacity]` form used by the fuzz spec codec and CLI;
  // `parse(to_string(c))` round-trips policy and capacity.
  std::string to_string() const;
  static AdmitConfig parse(const std::string& token);
};

enum class Verdict : std::uint8_t { kAccept, kReject, kDefer };

// Classifies offers against the configured bound and keeps the exactly-
// once verdict counters the conservation invariant is stated over.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmitConfig& config) : config_(config) {}

  // One offer, one verdict. `depth` is the current intake depth;
  // `prior_defers` is how many times this particular request has already
  // been deferred (0 for a fresh offer).
  Verdict offer(std::size_t depth, int prior_defers) {
    ++offered_;
    if (depth < config_.capacity) {
      ++accepted_;
      return Verdict::kAccept;
    }
    if (config_.policy == AdmitPolicy::kDefer &&
        prior_defers < config_.max_defers) {
      ++deferred_;
      return Verdict::kDefer;
    }
    ++rejected_;
    return Verdict::kReject;
  }

  // Backoff before the (prior_defers+1)-th re-offer of a deferred request.
  double defer_delay(int prior_defers) const {
    const int exponent = prior_defers < 20 ? prior_defers : 20;
    return config_.defer_base * static_cast<double>(1u << exponent);
  }

  const AdmitConfig& config() const { return config_; }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t deferred() const { return deferred_; }

  // The conservation-under-rejection invariant (docs/ingress.md): every
  // offer classified exactly once.
  bool conserved() const {
    return offered_ == accepted_ + rejected_ + deferred_;
  }

 private:
  AdmitConfig config_;
  std::uint64_t offered_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t deferred_ = 0;
};

}  // namespace flotilla::ingress
