#include "ingress/ingress.hpp"

#include <utility>

#include "util/error.hpp"

namespace flotilla::ingress {

IngressService::IngressService(core::Session& session, core::TaskManager& tmgr,
                               IngressConfig config)
    : session_(session),
      tmgr_(tmgr),
      config_(std::move(config)),
      admission_(config_.admit),
      batcher_(session.engine(), config_.batch,
               [this](std::vector<core::TaskDescription> batch) {
                 commit(std::move(batch));
               }),
      client_rng_(session.seed(), "ingress.clients"),
      obs_trace_(session.trace_handle()) {
  FLOT_CHECK(config_.clients >= 1, "ingress: clients must be >= 1");
  FLOT_CHECK(config_.in_flight_limit >= 1,
             "ingress: in_flight_limit must be >= 1");
  // Launch/terminal observation rides the shared transition-hook fanout,
  // coexisting with the invariant monitor and the journal scribe; tasks
  // not admitted through this service are ignored by uid lookup.
  tmgr_.on_transition(
      [this](const core::Task& task, core::TaskState, core::TaskState to) {
        on_transition(task, to);
      });
}

void IngressService::start(std::vector<core::TaskDescription> prototypes) {
  FLOT_CHECK(!prototypes.empty(), "ingress: prototype set must be non-empty");
  FLOT_CHECK(prototypes_.empty() && fresh_offers_ == 0,
             "ingress: start() may be called once");
  prototypes_ = std::move(prototypes);
  if (config_.total_offers <= 0) return;
  if (config_.arrival.open_loop()) {
    arrivals_ =
        std::make_unique<ArrivalProcess>(config_.arrival, session_.seed());
    schedule_open_arrival();
  } else {
    client_in_flight_.assign(static_cast<std::size_t>(config_.clients), 0);
    // Each client slot staggers its first request by one think time so a
    // million synchronized clients do not all arrive at t=0.
    for (int client = 0; client < config_.clients; ++client) {
      for (int slot = 0; slot < config_.in_flight_limit; ++slot) {
        schedule_closed_offer(client,
                              client_rng_.exponential(config_.arrival.think));
      }
    }
  }
}

void IngressService::schedule_open_arrival() {
  if (fresh_offers_ >= config_.total_offers) return;
  const double gap = arrivals_->next_gap(session_.now());
  session_.engine().in(gap, [this] {
    if (fresh_offers_ >= config_.total_offers) return;
    ++fresh_offers_;
    // The aggregate stream attributes each arrival to a client drawn from
    // the population — O(1) state for any population size.
    const int client =
        config_.clients > 1
            ? static_cast<int>(client_rng_.uniform_int(
                  0, static_cast<std::int64_t>(config_.clients) - 1))
            : 0;
    make_offer(client, 0, next_prototype());
    schedule_open_arrival();
  });
}

void IngressService::schedule_closed_offer(int client, double delay) {
  session_.engine().in(delay, [this, client] {
    if (fresh_offers_ >= config_.total_offers) return;
    ++fresh_offers_;
    make_offer(client, 0, next_prototype());
  });
}

core::TaskDescription IngressService::next_prototype() {
  const auto index =
      static_cast<std::size_t>(request_seq_) % prototypes_.size();
  return prototypes_[index];
}

void IngressService::make_offer(int client, int prior_defers,
                                core::TaskDescription description) {
  const Verdict verdict = admission_.offer(intake_depth(), prior_defers);
  switch (verdict) {
    case Verdict::kAccept: {
      obs_trace_.instant(obs::SpanType::kAdmission, "ingress", "accept",
                         static_cast<double>(client));
      Offer offer;
      offer.time = session_.now();
      offer.client = client;
      offer.request = "req-" + std::to_string(request_seq_);
      obs_trace_.begin(obs::SpanType::kSubmitLaunch, "ingress", offer.request,
                       static_cast<double>(client));
      if (!config_.arrival.open_loop()) {
        auto& in_flight =
            client_in_flight_[static_cast<std::size_t>(client)];
        ++in_flight;
        if (static_cast<std::size_t>(in_flight) > max_client_in_flight_) {
          max_client_in_flight_ = static_cast<std::size_t>(in_flight);
        }
      }
      ++request_seq_;
      // Metadata first: the batcher may commit synchronously when the
      // batch fills, and commit() consumes uncommitted_ front-to-back.
      uncommitted_.push_back(std::move(offer));
      batcher_.add(std::move(description));
      break;
    }
    case Verdict::kDefer: {
      obs_trace_.instant(obs::SpanType::kAdmission, "ingress", "defer",
                         static_cast<double>(client));
      ++pending_reoffers_;
      session_.engine().in(
          admission_.defer_delay(prior_defers),
          [this, client, prior_defers,
           description = std::move(description)]() mutable {
            --pending_reoffers_;
            make_offer(client, prior_defers + 1, std::move(description));
          });
      break;
    }
    case Verdict::kReject:
      obs_trace_.instant(obs::SpanType::kAdmission, "ingress", "reject",
                         static_cast<double>(client));
      // A refused closed-loop client thinks, then comes back with a fresh
      // request; open-loop clients are oblivious by definition.
      if (!config_.arrival.open_loop()) {
        schedule_closed_offer(client,
                              client_rng_.exponential(config_.arrival.think));
      }
      break;
  }
}

void IngressService::commit(std::vector<core::TaskDescription> batch) {
  const auto uids = tmgr_.submit_batch(std::move(batch));
  for (const auto& uid : uids) {
    FLOT_CHECK(!uncommitted_.empty(), "ingress: commit without offers");
    Offer offer = std::move(uncommitted_.front());
    uncommitted_.pop_front();
    admitted_.emplace(uid, offer);
    awaiting_launch_.emplace(uid, std::move(offer));
    accepted_uids_.push_back(uid);
  }
}

void IngressService::on_transition(const core::Task& task,
                                   core::TaskState to) {
  if (to == core::TaskState::kRunning) {
    // First launch only: retries re-enter kRunning but the user-visible
    // submit->launch latency ends when the payload first starts.
    const auto it = awaiting_launch_.find(task.uid());
    if (it == awaiting_launch_.end()) return;
    submit_to_launch_.record(session_.now() - it->second.time);
    ++launched_;
    obs_trace_.end(obs::SpanType::kSubmitLaunch, "ingress",
                   it->second.request);
    awaiting_launch_.erase(it);
    return;
  }
  if (!core::is_final(to)) return;
  const auto cit = admitted_.find(task.uid());
  if (cit == admitted_.end()) return;  // not admitted through ingress
  ++completed_;
  turnaround_.record(session_.now() - cit->second.time);
  // Canceled/failed before launch: the request's kSubmitLaunch span stays
  // open (the launch never happened) and surfaces as an unclosed begin.
  awaiting_launch_.erase(task.uid());
  if (!config_.arrival.open_loop()) {
    const int client = cit->second.client;
    --client_in_flight_[static_cast<std::size_t>(client)];
    schedule_closed_offer(client,
                          client_rng_.exponential(config_.arrival.think));
  }
  admitted_.erase(cit);
}

IngressStats IngressService::stats() const {
  IngressStats stats;
  stats.offered = admission_.offered();
  stats.accepted = admission_.accepted();
  stats.rejected = admission_.rejected();
  stats.deferred = admission_.deferred();
  stats.batches = batcher_.batches();
  stats.batched_tasks = batcher_.batched_tasks();
  stats.max_batch = batcher_.max_batch_seen();
  stats.launched = launched_;
  stats.completed = completed_;
  stats.max_client_in_flight = max_client_in_flight_;
  return stats;
}

}  // namespace flotilla::ingress
