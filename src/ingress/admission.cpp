#include "ingress/admission.hpp"

#include "util/error.hpp"

namespace flotilla::ingress {

std::string to_string(AdmitPolicy policy) {
  switch (policy) {
    case AdmitPolicy::kReject:
      return "reject";
    case AdmitPolicy::kDefer:
      return "defer";
  }
  return "?";
}

std::string AdmitConfig::to_string() const {
  return ingress::to_string(policy) + ":" + std::to_string(capacity);
}

AdmitConfig AdmitConfig::parse(const std::string& token) {
  AdmitConfig config;
  const auto colon = token.find(':');
  const auto policy = token.substr(0, colon);
  if (policy == "reject") {
    config.policy = AdmitPolicy::kReject;
  } else if (policy == "defer") {
    config.policy = AdmitPolicy::kDefer;
  } else {
    util::raise("admit: unknown policy: ", policy);
  }
  if (colon != std::string::npos) {
    const auto value = token.substr(colon + 1);
    try {
      std::size_t used = 0;
      const long long capacity = std::stoll(value, &used);
      if (used != value.size() || capacity < 0) {
        util::raise("admit: bad capacity: ", value);
      }
      config.capacity = static_cast<std::size_t>(capacity);
    } catch (const std::invalid_argument&) {
      util::raise("admit: bad capacity: ", value);
    } catch (const std::out_of_range&) {
      util::raise("admit: capacity out of range: ", value);
    }
  }
  return config;
}

}  // namespace flotilla::ingress
