#include "ingress/arrival.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace flotilla::ingress {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// %.17g round-trips every binary64 value through text exactly (the same
// discipline as the fuzz spec codec).
std::string double_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kClosed:
      return "closed";
  }
  return "?";
}

std::string ArrivalConfig::to_string() const {
  const double param = open_loop() ? rate : think;
  return ingress::to_string(kind) + ":" + double_str(param);
}

ArrivalConfig ArrivalConfig::parse(const std::string& token) {
  ArrivalConfig config;
  const auto colon = token.find(':');
  const auto kind = token.substr(0, colon);
  if (kind == "poisson") {
    config.kind = ArrivalKind::kPoisson;
  } else if (kind == "diurnal") {
    config.kind = ArrivalKind::kDiurnal;
  } else if (kind == "bursty") {
    config.kind = ArrivalKind::kBursty;
  } else if (kind == "closed") {
    config.kind = ArrivalKind::kClosed;
  } else {
    util::raise("arrival: unknown kind: ", kind);
  }
  if (colon != std::string::npos) {
    const auto value = token.substr(colon + 1);
    try {
      std::size_t used = 0;
      const double param = std::stod(value, &used);
      if (used != value.size() || param <= 0.0) {
        util::raise("arrival: bad parameter: ", value);
      }
      (config.open_loop() ? config.rate : config.think) = param;
    } catch (const std::invalid_argument&) {
      util::raise("arrival: bad parameter: ", value);
    } catch (const std::out_of_range&) {
      util::raise("arrival: parameter out of range: ", value);
    }
  }
  return config;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed, "ingress.arrivals") {
  FLOT_CHECK(config.open_loop(), "closed-loop arrivals have no gap process");
  FLOT_CHECK(config.rate > 0.0, "arrival rate must be positive");
  if (config_.kind == ArrivalKind::kBursty) {
    FLOT_CHECK(config_.burst_factor * config_.burst_duty < 1.0,
               "bursty arrivals need burst_factor * burst_duty < 1");
    // duty * storm + (1 - duty) * quiet == rate, so the long-run average
    // offered load is the configured rate regardless of burst shape.
    storm_rate_ = config_.burst_factor * config_.rate;
    quiet_rate_ = config_.rate *
                  (1.0 - config_.burst_factor * config_.burst_duty) /
                  (1.0 - config_.burst_duty);
    sojourn_left_ = rng_.exponential(quiet_sojourn_mean());
  }
}

double ArrivalProcess::next_gap(double now) {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      return rng_.exponential(1.0 / config_.rate);
    case ArrivalKind::kDiurnal: {
      // Thinning (Lewis-Shedler): candidate arrivals at the envelope peak
      // rate, each accepted with probability lambda(t)/lambda_max. The
      // amplitude is < 1 so lambda(t) > 0 everywhere.
      const double peak = config_.rate * (1.0 + config_.diurnal_amplitude);
      double t = now;
      for (;;) {
        t += rng_.exponential(1.0 / peak);
        const double lambda =
            config_.rate *
            (1.0 + config_.diurnal_amplitude *
                       std::sin(kTwoPi * t / config_.diurnal_period));
        if (rng_.uniform() * peak <= lambda) return t - now;
      }
    }
    case ArrivalKind::kBursty: {
      // Within a phase arrivals are Poisson at the phase rate; a candidate
      // gap overshooting the phase's remaining sojourn advances to the
      // phase boundary and resamples (memorylessness makes this exact).
      double elapsed = 0.0;
      for (;;) {
        const double rate = storm_ ? storm_rate_ : quiet_rate_;
        const double gap = rng_.exponential(1.0 / rate);
        if (gap <= sojourn_left_) {
          sojourn_left_ -= gap;
          return elapsed + gap;
        }
        elapsed += sojourn_left_;
        storm_ = !storm_;
        sojourn_left_ = rng_.exponential(
            storm_ ? config_.burst_sojourn : quiet_sojourn_mean());
      }
    }
    case ArrivalKind::kClosed:
      break;
  }
  util::raise("arrival: closed-loop arrivals have no gap process");
}

double ArrivalProcess::quiet_sojourn_mean() const {
  // Duty cycle d with mean storm sojourn s implies mean quiet sojourn
  // s * (1 - d) / d.
  return config_.burst_sojourn * (1.0 - config_.burst_duty) /
         config_.burst_duty;
}

}  // namespace flotilla::ingress
