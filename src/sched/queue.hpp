// Shared task-queue policies for the backend schedulers.
//
// Every backend used to keep its own pending queue with subtly different
// ordering code: flux/instance.cpp's priority deque with backfill, the
// agent's strict-FIFO waitlist for externally scheduled backends, dragon's
// capacity queue. A QueuePolicy decides exactly two things — where a new
// entry is inserted, and how deep a scheduling pass may scan past a blocked
// head — so the queues themselves share one implementation and one set of
// tests (see docs/scheduling.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "obs/tracer.hpp"
#include "platform/types.hpp"
#include "util/error.hpp"

namespace flotilla::sched {

// One queued unit of work. `payload` carries the backend's own task object
// (flux::Job, core::Task, ...) through the queue without the queue knowing
// its type; the scheduling-relevant fields are mirrored alongside so
// policies and drain loops never need to downcast.
struct QueueEntry {
  std::string id;
  int priority = 16;  // Flux urgency scale: 0..31, higher first
  std::string gang;
  int gang_size = 0;
  platform::ResourceDemand demand;
  std::shared_ptr<void> payload;
};

class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;

  virtual const char* name() const = 0;

  // Index at which `entry` enters `entries` (0 = head, size() = tail).
  virtual std::size_t insertion_index(const std::deque<QueueEntry>& entries,
                                      const QueueEntry& entry) const = 0;

  // How many entries from the head one scheduling pass may consider before
  // giving up. 1 means strict head-of-line blocking: an entry that does
  // not fit blocks everything behind it until resources free up.
  virtual std::size_t scan_limit(std::size_t queue_size) const = 0;
};

// Strict FIFO: arrival order, head-only scheduling. The agent's waitlist
// for externally scheduled backends (PRRTE DVM) and dragon's capacity
// queue both use this by default.
class FifoPolicy : public QueuePolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t insertion_index(const std::deque<QueueEntry>& entries,
                              const QueueEntry& entry) const override;
  std::size_t scan_limit(std::size_t queue_size) const override;
};

// Non-increasing priority with FIFO tie-break (Flux urgency semantics):
// an entry enters after every queued entry of equal or higher priority.
// Scheduling remains head-only.
class PriorityFifoPolicy : public QueuePolicy {
 public:
  const char* name() const override { return "priority-fifo"; }
  std::size_t insertion_index(const std::deque<QueueEntry>& entries,
                              const QueueEntry& entry) const override;
  std::size_t scan_limit(std::size_t queue_size) const override;
};

// Priority order plus bounded-depth backfill: a scheduling pass may skip
// up to `depth` blocked entries looking for one that fits — Flux's
// FCFS-with-backfill scheduler (flux::Instance::backfill_depth writes
// through to this policy each pass).
class BackfillPolicy : public PriorityFifoPolicy {
 public:
  explicit BackfillPolicy(int depth) { set_depth(depth); }

  const char* name() const override { return "backfill"; }
  std::size_t scan_limit(std::size_t queue_size) const override;

  void set_depth(int depth) {
    FLOT_CHECK(depth >= 1, "backfill depth must be >= 1, got ", depth);
    depth_ = depth;
  }
  int depth() const { return depth_; }

 private:
  int depth_ = 1;
};

// A policy-ordered queue of entries. Deques keep iteration deterministic
// (the determinism lint forbids unordered containers on scheduling paths).
class TaskQueue {
 public:
  explicit TaskQueue(std::unique_ptr<QueuePolicy> policy)
      : policy_(std::move(policy)) {
    FLOT_CHECK(policy_ != nullptr, "task queue needs a policy");
  }

  void push(QueueEntry entry) {
    const auto pos = policy_->insertion_index(entries_, entry);
    FLOT_CHECK(pos <= entries_.size(), "insertion index out of range");
    trace_.begin(obs::SpanType::kTaskQueueWait, trace_component_, entry.id,
                 static_cast<double>(entry.priority));
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(pos),
                    std::move(entry));
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  // Entries one scheduling pass may consider, from the head.
  std::size_t scan_limit() const {
    return std::min(entries_.size(), policy_->scan_limit(entries_.size()));
  }

  const QueueEntry& at(std::size_t i) const { return entries_.at(i); }

  QueueEntry take(std::size_t i) {
    QueueEntry entry = std::move(entries_.at(i));
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    trace_.end(obs::SpanType::kTaskQueueWait, trace_component_, entry.id,
               static_cast<double>(entries_.size()));
    return entry;
  }

  QueueEntry pop_front() { return take(0); }

  // Removes the entry with `id`; returns its payload, or nullptr if absent.
  std::shared_ptr<void> remove(const std::string& id) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id != id) continue;
      return take(i).payload;
    }
    return nullptr;
  }

  template <typename Pred>
  void remove_if(Pred pred) {
    if (trace_) {
      for (const auto& entry : entries_) {
        if (pred(entry)) {
          trace_.end(obs::SpanType::kTaskQueueWait, trace_component_,
                     entry.id);
        }
      }
    }
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(), std::move(pred)),
        entries_.end());
  }

  // Empties the queue, returning the entries in queue order.
  std::deque<QueueEntry> drain() {
    if (trace_) {
      for (const auto& entry : entries_) {
        trace_.end(obs::SpanType::kTaskQueueWait, trace_component_,
                   entry.id);
      }
    }
    return std::exchange(entries_, {});
  }

  const std::deque<QueueEntry>& entries() const { return entries_; }

  QueuePolicy& policy() { return *policy_; }
  const QueuePolicy& policy() const { return *policy_; }

  void set_policy(std::unique_ptr<QueuePolicy> policy) {
    FLOT_CHECK(policy != nullptr, "task queue needs a policy");
    policy_ = std::move(policy);
  }

  // Attaches structured tracing: each entry's time in the queue becomes a
  // kTaskQueueWait span under `component` (push opens, take/remove/drain
  // close) — the scheduler-wait slice of the Fig 7 breakdown.
  void set_trace(obs::TraceHandle handle, std::string component) {
    trace_ = handle;
    trace_component_ = std::move(component);
  }

 private:
  std::unique_ptr<QueuePolicy> policy_;
  std::deque<QueueEntry> entries_;
  obs::TraceHandle trace_;
  std::string trace_component_;
};

}  // namespace flotilla::sched
