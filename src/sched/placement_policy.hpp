// PlacementPolicy: how a resource demand maps onto free nodes in a range.
//
// Extracted from platform/placement_algo.cpp, which every backend funneled
// into. Two demand shapes are supported (see docs/scheduling.md):
//
//  - tightly coupled (cores_per_node > 0): whole-chunk placement of
//    cores_per_node cores on each of ceil(cores/cores_per_node) nodes,
//    GPUs spread evenly across the chunk nodes; all-or-nothing.
//  - loosely coupled (cores_per_node == 0): greedy placement across as
//    many nodes as needed; all-or-nothing over the range.
//
// The default first-fit policy is bit-for-bit identical to the legacy
// linear scan (golden traces depend on it); best-fit and GPU-aware packing
// are alternative policies for ablations.
#pragma once

#include <memory>
#include <optional>

#include "platform/cluster.hpp"
#include "platform/placement.hpp"
#include "sched/free_index.hpp"

namespace flotilla::sched {

// Everything a policy may consult while placing. `cursor`, when non-null,
// is the rotating scan origin carried across calls (slurmctld, dragon, the
// agent's DVM path); null means every scan starts at range.first (Flux's
// fluxion matcher). `index`, when non-null, replaces linear scans with
// O(log n) free-capacity queries.
struct PlacementInput {
  platform::Cluster& cluster;
  platform::NodeRange range;
  platform::NodeId* cursor = nullptr;
  const FreeResourceIndex* index = nullptr;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const = 0;

  // Attempts to place `demand`. On success the slices are already
  // allocated on the nodes; on failure nothing is held.
  virtual std::optional<platform::Placement> place(
      const PlacementInput& in, const platform::ResourceDemand& demand) = 0;
};

// First-fit round-robin: take nodes in scan order from the cursor (or
// range.first), wrapping once. The behavior-identical successor of the
// legacy linear scan; uses the index when one is supplied.
class FirstFitPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "first-fit"; }
  std::optional<platform::Placement> place(
      const PlacementInput& in,
      const platform::ResourceDemand& demand) override;
};

// Best-fit packing: repeatedly take the qualifying node with the least
// free capacity, concentrating small tasks on already-busy nodes so whole
// nodes stay free for tightly coupled chunks. Position-independent: the
// cursor is ignored. O(nodes) per chunk — an ablation policy, not the hot
// default.
class BestFitPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "best-fit"; }
  std::optional<platform::Placement> place(
      const PlacementInput& in,
      const platform::ResourceDemand& demand) override;
};

// GPU-aware packing: CPU-only demands prefer nodes with the fewest free
// GPUs (keeping GPU capacity unfragmented for accelerated tasks), GPU
// demands prefer nodes with the most. Position-independent; O(nodes) per
// chunk.
class GpuPackPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "gpu-pack"; }
  std::optional<platform::Placement> place(
      const PlacementInput& in,
      const platform::ResourceDemand& demand) override;
};

enum class PlacementPolicyKind { kFirstFit, kBestFit, kGpuPack };

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind);

// The legacy linear scan, relocated from platform/placement_algo.cpp and
// kept as the reference implementation the indexed first-fit path is
// property-tested against (tests/sched_test.cpp).
std::optional<platform::Placement> linear_try_place(
    platform::Cluster& cluster, platform::NodeRange range,
    const platform::ResourceDemand& demand,
    platform::NodeId* cursor = nullptr);

}  // namespace flotilla::sched
