#include "sched/queue.hpp"

#include <algorithm>

namespace flotilla::sched {

std::size_t FifoPolicy::insertion_index(const std::deque<QueueEntry>& entries,
                                        const QueueEntry& entry) const {
  (void)entry;
  return entries.size();
}

std::size_t FifoPolicy::scan_limit(std::size_t queue_size) const {
  (void)queue_size;
  return 1;
}

std::size_t PriorityFifoPolicy::insertion_index(
    const std::deque<QueueEntry>& entries, const QueueEntry& entry) const {
  // The queue is kept sorted by non-increasing priority, so the insertion
  // point is a binary search — O(log n) even with paper-scale backlogs of
  // 200k+ jobs. upper_bound places equal priorities after their elders
  // (the FIFO tie-break).
  const auto pos = std::upper_bound(
      entries.begin(), entries.end(), entry.priority,
      [](int priority, const QueueEntry& queued) {
        return queued.priority < priority;
      });
  return static_cast<std::size_t>(pos - entries.begin());
}

std::size_t PriorityFifoPolicy::scan_limit(std::size_t queue_size) const {
  (void)queue_size;
  return 1;
}

std::size_t BackfillPolicy::scan_limit(std::size_t queue_size) const {
  return std::min(queue_size, static_cast<std::size_t>(depth_));
}

}  // namespace flotilla::sched
