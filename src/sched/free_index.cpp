#include "sched/free_index.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace flotilla::sched {

FreeResourceIndex::FreeResourceIndex(platform::Cluster& cluster,
                                     platform::NodeRange range)
    : cluster_(cluster), range_(range) {
  FLOT_CHECK(range.count >= 1, "free index needs a non-empty range");
  FLOT_CHECK(range.first >= 0 && range.end() <= cluster.size(),
             "free index range exceeds cluster: end=", range.end());
  while (leaves_ < range.count) leaves_ *= 2;
  max_cores_.assign(static_cast<std::size_t>(2 * leaves_), 0);
  max_gpus_.assign(static_cast<std::size_t>(2 * leaves_), 0);
  for (int i = 0; i < range.count; ++i) {
    const auto& node = cluster_.node(range.first + i);
    max_cores_[static_cast<std::size_t>(leaves_ + i)] = node.free_cores();
    max_gpus_[static_cast<std::size_t>(leaves_ + i)] = node.free_gpus();
  }
  for (int seg = leaves_ - 1; seg >= 1; --seg) {
    max_cores_[static_cast<std::size_t>(seg)] =
        std::max(max_cores_[static_cast<std::size_t>(2 * seg)],
                 max_cores_[static_cast<std::size_t>(2 * seg + 1)]);
    max_gpus_[static_cast<std::size_t>(seg)] =
        std::max(max_gpus_[static_cast<std::size_t>(2 * seg)],
                 max_gpus_[static_cast<std::size_t>(2 * seg + 1)]);
  }
  cluster_.add_observer(this);
}

FreeResourceIndex::~FreeResourceIndex() { cluster_.remove_observer(this); }

void FreeResourceIndex::node_changed(platform::NodeId node) {
  if (!range_.contains(node)) return;
  const auto& state = cluster_.node(node);
  int seg = leaves_ + (node - range_.first);
  max_cores_[static_cast<std::size_t>(seg)] = state.free_cores();
  max_gpus_[static_cast<std::size_t>(seg)] = state.free_gpus();
  for (seg /= 2; seg >= 1; seg /= 2) {
    max_cores_[static_cast<std::size_t>(seg)] =
        std::max(max_cores_[static_cast<std::size_t>(2 * seg)],
                 max_cores_[static_cast<std::size_t>(2 * seg + 1)]);
    max_gpus_[static_cast<std::size_t>(seg)] =
        std::max(max_gpus_[static_cast<std::size_t>(2 * seg)],
                 max_gpus_[static_cast<std::size_t>(2 * seg + 1)]);
  }
}

std::optional<platform::NodeId> FreeResourceIndex::find_any(
    platform::NodeId from, platform::NodeId limit, bool need_cores,
    bool need_gpus) const {
  if (!need_cores && !need_gpus) return std::nullopt;
  const int lo = std::max(0, from - range_.first);
  const int hi = std::min(range_.count, limit - range_.first);
  if (lo >= hi) return std::nullopt;
  const int found =
      find_any_impl(1, 0, leaves_, lo, hi, need_cores, need_gpus);
  if (found < 0) return std::nullopt;
  return range_.first + found;
}

int FreeResourceIndex::find_any_impl(int seg, int seg_lo, int seg_hi, int lo,
                                     int hi, bool need_cores,
                                     bool need_gpus) const {
  // A segment qualifies iff some node in it has a free unit of a resource
  // the demand still needs; the disjunction makes segment maxima exact, so
  // the left-first descent touches O(log n) segments.
  const bool may_match =
      (need_cores && max_cores_[static_cast<std::size_t>(seg)] > 0) ||
      (need_gpus && max_gpus_[static_cast<std::size_t>(seg)] > 0);
  if (seg_hi <= lo || hi <= seg_lo || !may_match) return -1;
  if (seg_hi - seg_lo == 1) return seg_lo;
  const int mid = seg_lo + (seg_hi - seg_lo) / 2;
  const int left =
      find_any_impl(2 * seg, seg_lo, mid, lo, hi, need_cores, need_gpus);
  if (left >= 0) return left;
  return find_any_impl(2 * seg + 1, mid, seg_hi, lo, hi, need_cores,
                       need_gpus);
}

std::optional<platform::NodeId> FreeResourceIndex::find_fit(
    platform::NodeId from, platform::NodeId limit, int cores,
    int gpus) const {
  const int lo = std::max(0, from - range_.first);
  const int hi = std::min(range_.count, limit - range_.first);
  if (lo >= hi) return std::nullopt;
  const int found = find_fit_impl(1, 0, leaves_, lo, hi, cores, gpus);
  if (found < 0) return std::nullopt;
  return range_.first + found;
}

int FreeResourceIndex::find_fit_impl(int seg, int seg_lo, int seg_hi, int lo,
                                     int hi, int cores, int gpus) const {
  // Conjunctive pruning: the cores and gpus maxima may come from different
  // nodes, so a passing segment is only a candidate — leaves decide. The
  // descent still visits nodes in ascending order, preserving the legacy
  // scan order exactly.
  const bool may_match =
      max_cores_[static_cast<std::size_t>(seg)] >= cores &&
      max_gpus_[static_cast<std::size_t>(seg)] >= gpus;
  if (seg_hi <= lo || hi <= seg_lo || !may_match) return -1;
  if (seg_hi - seg_lo == 1) return seg_lo;
  const int mid = seg_lo + (seg_hi - seg_lo) / 2;
  const int left = find_fit_impl(2 * seg, seg_lo, mid, lo, hi, cores, gpus);
  if (left >= 0) return left;
  return find_fit_impl(2 * seg + 1, mid, seg_hi, lo, hi, cores, gpus);
}

}  // namespace flotilla::sched
