// FreeResourceIndex: a max-free-capacity segment tree over a node range.
//
// The legacy placement path answered "next node with free cores/GPUs" by
// scanning nodes linearly — O(nodes) per placement attempt, which at the
// paper's Frontier scale (9,408 nodes, up to 229,376 tasks) puts the
// control plane on an O(nodes * tasks) path. The index keeps, for every
// binary segment of the range, the maximum free core count and maximum
// free GPU count of any node inside it, so a qualifying node is found by
// descending the tree:
//
//  - find_any (node with >0 free cores / >0 free GPUs, whichever the
//    demand still needs): exact O(log n) — a segment whose max passes the
//    disjunctive test is guaranteed to contain a qualifying node.
//  - find_fit (node with >= c cores AND >= g GPUs, the chunked multi-node
//    path): pruned left-first descent. Segment maxima can over-promise the
//    conjunction, so the worst case is linear, but pruning keeps typical
//    placements near O(log n) and the scan order identical to the legacy
//    linear walk.
//
// Updates are incremental: the index subscribes to Cluster's observer hook
// and refreshes one root-to-leaf path, O(log n), on every allocate or
// release — including allocations made behind the placer's back (tests,
// overlapping spans).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "platform/cluster.hpp"
#include "platform/types.hpp"

namespace flotilla::sched {

class FreeResourceIndex : public platform::Cluster::Observer {
 public:
  FreeResourceIndex(platform::Cluster& cluster, platform::NodeRange range);
  ~FreeResourceIndex() override;

  FreeResourceIndex(const FreeResourceIndex&) = delete;
  FreeResourceIndex& operator=(const FreeResourceIndex&) = delete;

  platform::NodeRange range() const { return range_; }

  // Cluster::Observer: refresh the changed node's root-to-leaf path.
  void node_changed(platform::NodeId node) override;

  // First node id in [from, limit) with free cores (if need_cores) or free
  // GPUs (if need_gpus); nullopt if none. Exact O(log n).
  std::optional<platform::NodeId> find_any(platform::NodeId from,
                                           platform::NodeId limit,
                                           bool need_cores,
                                           bool need_gpus) const;

  // First node id in [from, limit) with free_cores >= cores and
  // free_gpus >= gpus; nullopt if none. Pruned descent (see header note).
  std::optional<platform::NodeId> find_fit(platform::NodeId from,
                                           platform::NodeId limit, int cores,
                                           int gpus) const;

  // Segment maxima over the whole range (white-box test access).
  int max_free_cores() const { return max_cores_[1]; }
  int max_free_gpus() const { return max_gpus_[1]; }

 private:
  int find_any_impl(int seg, int seg_lo, int seg_hi, int lo, int hi,
                    bool need_cores, bool need_gpus) const;
  int find_fit_impl(int seg, int seg_lo, int seg_hi, int lo, int hi,
                    int cores, int gpus) const;

  platform::Cluster& cluster_;
  platform::NodeRange range_;
  int leaves_ = 1;  // power-of-two leaf capacity >= range.count
  // 1-rooted binary heap layout; index 0 unused. Leaves beyond range.count
  // hold zero capacity so they never match.
  std::vector<int> max_cores_;
  std::vector<int> max_gpus_;
};

}  // namespace flotilla::sched
