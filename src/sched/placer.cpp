#include "sched/placer.hpp"

#include "util/error.hpp"

namespace flotilla::sched {

Placer::Placer(platform::Cluster& cluster, platform::NodeRange range,
               PlacerOptions options)
    : cluster_(cluster),
      range_(range),
      options_(options),
      policy_(make_placement_policy(options.policy)),
      cursor_(range.first) {
  FLOT_CHECK(range.count >= 1, "placer needs a non-empty range");
  FLOT_CHECK(range.end() <= cluster.size(),
             "placer range exceeds cluster: end=", range.end());
  if (options_.use_index) {
    index_ = std::make_unique<FreeResourceIndex>(cluster_, range_);
  }
}

std::optional<platform::Placement> Placer::place(
    const platform::ResourceDemand& demand) {
  ++stats_.attempts;
  PlacementInput in{cluster_, range_,
                    options_.rotate_cursor ? &cursor_ : nullptr,
                    index_.get()};
  auto placement = policy_->place(in, demand);
  placement ? ++stats_.placed : ++stats_.rejected;
  trace_.instant(obs::SpanType::kPlacementAttempt, trace_component_, "",
                 placement ? 1.0 : 0.0);
  return placement;
}

void Placer::release(const platform::Placement& placement) {
  cluster_.release(placement);
}

}  // namespace flotilla::sched
