// Placer: the shared placement front-end every backend scheduler calls.
//
// Owns the placement policy, the rotating cursor (when the call site wants
// round-robin spreading) and the FreeResourceIndex, and keeps simple
// attempt counters so benches can report placement attempts/sec. One
// Placer per scheduling call site: flux::Instance (fixed origin, like
// fluxion), Slurmctld, dragon::Runtime and the agent's external-placement
// path (all rotating).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "obs/tracer.hpp"
#include "platform/cluster.hpp"
#include "platform/placement.hpp"
#include "sched/free_index.hpp"
#include "sched/placement_policy.hpp"

namespace flotilla::sched {

struct PlacerOptions {
  PlacementPolicyKind policy = PlacementPolicyKind::kFirstFit;
  // Rotate the scan origin past the last allocation so successive small
  // tasks spread across the range. Off: every scan starts at range.first
  // (Flux's fluxion matcher rescans its partition from the top).
  bool rotate_cursor = true;
  // Maintain the O(log n) free-resource index. Off: the first-fit policy
  // falls back to the legacy linear scan (reference/bench mode).
  bool use_index = true;
};

struct PlacerStats {
  std::uint64_t attempts = 0;
  std::uint64_t placed = 0;
  std::uint64_t rejected = 0;
};

class Placer {
 public:
  Placer(platform::Cluster& cluster, platform::NodeRange range,
         PlacerOptions options = {});

  Placer(const Placer&) = delete;
  Placer& operator=(const Placer&) = delete;

  // Attempts to place `demand` within the range. On success the slices
  // are already allocated; on failure nothing is held.
  std::optional<platform::Placement> place(
      const platform::ResourceDemand& demand);

  // Frees every slice of `placement`; the index follows via the cluster's
  // observer hook.
  void release(const platform::Placement& placement);

  platform::NodeRange range() const { return range_; }
  platform::NodeId cursor() const { return cursor_; }
  const PlacerStats& stats() const { return stats_; }
  PlacementPolicy& policy() { return *policy_; }

  // Swaps the placement policy in place (cursor, index and stats are
  // kept). White-box knob for ablations and the fuzz harness; the
  // defaults every backend ships with stay first-fit.
  void set_policy(PlacementPolicyKind kind) {
    options_.policy = kind;
    policy_ = make_placement_policy(kind);
  }

  // Attaches structured tracing: every place() call records a
  // kPlacementAttempt instant under `component` (value: 1 placed,
  // 0 rejected), which OverheadReport turns into attempt counts.
  void set_trace(obs::TraceHandle handle, std::string component) {
    trace_ = handle;
    trace_component_ = std::move(component);
  }

 private:
  platform::Cluster& cluster_;
  platform::NodeRange range_;
  PlacerOptions options_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::unique_ptr<FreeResourceIndex> index_;
  platform::NodeId cursor_;
  PlacerStats stats_;
  obs::TraceHandle trace_;
  std::string trace_component_;
};

}  // namespace flotilla::sched
