#include "sched/placement_policy.hpp"

#include <algorithm>
#include <cstdint>
#include <tuple>

#include "util/error.hpp"

namespace flotilla::sched {

namespace {

using platform::Cluster;
using platform::NodeId;
using platform::NodeRange;
using platform::Placement;
using platform::ResourceDemand;

int chunk_count(const ResourceDemand& demand) {
  auto nodes_needed = static_cast<int>(
      (demand.cores + demand.cores_per_node - 1) / demand.cores_per_node);
  if (nodes_needed == 0 && demand.gpus > 0) nodes_needed = 1;
  return nodes_needed;
}

void advance_cursor(NodeId* cursor, NodeRange range, NodeId id) {
  if (cursor != nullptr) {
    *cursor = range.first + (id - range.first + 1) % range.count;
  }
}

// First-fit via the free index: identical node visit order to the linear
// scan — [base, range.end) then [range.first, base) — with each "next
// qualifying node" answered by an index query instead of a walk.
std::optional<Placement> indexed_first_fit(const PlacementInput& in,
                                           const ResourceDemand& demand) {
  const NodeRange range = in.range;
  const FreeResourceIndex& index = *in.index;
  Placement placement;
  auto fail = [&]() -> std::optional<Placement> {
    in.cluster.release(placement);
    return std::nullopt;
  };
  const NodeId base = in.cursor != nullptr ? *in.cursor : range.first;
  NodeId pos = base;
  NodeId limit = range.end();
  bool wrapped = false;
  auto next_window = [&] {
    // The scan wraps exactly once: after exhausting [base, end) it
    // continues over [range.first, base), like the modular legacy walk.
    wrapped = true;
    pos = range.first;
    limit = base;
  };

  if (demand.cores_per_node > 0) {
    std::int64_t cores_left = demand.cores;
    std::int64_t gpus_left = demand.gpus;
    int chunks_left = chunk_count(demand);
    while (chunks_left > 0) {
      const auto cores_here = static_cast<int>(
          std::min<std::int64_t>(demand.cores_per_node, cores_left));
      const auto gpus_here =
          static_cast<int>((gpus_left + chunks_left - 1) / chunks_left);
      auto id = index.find_fit(pos, limit, cores_here, gpus_here);
      if (!id && !wrapped) {
        next_window();
        id = index.find_fit(pos, limit, cores_here, gpus_here);
      }
      if (!id) return fail();
      auto slice = in.cluster.node(*id).allocate(cores_here, gpus_here);
      FLOT_CHECK(slice.has_value(), "free-index/allocate mismatch on node ",
                 *id);
      placement.slices.push_back(*slice);
      cores_left -= cores_here;
      gpus_left -= gpus_here;
      --chunks_left;
      advance_cursor(in.cursor, range, *id);
      pos = *id + 1;
      if (pos >= limit && !wrapped) next_window();
    }
    if (cores_left > 0 || gpus_left > 0) return fail();
    return placement;
  }

  std::int64_t cores_left = std::max<std::int64_t>(demand.cores, 0);
  std::int64_t gpus_left = std::max<std::int64_t>(demand.gpus, 0);
  while (cores_left > 0 || gpus_left > 0) {
    auto id = index.find_any(pos, limit, cores_left > 0, gpus_left > 0);
    if (!id && !wrapped) {
      next_window();
      id = index.find_any(pos, limit, cores_left > 0, gpus_left > 0);
    }
    if (!id) return fail();
    auto& node = in.cluster.node(*id);
    const auto cores_here =
        static_cast<int>(std::min<std::int64_t>(node.free_cores(), cores_left));
    const auto gpus_here =
        static_cast<int>(std::min<std::int64_t>(node.free_gpus(), gpus_left));
    auto slice = node.allocate(cores_here, gpus_here);
    FLOT_CHECK(slice.has_value(), "free-index/allocate mismatch on node ",
               *id);
    placement.slices.push_back(*slice);
    cores_left -= cores_here;
    gpus_left -= gpus_here;
    advance_cursor(in.cursor, range, *id);
    pos = *id + 1;
    if (pos >= limit && !wrapped) next_window();
  }
  return placement;
}

// Shared skeleton for the packing policies: place chunk by chunk (or unit
// by unit), each time choosing the candidate node with the smallest
// ordering key. `key` must be strictly ordering-stable (ties broken by
// node id) so runs stay deterministic.
template <typename Qualifies, typename Key>
std::optional<NodeId> select_node(const Cluster& cluster, NodeRange range,
                                  Qualifies qualifies, Key key) {
  std::optional<NodeId> best;
  std::tuple<int, int, NodeId> best_key{};
  for (NodeId id = range.first; id < range.end(); ++id) {
    const auto& node = cluster.node(id);
    if (!qualifies(node)) continue;
    const auto candidate_key = key(node, id);
    if (!best || candidate_key < best_key) {
      best = id;
      best_key = candidate_key;
    }
  }
  return best;
}

template <typename Key>
std::optional<Placement> place_by_key(const PlacementInput& in,
                                      const ResourceDemand& demand,
                                      Key key) {
  Placement placement;
  auto fail = [&]() -> std::optional<Placement> {
    in.cluster.release(placement);
    return std::nullopt;
  };

  if (demand.cores_per_node > 0) {
    std::int64_t cores_left = demand.cores;
    std::int64_t gpus_left = demand.gpus;
    int chunks_left = chunk_count(demand);
    while (chunks_left > 0) {
      const auto cores_here = static_cast<int>(
          std::min<std::int64_t>(demand.cores_per_node, cores_left));
      const auto gpus_here =
          static_cast<int>((gpus_left + chunks_left - 1) / chunks_left);
      const auto id = select_node(
          in.cluster, in.range,
          [&](const platform::Node& node) {
            return node.free_cores() >= cores_here &&
                   node.free_gpus() >= gpus_here;
          },
          key);
      if (!id) return fail();
      auto slice = in.cluster.node(*id).allocate(cores_here, gpus_here);
      FLOT_CHECK(slice.has_value(), "qualified node refused allocation");
      placement.slices.push_back(*slice);
      cores_left -= cores_here;
      gpus_left -= gpus_here;
      --chunks_left;
    }
    if (cores_left > 0 || gpus_left > 0) return fail();
    return placement;
  }

  std::int64_t cores_left = std::max<std::int64_t>(demand.cores, 0);
  std::int64_t gpus_left = std::max<std::int64_t>(demand.gpus, 0);
  while (cores_left > 0 || gpus_left > 0) {
    const auto id = select_node(
        in.cluster, in.range,
        [&](const platform::Node& node) {
          return (cores_left > 0 && node.free_cores() > 0) ||
                 (gpus_left > 0 && node.free_gpus() > 0);
        },
        key);
    if (!id) return fail();
    auto& node = in.cluster.node(*id);
    const auto cores_here =
        static_cast<int>(std::min<std::int64_t>(node.free_cores(), cores_left));
    const auto gpus_here =
        static_cast<int>(std::min<std::int64_t>(node.free_gpus(), gpus_left));
    auto slice = node.allocate(cores_here, gpus_here);
    FLOT_CHECK(slice.has_value(), "qualified node refused allocation");
    placement.slices.push_back(*slice);
    cores_left -= cores_here;
    gpus_left -= gpus_here;
  }
  return placement;
}

}  // namespace

std::optional<Placement> FirstFitPolicy::place(const PlacementInput& in,
                                               const ResourceDemand& demand) {
  if (in.index != nullptr) return indexed_first_fit(in, demand);
  return linear_try_place(in.cluster, in.range, demand, in.cursor);
}

std::optional<Placement> BestFitPolicy::place(const PlacementInput& in,
                                              const ResourceDemand& demand) {
  return place_by_key(in, demand,
                      [](const platform::Node& node, NodeId id) {
                        return std::tuple<int, int, NodeId>(
                            node.free_cores(), node.free_gpus(), id);
                      });
}

std::optional<Placement> GpuPackPolicy::place(const PlacementInput& in,
                                              const ResourceDemand& demand) {
  const bool wants_gpus = demand.gpus > 0;
  return place_by_key(
      in, demand, [wants_gpus](const platform::Node& node, NodeId id) {
        // CPU-only work drains GPU-poor nodes first; GPU work gravitates
        // to GPU-rich nodes. Ties fall back to ascending node order.
        const int gpu_key =
            wants_gpus ? -node.free_gpus() : node.free_gpus();
        return std::tuple<int, int, NodeId>(gpu_key, node.free_cores(), id);
      });
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      return std::make_unique<FirstFitPolicy>();
    case PlacementPolicyKind::kBestFit:
      return std::make_unique<BestFitPolicy>();
    case PlacementPolicyKind::kGpuPack:
      return std::make_unique<GpuPackPolicy>();
  }
  util::raise("unknown placement policy kind");
}

std::optional<Placement> linear_try_place(Cluster& cluster, NodeRange range,
                                          const ResourceDemand& demand,
                                          NodeId* cursor) {
  Placement placement;
  auto rollback = [&] { cluster.release(placement); };
  const NodeId base = cursor != nullptr ? *cursor : range.first;
  if (demand.cores_per_node > 0) {
    // Tightly coupled: all-or-nothing whole-chunk placement. The scan
    // honors the rotating cursor exactly like the loose path below, so
    // multi-node steps no longer pile onto the low-numbered nodes.
    std::int64_t cores_left = demand.cores;
    std::int64_t gpus_left = demand.gpus;
    int chunks_left = chunk_count(demand);
    for (int i = 0; i < range.count && chunks_left > 0; ++i) {
      const NodeId id = range.first + (base - range.first + i) % range.count;
      auto& node = cluster.node(id);
      const auto cores_here = static_cast<int>(
          std::min<std::int64_t>(demand.cores_per_node, cores_left));
      const auto gpus_here =
          static_cast<int>((gpus_left + chunks_left - 1) / chunks_left);
      auto slice = node.allocate(cores_here, gpus_here);
      if (!slice) continue;
      placement.slices.push_back(*slice);
      cores_left -= cores_here;
      gpus_left -= gpus_here;
      --chunks_left;
      advance_cursor(cursor, range, id);
    }
    if (chunks_left > 0 || cores_left > 0 || gpus_left > 0) {
      rollback();
      return std::nullopt;
    }
    return placement;
  }
  std::int64_t cores_left = std::max<std::int64_t>(demand.cores, 0);
  std::int64_t gpus_left = std::max<std::int64_t>(demand.gpus, 0);
  for (int i = 0; i < range.count; ++i) {
    if (cores_left == 0 && gpus_left == 0) break;
    const NodeId id = range.first + (base - range.first + i) % range.count;
    auto& node = cluster.node(id);
    const auto cores_here =
        static_cast<int>(std::min<std::int64_t>(node.free_cores(), cores_left));
    const auto gpus_here =
        static_cast<int>(std::min<std::int64_t>(node.free_gpus(), gpus_left));
    if (cores_here == 0 && gpus_here == 0) continue;
    auto slice = node.allocate(cores_here, gpus_here);
    FLOT_CHECK(slice.has_value(), "free-count/allocate mismatch on node ",
               id);
    placement.slices.push_back(*slice);
    cores_left -= cores_here;
    gpus_left -= gpus_here;
    advance_cursor(cursor, range, id);
  }
  if (cores_left > 0 || gpus_left > 0) {
    rollback();
    return std::nullopt;
  }
  return placement;
}

}  // namespace flotilla::sched
