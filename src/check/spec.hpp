// ScenarioSpec: the complete, serializable description of one fuzz run.
//
// FoundationDB-style simulation testing rests on one property: a failing
// run must be reproducible from a short, copy-pasteable artifact. Every
// knob the generator can turn — cluster size, backend mix, workload shape,
// scheduler policies, fault injections — lives in this struct, and
// `to_string()`/`parse()` round-trip it through a single-line
// `key=value;key=value` string so `flotilla-fuzz --replay '<spec>'`
// re-executes the exact scenario bit-for-bit (see docs/correctness.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pilot.hpp"

namespace flotilla::check {

// One mid-run fault injection, timed relative to pilot readiness.
struct FaultSpec {
  enum class Kind {
    kCrash,        // crash instance/runtime `index` of backend `backend`
    kCancelStorm,  // cancel `count` tasks spread across the submitted set
  };

  Kind kind = Kind::kCrash;
  double time = 1.0;    // virtual seconds after the pilot reports ready
  std::string backend;  // kCrash: "flux" | "dragon" | "prrte"
  int index = 0;        // kCrash: which instance/runtime
  int count = 0;        // kCancelStorm: how many tasks to cancel
};

struct ScenarioSpec {
  std::uint64_t seed = 42;
  int nodes = 4;

  // Engine sharding (docs/sharding.md). `shards` partitions the Session
  // engine's event calendar — the run must be bit-identical to shards=1.
  // `threads` drives the threads dimension in run_with_oracles(): the
  // engine-level storm oracle, plus — for clean specs — a bare full-stack
  // run at engine_threads = threads that must reach the same terminal
  // state as the monitored serial run (the confinement proofs in
  // analyze/confined.txt are what make that legal).
  int shards = 1;
  int threads = 1;

  std::vector<core::BackendSpec> backends{{"srun"}};

  // Workload shape: "null" | "sleep" | "hetero" | "impeccable".
  std::string workload = "null";
  int tasks = 64;
  double duration = 0.0;   // sleep payload / heterogeneous base duration
  std::int64_t cores = 1;  // per-task cores (sleep workload)
  std::int64_t gpus = 0;   // per-task GPUs (sleep workload)
  double fail_probability = 0.0;
  int max_retries = 0;

  // Scheduler knobs.
  std::string router = "static";        // "static" | "adaptive"
  std::string placement = "first-fit";  // "first-fit"|"best-fit"|"gpu-pack"
  std::string dragon_queue = "fifo";    // "fifo" | "priority"

  // Service-mode ingress dimensions (docs/ingress.md). clients == 0 keeps
  // the classic path (one tmgr.submit of the whole workload up front);
  // clients > 0 routes the same `tasks` budget through IngressService as
  // an arrival process with admission control. `arrival` is the process
  // kind ("poisson" | "diurnal" | "bursty" | "closed"); arrival_param is
  // the open-loop rate [tasks/s] or closed-loop think time [s], 0 = use
  // the ingress defaults. `admit` is the backpressure policy ("reject" |
  // "defer") with a bounded intake queue of admit_capacity entries.
  int clients = 0;
  std::string arrival = "poisson";
  double arrival_param = 0.0;
  std::string admit = "reject";
  int admit_capacity = 256;

  std::vector<FaultSpec> faults;

  // Crash/recovery oracle dimensions (docs/recovery.md). crash_at > 0
  // kills the controller once its durable journal holds that many records;
  // run_with_oracles() then recovers by journal replay and demands the
  // recovered run be byte-equivalent to the uninterrupted one. recover =
  // false downgrades the oracle to "the surviving journal prefix parses
  // cleanly" (survive-only, PR 3 semantics). These are oracle dimensions,
  // not run dimensions: the journal header records the spec with both
  // reset to defaults, so every crash point of a scenario shares one
  // uninterrupted reference journal.
  std::uint64_t crash_at = 0;
  bool recover = true;

  // Deliberate defect injection, used to prove the checkers catch real
  // bugs: "none" | "overcommit" (a model of a double-booking scheduler
  // that claims cores behind every placer's back and never releases) |
  // "state-loss" (a recovery path that forgets the pending fault schedule
  // — only observable through the crash/recover oracle).
  std::string bug = "none";

  // Single-line `key=value;...` form; parse(to_string(s)) == s.
  std::string to_string() const;
  static ScenarioSpec parse(const std::string& text);
};

}  // namespace flotilla::check
