#include "check/spec.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace flotilla::check {

namespace {

// %.17g round-trips every binary64 value through text exactly, which is
// what makes a replayed spec bit-identical to the generated one.
std::string double_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_double(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) util::raise("spec: trailing junk in ", what, ": ", s);
    return v;
  } catch (const std::invalid_argument&) {
    util::raise("spec: bad number for ", what, ": ", s);
  } catch (const std::out_of_range&) {
    util::raise("spec: number out of range for ", what, ": ", s);
  }
}

long long parse_int(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) util::raise("spec: trailing junk in ", what, ": ", s);
    return v;
  } catch (const std::invalid_argument&) {
    util::raise("spec: bad integer for ", what, ": ", s);
  } catch (const std::out_of_range&) {
    util::raise("spec: integer out of range for ", what, ": ", s);
  }
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) util::raise("spec: trailing junk in ", what, ": ", s);
    return v;
  } catch (const std::invalid_argument&) {
    util::raise("spec: bad integer for ", what, ": ", s);
  } catch (const std::out_of_range&) {
    util::raise("spec: integer out of range for ", what, ": ", s);
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

// `type:pP:nN:dD` — partitions, nodes, flux backfill depth; fields after
// the type are optional and keep BackendSpec defaults when absent.
std::string backend_str(const core::BackendSpec& b) {
  std::string out = b.type;
  out += ":p" + std::to_string(b.partitions);
  out += ":n" + std::to_string(b.nodes);
  out += ":d" + std::to_string(b.flux_backfill_depth);
  return out;
}

core::BackendSpec parse_backend(const std::string& token) {
  const auto fields = split(token, ':');
  if (fields.empty() || fields[0].empty()) {
    util::raise("spec: empty backend entry: ", token);
  }
  core::BackendSpec b;
  b.type = fields[0];
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto& f = fields[i];
    if (f.size() < 2) util::raise("spec: bad backend field: ", token);
    const auto value = f.substr(1);
    switch (f[0]) {
      case 'p':
        b.partitions = static_cast<int>(parse_int(value, "partitions"));
        break;
      case 'n':
        b.nodes = static_cast<int>(parse_int(value, "backend nodes"));
        break;
      case 'd':
        b.flux_backfill_depth =
            static_cast<int>(parse_int(value, "backfill depth"));
        break;
      default:
        util::raise("spec: unknown backend field '", f[0], "' in ", token);
    }
  }
  return b;
}

// `crash@T:backend:index` or `cancel@T:count`.
std::string fault_str(const FaultSpec& f) {
  if (f.kind == FaultSpec::Kind::kCrash) {
    return "crash@" + double_str(f.time) + ":" + f.backend + ":" +
           std::to_string(f.index);
  }
  return "cancel@" + double_str(f.time) + ":" + std::to_string(f.count);
}

FaultSpec parse_fault(const std::string& token) {
  const auto at = token.find('@');
  if (at == std::string::npos) util::raise("spec: bad fault entry: ", token);
  const auto kind = token.substr(0, at);
  const auto fields = split(token.substr(at + 1), ':');
  FaultSpec f;
  if (fields.empty()) util::raise("spec: bad fault entry: ", token);
  f.time = parse_double(fields[0], "fault time");
  if (kind == "crash") {
    if (fields.size() != 3) util::raise("spec: bad crash fault: ", token);
    f.kind = FaultSpec::Kind::kCrash;
    f.backend = fields[1];
    f.index = static_cast<int>(parse_int(fields[2], "crash index"));
  } else if (kind == "cancel") {
    if (fields.size() != 2) util::raise("spec: bad cancel fault: ", token);
    f.kind = FaultSpec::Kind::kCancelStorm;
    f.count = static_cast<int>(parse_int(fields[1], "cancel count"));
  } else {
    util::raise("spec: unknown fault kind: ", kind);
  }
  return f;
}

}  // namespace

std::string ScenarioSpec::to_string() const {
  std::string out;
  out += "seed=" + std::to_string(seed);
  out += ";nodes=" + std::to_string(nodes);
  // Emitted only when non-default so pre-sharding spec lines stay stable.
  if (shards != 1) out += ";shards=" + std::to_string(shards);
  if (threads != 1) out += ";threads=" + std::to_string(threads);
  out += ";backends=";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if (i) out += ',';
    out += backend_str(backends[i]);
  }
  out += ";workload=" + workload;
  out += ";tasks=" + std::to_string(tasks);
  out += ";duration=" + double_str(duration);
  out += ";cores=" + std::to_string(cores);
  out += ";gpus=" + std::to_string(gpus);
  out += ";fail=" + double_str(fail_probability);
  out += ";retries=" + std::to_string(max_retries);
  out += ";router=" + router;
  out += ";placement=" + placement;
  out += ";dragon_queue=" + dragon_queue;
  // Emitted only when armed so pre-ingress spec lines stay stable.
  if (clients != 0) {
    out += ";clients=" + std::to_string(clients);
    out += ";arrival=" + arrival + ":" + double_str(arrival_param);
    out += ";admit=" + admit + ":" + std::to_string(admit_capacity);
  }
  if (!faults.empty()) {
    out += ";faults=";
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (i) out += ',';
      out += fault_str(faults[i]);
    }
  }
  // Emitted only when non-default so pre-recovery spec lines stay stable.
  if (crash_at != 0) out += ";crash_at=" + std::to_string(crash_at);
  if (!recover) out += ";recover=0";
  if (bug != "none") out += ";bug=" + bug;
  return out;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  spec.backends.clear();
  for (const auto& pair : split(text, ';')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      util::raise("spec: expected key=value, got: ", pair);
    }
    const auto key = pair.substr(0, eq);
    const auto value = pair.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_u64(value, "seed");
    } else if (key == "nodes") {
      spec.nodes = static_cast<int>(parse_int(value, "nodes"));
    } else if (key == "shards") {
      spec.shards = static_cast<int>(parse_int(value, "shards"));
    } else if (key == "threads") {
      spec.threads = static_cast<int>(parse_int(value, "threads"));
    } else if (key == "backends") {
      for (const auto& token : split(value, ',')) {
        spec.backends.push_back(parse_backend(token));
      }
    } else if (key == "workload") {
      spec.workload = value;
    } else if (key == "tasks") {
      spec.tasks = static_cast<int>(parse_int(value, "tasks"));
    } else if (key == "duration") {
      spec.duration = parse_double(value, "duration");
    } else if (key == "cores") {
      spec.cores = parse_int(value, "cores");
    } else if (key == "gpus") {
      spec.gpus = parse_int(value, "gpus");
    } else if (key == "fail") {
      spec.fail_probability = parse_double(value, "fail");
    } else if (key == "retries") {
      spec.max_retries = static_cast<int>(parse_int(value, "retries"));
    } else if (key == "router") {
      spec.router = value;
    } else if (key == "placement") {
      spec.placement = value;
    } else if (key == "dragon_queue") {
      spec.dragon_queue = value;
    } else if (key == "clients") {
      spec.clients = static_cast<int>(parse_int(value, "clients"));
    } else if (key == "arrival") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        util::raise("spec: arrival must be kind:param, got: ", value);
      }
      spec.arrival = value.substr(0, colon);
      spec.arrival_param =
          parse_double(value.substr(colon + 1), "arrival param");
    } else if (key == "admit") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        util::raise("spec: admit must be policy:capacity, got: ", value);
      }
      spec.admit = value.substr(0, colon);
      spec.admit_capacity = static_cast<int>(
          parse_int(value.substr(colon + 1), "admit capacity"));
    } else if (key == "faults") {
      for (const auto& token : split(value, ',')) {
        spec.faults.push_back(parse_fault(token));
      }
    } else if (key == "crash_at") {
      spec.crash_at = parse_u64(value, "crash_at");
    } else if (key == "recover") {
      spec.recover = parse_int(value, "recover") != 0;
    } else if (key == "bug") {
      spec.bug = value;
    } else {
      util::raise("spec: unknown key: ", key);
    }
  }
  if (spec.backends.empty()) spec.backends.push_back({"srun"});
  return spec;
}

}  // namespace flotilla::check
