// InvariantMonitor: machine-checked correctness properties, audited live.
//
// The monitor hooks the three observation points the runtime exposes —
// Cluster::Observer (every allocate/release), the engine's post-event hook
// (between any two events), and the task transition hook (every lifecycle
// edge) — and re-checks, independently of the code under test:
//
//   conservation   every core/GPU allocated is released; the cluster is
//                  exactly as free at drain as it was at attach time
//   overcommit     no node's free count ever leaves [0, total]
//   state-machine  every task transition follows the legal lifecycle
//                  graph; no skipped, duplicate or post-terminal edges
//   liveness       every submitted task reaches exactly one terminal state
//   monotonic-time virtual time never moves backwards between events
//   index          FreeResourceIndex segment maxima and find_any/find_fit
//                  answers match a ground-truth linear scan (sampled)
//   quiesce        every backend reports quiescent() once the run drains
//
// Violations carry the virtual time and a human-readable detail line; the
// fuzz driver shrinks the scenario around them (src/check/shrinker.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/session.hpp"
#include "core/task.hpp"
#include "core/task_manager.hpp"
#include "sched/free_index.hpp"

namespace flotilla::check {

struct Violation {
  std::string invariant;  // short tag, e.g. "conservation"
  std::string detail;
  sim::Time time = 0.0;

  std::string to_string() const;
};

class InvariantMonitor : public platform::Cluster::Observer {
 public:
  struct Options {
    // Cross-check the free-resource index against a linear ground-truth
    // scan every `coherence_stride` events (0 disables the check).
    int coherence_stride = 512;
    std::size_t max_violations = 32;
  };

  // Two overloads instead of `Options options = {}`: GCC cannot brace-init
  // a nested class with default member initializers in a default argument.
  explicit InvariantMonitor(core::Session& session)
      : InvariantMonitor(session, Options{}) {}
  InvariantMonitor(core::Session& session, Options options);
  ~InvariantMonitor() override;

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  // Installs the task transition hook; call before submitting tasks.
  void watch(core::TaskManager& tmgr);
  // Remembers the agent so finish() can probe backend quiescence.
  void watch_backends(core::Agent& agent);

  // End-of-run audit: conservation, liveness, backend quiescence. Call
  // once, after the event queue drains.
  void finish();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  // platform::Cluster::Observer — fired on every allocate/release.
  void node_changed(platform::NodeId node) override;

 private:
  void post_event();
  void on_transition(const core::Task& task, core::TaskState from,
                     core::TaskState to);
  void check_index_coherence();
  void add(const std::string& invariant, const std::string& detail);

  struct TaskRecord {
    core::TaskState last = core::TaskState::kNew;
    int terminals = 0;
  };

  core::Session& session_;
  Options options_;
  sched::FreeResourceIndex index_;  // independent copy under audit
  core::Agent* agent_ = nullptr;
  // Ordered so finish() reports violations deterministically.
  std::map<std::string, TaskRecord> tasks_;
  std::vector<Violation> violations_;
  std::size_t suppressed_ = 0;
  std::vector<std::int64_t> baseline_free_cores_;
  std::vector<std::int64_t> baseline_free_gpus_;
  sim::Time last_now_ = 0.0;
  std::uint64_t events_seen_ = 0;
  bool finished_ = false;
};

// True iff the lifecycle graph in core/task.hpp permits `from -> to`.
// Duplicated here on purpose: the monitor must not trust the code under
// test (Task::advance) to define legality.
bool legal_transition(core::TaskState from, core::TaskState to);

}  // namespace flotilla::check
