// Scenario runner: executes one ScenarioSpec end-to-end under the
// InvariantMonitor and reports what happened.
//
// One run = one Session + one Pilot (built from the spec's backend mix) +
// one TaskManager submitting the spec's workload, with the spec's fault
// injections scheduled relative to pilot readiness. The run drains the
// event queue under an event budget (a livelock is itself a violation),
// audits the end state, and fingerprints the full trace so two runs of the
// same spec can be compared bit-for-bit (the determinism oracle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/spec.hpp"

namespace flotilla::check {

struct RunOptions {
  // 0 = derive from the task count; exceeding the budget is a violation.
  std::uint64_t max_events = 0;
  // FreeResourceIndex coherence check cadence (0 disables).
  int coherence_stride = 512;
};

struct RunResult {
  bool ready = false;       // pilot reported ready
  std::uint64_t events = 0;
  sim::Time makespan = 0.0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t canceled = 0;
  // FNV-1a over the trace CSV plus every task's final record; identical
  // across runs of the same spec iff the simulation is deterministic.
  std::uint64_t fingerprint = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

RunResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts = {});

// Runs the spec twice and appends a "determinism" violation to the first
// run's result when the fingerprints diverge.
RunResult run_with_oracles(const ScenarioSpec& spec,
                           const RunOptions& opts = {});

}  // namespace flotilla::check
