// Scenario runner: executes one ScenarioSpec end-to-end under the
// InvariantMonitor and reports what happened.
//
// One run = one Session + one Pilot (built from the spec's backend mix) +
// one TaskManager submitting the spec's workload, with the spec's fault
// injections scheduled relative to pilot readiness. The run drains the
// event queue under an event budget (a livelock is itself a violation),
// audits the end state, and fingerprints the full trace so two runs of the
// same spec can be compared bit-for-bit (the determinism oracle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/spec.hpp"
#include "journal/recovery.hpp"

namespace flotilla::check {

struct RunOptions {
  // 0 = derive from the task count; exceeding the budget is a violation.
  std::uint64_t max_events = 0;
  // FreeResourceIndex coherence check cadence (0 disables).
  int coherence_stride = 512;

  // > 1: drain the engine's shard rounds on a worker pool (bare mode).
  // The shared-state confinement proofs (docs/sharding.md, enforced by
  // flotilla-analyze's conf-* passes) make this safe, but the
  // between-events observers — the invariant monitor's post-event hook
  // and the journal scribe — are event-order instruments, so bare mode
  // runs without them and run_with_oracles cross-checks its terminal
  // state against the monitored serial run instead. Incompatible with
  // journal / crash_at / recovery (the runner raises).
  int engine_threads = 1;

  // Durable journal / crash / recovery (docs/recovery.md).
  // Record a journal; the bytes land in RunResult::journal.
  bool journal = false;
  // > 0: simulate a controller crash once the journal holds this many
  // records — the run stops dead (no end record, no end-state audit) and
  // RunResult::crashed is set. Implies journaling.
  std::uint64_t crash_at = 0;
  // Recovery replay: re-execute the journaled run from its header spec,
  // validating every emitted record against this journal prefix. A
  // mismatch or an incomplete replay is a "recovery-divergence" violation.
  // Implies journaling (the recovered journal grows past the prefix into
  // the full uninterrupted byte stream).
  const journal::RecoveryManager* recovery = nullptr;
};

struct RunResult {
  bool ready = false;       // pilot reported ready
  bool crashed = false;     // stopped at an injected crash point
  std::uint64_t events = 0;
  sim::Time makespan = 0.0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t canceled = 0;
  // FNV-1a over the trace CSV plus every task's final record; identical
  // across runs of the same spec iff the simulation is deterministic.
  std::uint64_t fingerprint = 0;
  // Journal bytes (when journaling was requested).
  std::string journal;
  // TaskBackend::restore_summary() per backend at drain, in registration
  // order (journaled runs only; empty on crashed runs).
  std::vector<std::string> backend_summaries;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

RunResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts = {});

// Crash→recover protocol for one crash point (docs/recovery.md):
// re-runs `spec` to the crash (spec.crash_at journal records), chops a
// seeded torn tail off the surviving bytes, recovers by journal replay,
// and compares the recovered run byte-for-byte against `reference` — a
// journaled uninterrupted run of the same spec (opts.journal = true).
// With spec.recover == false only the surviving prefix's integrity is
// checked. Returns the violations found (empty = recovery is exact).
std::vector<Violation> check_recovery(const ScenarioSpec& spec,
                                      const RunResult& reference,
                                      const RunOptions& opts = {});

// Runs the spec twice and appends a "determinism" violation to the first
// run's result when the fingerprints diverge. Specs with crash_at > 0
// additionally run the crash/recover oracle (check_recovery) against the
// first run's journal.
RunResult run_with_oracles(const ScenarioSpec& spec,
                           const RunOptions& opts = {});

}  // namespace flotilla::check
