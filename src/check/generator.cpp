#include "check/generator.hpp"

#include <algorithm>

namespace flotilla::check {

namespace {

constexpr std::int64_t kCoresPerNode = 56;  // frontier_spec()
constexpr std::int64_t kGpusPerNode = 8;

int backend_node_count(const ScenarioSpec& spec, const core::BackendSpec& b) {
  if (b.nodes > 0) return b.nodes;
  // Conservative model of Pilot::build_backends' equal-share split: the
  // floor share is a lower bound on what any flexible backend receives.
  int fixed = 0;
  int flexible = 0;
  for (const auto& other : spec.backends) {
    if (other.nodes > 0) {
      fixed += other.nodes;
    } else {
      ++flexible;
    }
  }
  const int pool = std::max(0, spec.nodes - fixed);
  return std::max(1, flexible > 0 ? pool / flexible : pool);
}

bool crashable(const std::string& type) {
  return type == "flux" || type == "dragon" || type == "prrte";
}

}  // namespace

UnitCaps unit_caps(const ScenarioSpec& spec) {
  UnitCaps caps;
  caps.cores = kCoresPerNode;
  caps.gpus = kGpusPerNode;
  int min_unit = spec.nodes > 0 ? spec.nodes : 1;
  for (const auto& b : spec.backends) {
    const int nodes = backend_node_count(spec, b);
    // Flux and Dragon split their span into independent partitions; a task
    // cannot span partitions, so the smallest partition bounds the demand.
    int unit = nodes;
    if (b.type == "flux" || b.type == "dragon") {
      unit = std::max(1, nodes / std::max(1, b.partitions));
    }
    min_unit = std::min(min_unit, unit);
  }
  caps.nodes = std::max(1, min_unit);
  return caps;
}

ScenarioSpec generate_scenario(sim::RngStream& rng) {
  return generate_scenario(rng, GeneratorOptions{});
}

ScenarioSpec generate_scenario(sim::RngStream& rng,
                               const GeneratorOptions& options) {
  ScenarioSpec spec;
  spec.seed = rng.next_u64() >> 1;  // headroom for derived stream salts
  spec.backends.clear();

  // Backend mix: the paper's single-runtime configurations plus the two
  // hybrid lanes (Experiment flux+dragon and srun+dragon).
  static const std::vector<std::vector<std::string>> kMixes = {
      {"srun"},           {"flux"},
      {"dragon"},         {"prrte"},
      {"flux", "dragon"}, {"srun", "dragon"}};
  const auto& mix =
      kMixes[static_cast<std::size_t>(rng.uniform_int(0, 5))];

  const int min_nodes = static_cast<int>(mix.size());
  spec.nodes = static_cast<int>(rng.uniform_int(min_nodes, 12));

  // Explicit per-backend node counts so replay and unit_caps are exact.
  int remaining = spec.nodes;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    core::BackendSpec b;
    b.type = mix[i];
    const int left = static_cast<int>(mix.size()) - static_cast<int>(i) - 1;
    b.nodes = (left == 0)
                  ? remaining
                  : static_cast<int>(rng.uniform_int(1, remaining - left));
    remaining -= b.nodes;
    if (b.type == "flux") {
      b.partitions = static_cast<int>(rng.uniform_int(1, std::min(b.nodes, 3)));
      static const int kDepths[] = {1, 2, 8, 64};
      b.flux_backfill_depth = kDepths[rng.uniform_int(0, 3)];
    } else if (b.type == "dragon") {
      b.partitions = static_cast<int>(rng.uniform_int(1, std::min(b.nodes, 2)));
    }
    spec.backends.push_back(std::move(b));
  }

  const auto caps = unit_caps(spec);
  const bool has_dragon =
      std::any_of(spec.backends.begin(), spec.backends.end(),
                  [](const auto& b) { return b.type == "dragon"; });

  // Workload shape. Functions only appear via hetero/impeccable mixtures,
  // and only when Dragon (the sole function executor) is in the mix — the
  // runner's workload builder enforces that using spec.backends.
  const double shape = rng.uniform();
  if (shape < 0.30) {
    spec.workload = "null";
  } else if (shape < 0.60) {
    spec.workload = "sleep";
  } else if (shape < 0.85) {
    spec.workload = "hetero";
  } else {
    spec.workload = "impeccable";
  }

  spec.tasks = static_cast<int>(rng.uniform_int(10, 120));
  spec.duration = spec.workload == "null" ? 0.0 : rng.uniform(0.1, 8.0);

  // Per-task demand (sleep workload), capped to the smallest schedulable
  // unit so no backend is handed an unsatisfiable task.
  const double size = rng.uniform();
  if (size < 0.6) {
    spec.cores = 1;
  } else if (size < 0.9) {
    spec.cores = rng.uniform_int(2, 8);
  } else {
    spec.cores = caps.cores;  // full node
  }
  spec.gpus = rng.bernoulli(0.25) ? rng.uniform_int(1, 4) : 0;

  spec.fail_probability = rng.bernoulli(0.4) ? rng.uniform(0.01, 0.3) : 0.0;
  spec.max_retries = static_cast<int>(rng.uniform_int(0, 2));

  spec.router = rng.bernoulli(0.3) ? "adaptive" : "static";
  const double place = rng.uniform();
  spec.placement =
      place < 0.5 ? "first-fit" : (place < 0.75 ? "best-fit" : "gpu-pack");
  spec.dragon_queue = (has_dragon && rng.bernoulli(0.3)) ? "priority" : "fifo";

  // Mid-run faults: instance crashes (only backends with a crash surface)
  // and cancellation storms.
  std::vector<std::string> crash_targets;
  for (const auto& b : spec.backends) {
    if (crashable(b.type)) crash_targets.push_back(b.type);
  }
  const int fault_count = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < fault_count; ++i) {
    FaultSpec fault;
    if (!crash_targets.empty() && rng.bernoulli(0.6)) {
      fault.kind = FaultSpec::Kind::kCrash;
      fault.time = rng.uniform(0.5, 30.0);
      fault.backend = crash_targets[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(crash_targets.size()) -
                                 1))];
      int partitions = 1;
      for (const auto& b : spec.backends) {
        if (b.type == fault.backend) partitions = std::max(1, b.partitions);
      }
      fault.index = static_cast<int>(rng.uniform_int(0, partitions - 1));
    } else {
      fault.kind = FaultSpec::Kind::kCancelStorm;
      fault.time = rng.uniform(0.1, 10.0);
      fault.count = static_cast<int>(rng.uniform_int(1, spec.tasks / 2 + 1));
    }
    spec.faults.push_back(fault);
  }

  // Engine sharding: half the scenarios run the full stack on a
  // partitioned calendar (bit-identical to shards=1 by construction), and
  // the threads dimension feeds the engine-level storm oracle in
  // run_with_oracles() plus — for clean specs — the bare full-stack
  // threaded run checked by the thread-invariance oracle.
  if (rng.bernoulli(0.5)) {
    static const int kShardCounts[] = {2, 3, 4};
    spec.shards = kShardCounts[rng.uniform_int(0, 2)];
  }
  if (rng.bernoulli(0.5)) {
    static const int kThreadCounts[] = {2, 4};
    spec.threads = kThreadCounts[rng.uniform_int(0, 1)];
  }

  // Service-mode ingress (docs/ingress.md): about 30% of the scenarios
  // (all of them under force_ingress) route the task budget through
  // IngressService as an arrival process with admission control. The
  // client population spans 1 to 10^6 — open-loop arrivals superpose into
  // one aggregate stream, so a million clients costs O(1) state. Zero
  // admission capacity is deliberately in-range: it must reject every
  // offer while conservation still holds.
  if (options.force_ingress || rng.bernoulli(0.30)) {
    const double kind = rng.uniform();
    if (kind < 0.40) {
      spec.arrival = "poisson";
    } else if (kind < 0.60) {
      spec.arrival = "diurnal";
    } else if (kind < 0.80) {
      spec.arrival = "bursty";
    } else {
      spec.arrival = "closed";
    }
    if (spec.arrival == "closed") {
      spec.clients = static_cast<int>(rng.uniform_int(2, 64));
      spec.arrival_param = rng.uniform(0.02, 0.5);  // think time [s]
    } else {
      static const int kPopulations[] = {1, 16, 1000, 50000, 1000000};
      spec.clients = kPopulations[rng.uniform_int(0, 4)];
      spec.arrival_param = rng.uniform(100.0, 2500.0);  // rate [tasks/s]
    }
    spec.admit = rng.bernoulli(0.5) ? "defer" : "reject";
    const double cap = rng.uniform();
    if (cap < 0.15) {
      spec.admit_capacity = 0;
    } else if (cap < 0.50) {
      spec.admit_capacity = static_cast<int>(rng.uniform_int(1, 16));
    } else {
      spec.admit_capacity = static_cast<int>(rng.uniform_int(32, 512));
    }
  }

  // Crash/recovery (docs/recovery.md): about a third of the scenarios
  // kill the controller mid-campaign at a seeded journal-record index and
  // must recover by replay into a byte-equivalent run. The index range is
  // sized so most crashes land mid-workload; overshooting the run's total
  // record count degenerates into a full-journal validation replay, which
  // is also worth fuzzing. A sliver of survive-only scenarios keeps the
  // prefix-integrity path (recover=0) exercised.
  if (rng.bernoulli(0.35)) {
    spec.crash_at =
        static_cast<std::uint64_t>(rng.uniform_int(1, 8ll * spec.tasks));
    spec.recover = !rng.bernoulli(0.1);
  }

  return spec;
}

}  // namespace flotilla::check
