#include "check/invariants.hpp"

#include <algorithm>
#include <optional>

#include "util/strfmt.hpp"

namespace flotilla::check {

using core::TaskState;

std::string Violation::to_string() const {
  return util::cat("[", invariant, "] t=", time, " ", detail);
}

bool legal_transition(TaskState from, TaskState to) {
  // kFailed / kCanceled are reachable from any non-final state.
  if (core::is_final(from)) return false;
  if (to == TaskState::kFailed || to == TaskState::kCanceled) return true;
  switch (from) {
    case TaskState::kNew:
      return to == TaskState::kTmgrScheduling;
    case TaskState::kTmgrScheduling:
      return to == TaskState::kStagingInput ||
             to == TaskState::kAgentScheduling;
    case TaskState::kStagingInput:
      return to == TaskState::kAgentScheduling;
    case TaskState::kAgentScheduling:
      return to == TaskState::kExecutorPending;
    case TaskState::kExecutorPending:
      // Retry edge: a failed launch re-enters agent scheduling.
      return to == TaskState::kRunning || to == TaskState::kAgentScheduling;
    case TaskState::kRunning:
      return to == TaskState::kStagingOutput || to == TaskState::kDone ||
             to == TaskState::kAgentScheduling;
    case TaskState::kStagingOutput:
      return to == TaskState::kDone;
    case TaskState::kDone:
    case TaskState::kFailed:
    case TaskState::kCanceled:
      return false;
  }
  return false;
}

InvariantMonitor::InvariantMonitor(core::Session& session, Options options)
    : session_(session),
      options_(options),
      index_(session.cluster(), session.cluster().all_nodes()) {
  auto& cluster = session_.cluster();
  baseline_free_cores_.reserve(static_cast<std::size_t>(cluster.size()));
  baseline_free_gpus_.reserve(static_cast<std::size_t>(cluster.size()));
  for (platform::NodeId n = 0; n < cluster.size(); ++n) {
    baseline_free_cores_.push_back(cluster.node(n).free_cores());
    baseline_free_gpus_.push_back(cluster.node(n).free_gpus());
  }
  cluster.add_observer(this);
  session_.engine().set_post_event_hook([this] { post_event(); });
}

InvariantMonitor::~InvariantMonitor() {
  session_.engine().set_post_event_hook({});
  session_.cluster().remove_observer(this);
}

void InvariantMonitor::watch(core::TaskManager& tmgr) {
  tmgr.on_transition(
      [this](const core::Task& task, TaskState from, TaskState to) {
        on_transition(task, from, to);
      });
}

void InvariantMonitor::watch_backends(core::Agent& agent) { agent_ = &agent; }

void InvariantMonitor::add(const std::string& invariant,
                           const std::string& detail) {
  if (violations_.size() >= options_.max_violations) {
    ++suppressed_;
    return;
  }
  violations_.push_back(Violation{invariant, detail, session_.now()});
}

void InvariantMonitor::node_changed(platform::NodeId node) {
  const auto& n = session_.cluster().node(node);
  if (n.free_cores() < 0 || n.free_cores() > n.total_cores() ||
      n.free_gpus() < 0 || n.free_gpus() > n.total_gpus()) {
    add("overcommit",
        util::cat("node ", node, " free=", n.free_cores(), "/",
                  n.total_cores(), " cores, ", n.free_gpus(), "/",
                  n.total_gpus(), " gpus"));
  }
}

void InvariantMonitor::post_event() {
  const sim::Time now = session_.now();
  if (now < last_now_) {
    add("monotonic-time",
        util::cat("virtual time moved backwards: ", last_now_, " -> ", now));
  }
  last_now_ = now;
  ++events_seen_;
  if (options_.coherence_stride > 0 &&
      events_seen_ % static_cast<std::uint64_t>(options_.coherence_stride) ==
          0) {
    check_index_coherence();
  }
}

void InvariantMonitor::check_index_coherence() {
  auto& cluster = session_.cluster();
  const auto range = cluster.all_nodes();

  // Segment maxima vs. ground truth.
  int truth_cores = 0;
  int truth_gpus = 0;
  for (platform::NodeId n = range.first; n < range.end(); ++n) {
    truth_cores = std::max(truth_cores, cluster.node(n).free_cores());
    truth_gpus = std::max(truth_gpus, cluster.node(n).free_gpus());
  }
  if (truth_cores != index_.max_free_cores() ||
      truth_gpus != index_.max_free_gpus()) {
    add("index", util::cat("segment maxima drifted: index=(",
                           index_.max_free_cores(), ",", index_.max_free_gpus(),
                           ") scan=(", truth_cores, ",", truth_gpus, ")"));
    return;  // further probes would only repeat the same drift
  }

  // Identity oracle: indexed lookups must answer exactly like the linear
  // first-fit scan they replaced (the sched subsystem's contract).
  struct Probe {
    int cores;
    int gpus;
  };
  const Probe probes[] = {{1, 0}, {8, 1}, {56, 0}, {1, 1}};
  for (const auto& probe : probes) {
    std::optional<platform::NodeId> truth;
    for (platform::NodeId n = range.first; n < range.end(); ++n) {
      if (cluster.node(n).free_cores() >= probe.cores &&
          cluster.node(n).free_gpus() >= probe.gpus) {
        truth = n;
        break;
      }
    }
    const auto got =
        index_.find_fit(range.first, range.end(), probe.cores, probe.gpus);
    if (truth != got) {
      add("index",
          util::cat("find_fit(", probe.cores, ",", probe.gpus, ") = ",
                    got ? std::to_string(*got) : "none", ", linear scan = ",
                    truth ? std::to_string(*truth) : "none"));
    }
  }
  std::optional<platform::NodeId> truth_any;
  for (platform::NodeId n = range.first; n < range.end(); ++n) {
    if (cluster.node(n).free_cores() > 0) {
      truth_any = n;
      break;
    }
  }
  const auto got_any = index_.find_any(range.first, range.end(), true, false);
  if (truth_any != got_any) {
    add("index",
        util::cat("find_any(cores) = ",
                  got_any ? std::to_string(*got_any) : "none",
                  ", linear scan = ",
                  truth_any ? std::to_string(*truth_any) : "none"));
  }
}

void InvariantMonitor::on_transition(const core::Task& task, TaskState from,
                                     TaskState to) {
  auto [it, inserted] = tasks_.try_emplace(task.uid());
  auto& record = it->second;
  if (inserted) {
    if (from != TaskState::kNew) {
      add("state-machine",
          util::cat(task.uid(), ": first observed transition leaves ",
                    core::to_string(from), ", expected NEW"));
    }
  } else if (record.last != from) {
    add("state-machine",
        util::cat(task.uid(), ": transition claims from=",
                  core::to_string(from), " but last recorded state is ",
                  core::to_string(record.last)));
  }
  if (!legal_transition(from, to)) {
    add("state-machine",
        util::cat(task.uid(), ": illegal edge ", core::to_string(from), " -> ",
                  core::to_string(to)));
  }
  if (core::is_final(to)) {
    ++record.terminals;
    if (record.terminals > 1) {
      add("liveness", util::cat(task.uid(), ": reached a terminal state ",
                                record.terminals, " times"));
    }
  }
  record.last = to;
}

void InvariantMonitor::finish() {
  if (finished_) return;
  finished_ = true;

  // Conservation: the cluster must be exactly as free as at attach time.
  auto& cluster = session_.cluster();
  std::int64_t leaked_cores = 0;
  std::int64_t leaked_gpus = 0;
  for (platform::NodeId n = 0; n < cluster.size(); ++n) {
    leaked_cores +=
        baseline_free_cores_[static_cast<std::size_t>(n)] -
        cluster.node(n).free_cores();
    leaked_gpus += baseline_free_gpus_[static_cast<std::size_t>(n)] -
                   cluster.node(n).free_gpus();
  }
  if (leaked_cores != 0 || leaked_gpus != 0) {
    add("conservation", util::cat("allocations leaked at drain: ",
                                  leaked_cores, " cores, ", leaked_gpus,
                                  " gpus still held"));
  }

  // Liveness: exactly one terminal state per watched task.
  for (const auto& [uid, record] : tasks_) {
    if (record.terminals == 0) {
      add("liveness", util::cat(uid, ": never reached a terminal state (last ",
                                core::to_string(record.last), ")"));
    }
  }

  // Quiescence: no backend may still hold queued or running work.
  if (agent_ != nullptr) {
    for (const auto& name : agent_->backend_names()) {
      auto* backend = agent_->backend(name);
      if (backend != nullptr && !backend->quiescent()) {
        add("quiesce", util::cat("backend ", name,
                                 " not quiescent at drain (inflight=",
                                 backend->inflight(), ")"));
      }
    }
  }

  if (options_.coherence_stride > 0) check_index_coherence();

  if (suppressed_ > 0) {
    violations_.push_back(
        Violation{"monitor",
                  util::cat(suppressed_, " further violations suppressed"),
                  session_.now()});
  }
}

}  // namespace flotilla::check
