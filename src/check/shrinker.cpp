#include "check/shrinker.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace flotilla::check {

namespace {

// Clamp per-backend node assignments and partition counts to a shrunken
// cluster; explicit assignments become equal shares so the pilot's split
// logic redistributes whatever is left.
void rescale_backends(ScenarioSpec& spec) {
  const int per_backend =
      std::max(1, spec.nodes / static_cast<int>(spec.backends.size()));
  for (auto& b : spec.backends) {
    b.nodes = 0;  // equal share of the shrunken cluster
    b.partitions = std::min(b.partitions, per_backend);
    if (b.partitions < 1) b.partitions = 1;
  }
}

// Candidate simplifications in reduction-priority order: tasks, nodes,
// faults, backend mix, then scheduler/workload knobs. Every candidate is
// strictly simpler than `spec`, so greedy adoption terminates.
std::vector<ScenarioSpec> candidates(const ScenarioSpec& spec) {
  std::vector<ScenarioSpec> out;
  const auto push = [&out](ScenarioSpec next) { out.push_back(std::move(next)); };

  if (spec.tasks > 0) {
    ScenarioSpec next = spec;
    next.tasks = spec.tasks / 2;
    push(next);
    if (spec.tasks <= 8 && spec.tasks > 1) {
      next = spec;
      next.tasks = spec.tasks - 1;
      push(next);
    }
  }

  const int min_nodes = static_cast<int>(spec.backends.size());
  if (spec.nodes > min_nodes) {
    ScenarioSpec next = spec;
    next.nodes = std::max(min_nodes, spec.nodes / 2);
    rescale_backends(next);
    push(next);
    if (spec.nodes <= min_nodes + 4) {
      next = spec;
      next.nodes = spec.nodes - 1;
      rescale_backends(next);
      push(next);
    }
  }

  if (!spec.faults.empty()) {
    ScenarioSpec next = spec;
    next.faults.clear();
    push(next);
    if (spec.faults.size() > 1) {
      for (std::size_t i = 0; i < spec.faults.size(); ++i) {
        next = spec;
        next.faults.erase(next.faults.begin() +
                          static_cast<std::ptrdiff_t>(i));
        push(next);
      }
    }
  }

  if (spec.backends.size() > 1) {
    for (std::size_t i = 0; i < spec.backends.size(); ++i) {
      ScenarioSpec next = spec;
      next.backends.erase(next.backends.begin() +
                          static_cast<std::ptrdiff_t>(i));
      rescale_backends(next);
      // Faults targeting the dropped backend make no sense anymore.
      const auto& dropped = spec.backends[i].type;
      next.faults.erase(
          std::remove_if(next.faults.begin(), next.faults.end(),
                         [&dropped](const FaultSpec& f) {
                           return f.kind == FaultSpec::Kind::kCrash &&
                                  f.backend == dropped;
                         }),
          next.faults.end());
      push(next);
    }
  }

  for (std::size_t i = 0; i < spec.backends.size(); ++i) {
    if (spec.backends[i].partitions > 1) {
      ScenarioSpec next = spec;
      next.backends[i].partitions = 1;
      push(next);
    }
    if (spec.backends[i].flux_backfill_depth != 64) {
      ScenarioSpec next = spec;
      next.backends[i].flux_backfill_depth = 64;
      push(next);
    }
  }

  if (spec.workload != "null") {
    ScenarioSpec next = spec;
    next.workload = "null";
    push(next);
  }
  if (spec.duration != 0.0) {
    ScenarioSpec next = spec;
    next.duration = 0.0;
    push(next);
  }
  if (spec.cores != 1) {
    ScenarioSpec next = spec;
    next.cores = 1;
    push(next);
  }
  if (spec.gpus != 0) {
    ScenarioSpec next = spec;
    next.gpus = 0;
    push(next);
  }
  if (spec.fail_probability != 0.0) {
    ScenarioSpec next = spec;
    next.fail_probability = 0.0;
    push(next);
  }
  if (spec.max_retries != 0) {
    ScenarioSpec next = spec;
    next.max_retries = 0;
    push(next);
  }
  if (spec.router != "static") {
    ScenarioSpec next = spec;
    next.router = "static";
    push(next);
  }
  if (spec.placement != "first-fit") {
    ScenarioSpec next = spec;
    next.placement = "first-fit";
    push(next);
  }
  if (spec.dragon_queue != "fifo") {
    ScenarioSpec next = spec;
    next.dragon_queue = "fifo";
    push(next);
  }
  // Ingress reductions: drop the arrival process entirely (back to the
  // classic one-shot submit), then halve the client population, simplify
  // the arrival process to plain Poisson at the default rate, and relax
  // admission toward an effectively unbounded reject queue.
  if (spec.clients > 0) {
    ScenarioSpec next = spec;
    next.clients = 0;
    next.arrival = "poisson";
    next.arrival_param = 0.0;
    next.admit = "reject";
    next.admit_capacity = 256;
    push(next);
    if (spec.clients > 1) {
      next = spec;
      next.clients = std::max(1, spec.clients / 2);
      push(next);
    }
    if (spec.arrival != "poisson" || spec.arrival_param != 0.0) {
      next = spec;
      next.arrival = "poisson";
      next.arrival_param = 0.0;
      push(next);
    }
    if (spec.admit != "reject") {
      next = spec;
      next.admit = "reject";
      push(next);
    }
    if (spec.admit_capacity != 256) {
      next = spec;
      next.admit_capacity = 256;
      push(next);
    }
  }
  // Crash-point reductions. Dropping the crash entirely (crash_at = 0)
  // disables the recovery oracle, so recovery-only failures survive it —
  // the shrinker keeps the crash when the bug needs one. Halving moves
  // the crash earlier, toward a shorter journal prefix.
  if (spec.crash_at > 0) {
    ScenarioSpec next = spec;
    next.crash_at = 0;
    next.recover = true;
    push(next);
    if (spec.crash_at > 1) {
      next = spec;
      next.crash_at = spec.crash_at / 2;
      push(next);
    }
  }
  if (spec.shards != 1) {
    ScenarioSpec next = spec;
    next.shards = 1;
    push(next);
  }
  if (spec.threads != 1) {
    ScenarioSpec next = spec;
    next.threads = 1;
    push(next);
  }

  return out;
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& failing,
                    const FailurePredicate& still_fails,
                    int max_evaluations) {
  ShrinkResult result;
  result.spec = failing;
  bool progressed = true;
  while (progressed && result.evaluations < max_evaluations) {
    progressed = false;
    for (auto& candidate : candidates(result.spec)) {
      if (result.evaluations >= max_evaluations) break;
      ++result.evaluations;
      if (still_fails(candidate)) {
        result.spec = std::move(candidate);
        progressed = true;
        break;  // restart from the highest-priority reduction
      }
    }
  }
  return result;
}

}  // namespace flotilla::check
