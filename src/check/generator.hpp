// Scenario generator: draws one randomized-but-valid ScenarioSpec.
//
// "Valid" means every generated scenario is expected to PASS all
// invariants — the generator stays inside the simulator's documented
// contracts (e.g. task demands are capped so they fit the smallest
// schedulable unit of every backend in the mix, because backends without
// admission checks queue an unsatisfiable task forever). Anything the
// fuzzer then flags is a real defect, not a malformed scenario.
#pragma once

#include "check/spec.hpp"
#include "sim/random.hpp"

namespace flotilla::check {

struct GeneratorOptions {
  // Always arm the service-mode ingress dimensions (clients/arrival/admit)
  // instead of the default ~30% draw — the nightly ingress-storm leg runs
  // with this on so every scenario exercises admission control.
  bool force_ingress = false;
};

ScenarioSpec generate_scenario(sim::RngStream& rng);
ScenarioSpec generate_scenario(sim::RngStream& rng,
                               const GeneratorOptions& options);

// The largest single-node (cores, gpus) and multi-node (nodes) demand that
// fits the smallest partition of every backend in the mix. Exposed for the
// workload builder and tests.
struct UnitCaps {
  int nodes = 1;              // smallest partition's node count
  std::int64_t cores = 56;    // per-node schedulable cores
  std::int64_t gpus = 8;      // per-node GPUs
};
UnitCaps unit_caps(const ScenarioSpec& spec);

}  // namespace flotilla::check
