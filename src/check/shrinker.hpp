// Greedy scenario shrinker: minimizes a failing ScenarioSpec.
//
// Given a spec that fails (by whatever predicate the caller supplies — an
// invariant violation, a determinism divergence, a crash) the shrinker
// repeatedly proposes strictly simpler variants and keeps any that still
// fail, in the reduction order that shrinks debugging effort fastest:
// fewer tasks, then fewer nodes, then fewer fault injections, then a
// simpler backend mix, then neutral knobs. The result is the minimal spec
// the predicate still rejects, ready to paste into
// `flotilla-fuzz --replay '<spec>'`.
#pragma once

#include <functional>

#include "check/spec.hpp"

namespace flotilla::check {

struct ShrinkResult {
  ScenarioSpec spec;    // the smallest still-failing spec found
  int evaluations = 0;  // predicate invocations spent
};

using FailurePredicate = std::function<bool(const ScenarioSpec&)>;

// `still_fails` must return true when the candidate still exhibits the
// failure. `max_evaluations` bounds total predicate calls.
ShrinkResult shrink(const ScenarioSpec& failing,
                    const FailurePredicate& still_fails,
                    int max_evaluations = 200);

}  // namespace flotilla::check
