#include "check/runner.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "check/generator.hpp"
#include "core/pilot.hpp"
#include "core/session.hpp"
#include "core/task_manager.hpp"
#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "prrte/dvm_backend.hpp"
#include "sched/queue.hpp"
#include "sim/random.hpp"
#include "sim/storm.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"
#include "workloads/heterogeneous.hpp"
#include "workloads/synthetic.hpp"

namespace flotilla::check {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

sched::PlacementPolicyKind placement_kind(const std::string& name) {
  if (name == "first-fit") return sched::PlacementPolicyKind::kFirstFit;
  if (name == "best-fit") return sched::PlacementPolicyKind::kBestFit;
  if (name == "gpu-pack") return sched::PlacementPolicyKind::kGpuPack;
  util::raise("spec: unknown placement policy: ", name);
}

bool mix_has(const ScenarioSpec& spec, const std::string& type) {
  return std::any_of(spec.backends.begin(), spec.backends.end(),
                     [&](const auto& b) { return b.type == type; });
}

// IMPECCABLE-shaped mixture (dock/train/infer/scoring/reinvent families)
// scaled down to the smallest schedulable unit of the scenario's mix.
std::vector<workloads::TaskClass> impeccable_classes(const ScenarioSpec& spec,
                                                     const UnitCaps& caps) {
  const double base = std::max(0.25, spec.duration);
  const bool functions = mix_has(spec, "dragon");
  std::vector<workloads::TaskClass> classes;
  classes.push_back({"dock", 6.0, 1, 0, 0, base, 0.3,
                     platform::TaskModality::kExecutable});
  classes.push_back({"train", 1.0, 4, 2, 0, 2.0 * base, 0.2,
                     platform::TaskModality::kExecutable});
  classes.push_back({"infer", 2.0, 1, 1, 0, 0.5 * base, 0.3,
                     functions ? platform::TaskModality::kFunction
                               : platform::TaskModality::kExecutable});
  if (caps.nodes >= 2) {
    classes.push_back({"mmpbsa", 1.0, 2 * caps.cores, 0, caps.cores, base, 0.2,
                       platform::TaskModality::kExecutable});
  } else {
    classes.push_back({"mmpbsa", 1.0, caps.cores / 2, 0, 0, base, 0.2,
                       platform::TaskModality::kExecutable});
  }
  classes.push_back({"reinvent", 1.0, 2, 1, 0, base, 0.2,
                     platform::TaskModality::kExecutable});
  return classes;
}

std::vector<workloads::TaskClass> hetero_classes(const ScenarioSpec& spec,
                                                 const UnitCaps& caps) {
  const double base = std::max(0.25, spec.duration);
  const bool functions = mix_has(spec, "dragon");
  std::vector<workloads::TaskClass> classes;
  if (functions) {
    classes.push_back({"func", 3.0, 1, 0, 0, 0.2 * base, 0.5,
                       platform::TaskModality::kFunction});
  }
  classes.push_back({"small", 4.0, 1, 0, 0, base, 0.3,
                     platform::TaskModality::kExecutable});
  classes.push_back({"medium", 2.0, 4, 0, 0, 2.0 * base, 0.3,
                     platform::TaskModality::kExecutable});
  classes.push_back(
      {"gpu", 1.0, 2, 1, 0, base, 0.3, platform::TaskModality::kExecutable});
  if (caps.nodes >= 2) {
    classes.push_back({"mpi", 1.0, 2 * caps.cores, 0, caps.cores, 2.0 * base,
                       0.2, platform::TaskModality::kExecutable});
  }
  return classes;
}

std::vector<core::TaskDescription> build_workload(const ScenarioSpec& spec) {
  const auto caps = unit_caps(spec);
  std::vector<core::TaskDescription> tasks;
  if (spec.workload == "null" || spec.workload == "sleep") {
    const double duration = spec.workload == "null" ? 0.0 : spec.duration;
    tasks = workloads::uniform_tasks(spec.tasks, duration,
                                     std::min(spec.cores, caps.cores));
    const auto gpus = std::min(spec.gpus, caps.gpus);
    for (auto& t : tasks) t.demand.gpus = gpus;
  } else if (spec.workload == "hetero") {
    tasks = workloads::heterogeneous_tasks(spec.tasks,
                                           hetero_classes(spec, caps),
                                           spec.seed ^ 0x9e3779b97f4a7c15ull);
  } else if (spec.workload == "impeccable") {
    tasks = workloads::heterogeneous_tasks(spec.tasks,
                                           impeccable_classes(spec, caps),
                                           spec.seed ^ 0xbf58476d1ce4e5b9ull);
  } else {
    util::raise("spec: unknown workload: ", spec.workload);
  }

  // Decorations the workload generators do not model: failure injection,
  // retry budgets, priorities and staged data.
  sim::RngStream rng(spec.seed, "check.workload");
  for (auto& t : tasks) {
    t.fail_probability = spec.fail_probability;
    t.max_retries = spec.max_retries;
    if (rng.bernoulli(0.5)) {
      t.priority = static_cast<int>(rng.uniform_int(0, 31));
    }
    if (rng.bernoulli(0.2)) t.input_mb = rng.uniform(1.0, 64.0);
    if (rng.bernoulli(0.2)) t.output_mb = rng.uniform(1.0, 64.0);
  }
  return tasks;
}

// Post-build scheduler knobs the PilotDescription cannot express: swap the
// placement policy of every flux instance / dragon runtime, and optionally
// the dragon capacity queue's admission policy.
void apply_knobs(core::Agent& agent, const ScenarioSpec& spec) {
  const auto kind = placement_kind(spec.placement);
  if (auto* tb = agent.backend("flux")) {
    auto* fb = static_cast<flux::FluxBackend*>(tb);
    for (int i = 0; i < fb->partitions(); ++i) {
      fb->instance(i).set_placement_policy(kind);
    }
  }
  if (auto* tb = agent.backend("dragon")) {
    auto* db = static_cast<dragon::DragonBackend*>(tb);
    for (int i = 0; i < db->partitions(); ++i) {
      db->runtime(i).set_placement_policy(kind);
      if (spec.dragon_queue == "priority") {
        db->runtime(i).set_queue_policy(
            std::make_unique<sched::PriorityFifoPolicy>());
      }
    }
  }
}

void apply_crash(core::Agent& agent, const FaultSpec& fault) {
  auto* tb = agent.backend(fault.backend);
  if (tb == nullptr) return;  // backend dropped during bootstrap
  if (fault.backend == "flux") {
    auto* fb = static_cast<flux::FluxBackend*>(tb);
    const int i = fault.index % std::max(1, fb->partitions());
    if (fb->instance(i).healthy()) {
      fb->crash_instance(i, "fault injection: broker lost");
    }
  } else if (fault.backend == "dragon") {
    auto* db = static_cast<dragon::DragonBackend*>(tb);
    const int i = fault.index % std::max(1, db->partitions());
    if (db->runtime(i).healthy()) {
      db->crash("fault injection: runtime lost", i);
    }
  } else if (fault.backend == "prrte") {
    auto* pb = static_cast<prrte::DvmBackend*>(tb);
    if (pb->healthy()) pb->crash("fault injection: dvm lost");
  }
}

// The deliberate defect the harness must be able to catch (see ISSUE /
// docs/correctness.md): a double-booking scheduler modeled as one core
// claimed behind every placer's back and never released. Retries until a
// core is free so the leak lands even mid-burst.
void inject_overcommit(core::Session& session, core::Pilot& pilot,
                       sim::Time start) {
  auto leak = std::make_shared<std::function<void()>>();
  *leak = [&session, &pilot, leak] {
    const auto range = pilot.allocation();
    for (platform::NodeId n = range.first; n < range.end(); ++n) {
      if (session.cluster().node(n).allocate(1, 0)) return;  // leaked
    }
    session.engine().in(1.0, [leak] { (*leak)(); });
  };
  session.engine().at(start, [leak] { (*leak)(); });
}

void run_impl(const ScenarioSpec& spec, const RunOptions& opts,
              RunResult& result) {
  core::Session session(platform::frontier_spec(), spec.nodes, spec.seed,
                        platform::frontier_calibration(), spec.shards);
  InvariantMonitor::Options mopts;
  mopts.coherence_stride = opts.coherence_stride;
  InvariantMonitor monitor(session, mopts);

  core::PilotManager pmgr(session);
  core::PilotDescription pd;
  pd.nodes = spec.nodes;
  pd.backends = spec.backends;
  pd.trace_tasks = true;
  pd.router = spec.router == "adaptive" ? core::RouterPolicy::kAdaptive
                                        : core::RouterPolicy::kStatic;
  auto& pilot = pmgr.submit(std::move(pd));

  bool ready = false;
  bool ready_reported = false;
  std::string ready_error;
  pilot.launch([&](bool ok, std::string error) {
    ready = ok;
    ready_reported = true;
    ready_error = std::move(error);
  });
  apply_knobs(pilot.agent(), spec);

  const std::uint64_t launch_budget = 100000;
  while (!ready_reported && session.engine().step()) {
    if (++result.events > launch_budget) break;
  }
  result.ready = ready;
  if (!ready) {
    monitor.finish();
    result.violations = monitor.violations();
    result.violations.push_back(Violation{
        "launch", util::cat("pilot never became ready: ", ready_error),
        session.now()});
    return;
  }
  const sim::Time ready_time = session.now();

  core::TaskManager tmgr(session, pilot.agent());
  monitor.watch(tmgr);
  monitor.watch_backends(pilot.agent());
  tmgr.on_complete([&result](const core::Task& task) {
    switch (task.state()) {
      case core::TaskState::kDone:
        ++result.done;
        break;
      case core::TaskState::kFailed:
        ++result.failed;
        break;
      default:
        ++result.canceled;
        break;
    }
  });

  const auto uids = tmgr.submit(build_workload(spec));

  for (const auto& fault : spec.faults) {
    if (fault.kind == FaultSpec::Kind::kCrash) {
      session.engine().at(ready_time + fault.time,
                          [&pilot, fault] { apply_crash(pilot.agent(), fault); });
    } else {
      session.engine().at(ready_time + fault.time, [&tmgr, uids, fault] {
        if (uids.empty()) return;
        const auto n = std::min<std::size_t>(
            uids.size(), static_cast<std::size_t>(std::max(1, fault.count)));
        const std::size_t stride = uids.size() / n;
        for (std::size_t i = 0; i < n; ++i) {
          tmgr.cancel(uids[i * stride]);
        }
      });
    }
  }
  if (spec.bug == "overcommit") {
    inject_overcommit(session, pilot, ready_time + 0.5);
  } else if (spec.bug != "none") {
    util::raise("spec: unknown bug injection: ", spec.bug);
  }

  const std::uint64_t budget =
      opts.max_events != 0
          ? opts.max_events
          : 200000 + 5000ull * static_cast<std::uint64_t>(
                                   std::max(0, spec.tasks));
  while (session.engine().step()) {
    if (++result.events > budget) {
      result.violations.push_back(Violation{
          "livelock",
          util::cat("event budget exhausted after ", result.events,
                    " events with ", session.engine().pending(),
                    " still pending"),
          session.now()});
      break;
    }
  }
  result.makespan = session.now() - ready_time;

  monitor.finish();
  for (const auto& v : monitor.violations()) result.violations.push_back(v);

  // Fingerprint: full trace + every task's final record. Bit-identical
  // across runs of the same spec iff the simulation is deterministic.
  std::ostringstream os;
  session.trace().write_csv(os);
  std::uint64_t h = fnv1a(1469598103934665603ull, os.str());
  tmgr.for_each_task([&h](const core::Task& task) {
    h = fnv1a(h, util::cat(task.uid(), "|", core::to_string(task.state()), "|",
                           task.backend(), "|", task.attempts(), "\n"));
  });
  result.fingerprint = h;
}

}  // namespace

RunResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts) {
  RunResult result;
  try {
    run_impl(spec, opts, result);
  } catch (const std::exception& e) {
    result.violations.push_back(Violation{"exception", e.what(), 0.0});
  }
  return result;
}

RunResult run_with_oracles(const ScenarioSpec& spec, const RunOptions& opts) {
  RunResult first = run_scenario(spec, opts);
  const RunResult second = run_scenario(spec, opts);
  if (first.fingerprint != second.fingerprint ||
      first.events != second.events) {
    first.violations.push_back(Violation{
        "determinism",
        util::cat("same-seed runs diverged: fingerprint ", first.fingerprint,
                  " vs ", second.fingerprint, ", events ", first.events,
                  " vs ", second.events),
        0.0});
  }
  // Sharded full-stack runs must schedule identically to the classic single
  // calendar: the shard split only partitions the data structure, never the
  // event order (docs/sharding.md). Raw event counts legitimately differ —
  // cross-shard hops are mailbox events that do not exist at shards=1 — so
  // the oracle compares the trace/task fingerprints, which capture every
  // observable timestamp and outcome.
  if (spec.shards > 1) {
    ScenarioSpec serial = spec;
    serial.shards = 1;
    const RunResult unsharded = run_scenario(serial, opts);
    if (first.fingerprint != unsharded.fingerprint) {
      first.violations.push_back(Violation{
          "shard-invariance",
          util::cat("shards=", spec.shards, " diverged from shards=1: ",
                    "fingerprint ", first.fingerprint, " vs ",
                    unsharded.fingerprint),
          0.0});
    }
  }
  // The full stack pins the engine to one thread, so the threads dimension
  // is exercised on the shard-confined storm workload: the parallel drain
  // must fingerprint-match the serial single-shard reference.
  if (spec.threads > 1) {
    sim::StormConfig storm;
    storm.seed = spec.seed;
    sim::StormConfig reference = storm;  // shards=1, threads=1
    storm.shards = std::max(spec.shards, spec.threads);
    storm.threads = spec.threads;
    const auto parallel = sim::run_storm(storm);
    const auto serial = sim::run_storm(reference);
    if (parallel.fingerprint != serial.fingerprint ||
        parallel.events != serial.events) {
      first.violations.push_back(Violation{
          "storm-determinism",
          util::cat("storm(shards=", storm.shards, ",threads=", storm.threads,
                    ") diverged from serial: fingerprint ",
                    parallel.fingerprint, " vs ", serial.fingerprint,
                    ", events ", parallel.events, " vs ", serial.events),
          0.0});
    }
  }
  return first;
}

}  // namespace flotilla::check
