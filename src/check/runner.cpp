#include "check/runner.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>

#include "check/generator.hpp"
#include "core/pilot.hpp"
#include "core/session.hpp"
#include "core/task_manager.hpp"
#include "dragon/dragon_backend.hpp"
#include "flux/flux_backend.hpp"
#include "ingress/ingress.hpp"
#include "journal/scribe.hpp"
#include "prrte/dvm_backend.hpp"
#include "sched/queue.hpp"
#include "sim/random.hpp"
#include "sim/storm.hpp"
#include "util/error.hpp"
#include "util/strfmt.hpp"
#include "workloads/heterogeneous.hpp"
#include "workloads/synthetic.hpp"

namespace flotilla::check {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

sched::PlacementPolicyKind placement_kind(const std::string& name) {
  if (name == "first-fit") return sched::PlacementPolicyKind::kFirstFit;
  if (name == "best-fit") return sched::PlacementPolicyKind::kBestFit;
  if (name == "gpu-pack") return sched::PlacementPolicyKind::kGpuPack;
  util::raise("spec: unknown placement policy: ", name);
}

bool mix_has(const ScenarioSpec& spec, const std::string& type) {
  return std::any_of(spec.backends.begin(), spec.backends.end(),
                     [&](const auto& b) { return b.type == type; });
}

// IMPECCABLE-shaped mixture (dock/train/infer/scoring/reinvent families)
// scaled down to the smallest schedulable unit of the scenario's mix.
std::vector<workloads::TaskClass> impeccable_classes(const ScenarioSpec& spec,
                                                     const UnitCaps& caps) {
  const double base = std::max(0.25, spec.duration);
  const bool functions = mix_has(spec, "dragon");
  std::vector<workloads::TaskClass> classes;
  classes.push_back({"dock", 6.0, 1, 0, 0, base, 0.3,
                     platform::TaskModality::kExecutable});
  classes.push_back({"train", 1.0, 4, 2, 0, 2.0 * base, 0.2,
                     platform::TaskModality::kExecutable});
  classes.push_back({"infer", 2.0, 1, 1, 0, 0.5 * base, 0.3,
                     functions ? platform::TaskModality::kFunction
                               : platform::TaskModality::kExecutable});
  if (caps.nodes >= 2) {
    classes.push_back({"mmpbsa", 1.0, 2 * caps.cores, 0, caps.cores, base, 0.2,
                       platform::TaskModality::kExecutable});
  } else {
    classes.push_back({"mmpbsa", 1.0, caps.cores / 2, 0, 0, base, 0.2,
                       platform::TaskModality::kExecutable});
  }
  classes.push_back({"reinvent", 1.0, 2, 1, 0, base, 0.2,
                     platform::TaskModality::kExecutable});
  return classes;
}

std::vector<workloads::TaskClass> hetero_classes(const ScenarioSpec& spec,
                                                 const UnitCaps& caps) {
  const double base = std::max(0.25, spec.duration);
  const bool functions = mix_has(spec, "dragon");
  std::vector<workloads::TaskClass> classes;
  if (functions) {
    classes.push_back({"func", 3.0, 1, 0, 0, 0.2 * base, 0.5,
                       platform::TaskModality::kFunction});
  }
  classes.push_back({"small", 4.0, 1, 0, 0, base, 0.3,
                     platform::TaskModality::kExecutable});
  classes.push_back({"medium", 2.0, 4, 0, 0, 2.0 * base, 0.3,
                     platform::TaskModality::kExecutable});
  classes.push_back(
      {"gpu", 1.0, 2, 1, 0, base, 0.3, platform::TaskModality::kExecutable});
  if (caps.nodes >= 2) {
    classes.push_back({"mpi", 1.0, 2 * caps.cores, 0, caps.cores, 2.0 * base,
                       0.2, platform::TaskModality::kExecutable});
  }
  return classes;
}

std::vector<core::TaskDescription> build_workload(const ScenarioSpec& spec) {
  const auto caps = unit_caps(spec);
  std::vector<core::TaskDescription> tasks;
  if (spec.workload == "null" || spec.workload == "sleep") {
    const double duration = spec.workload == "null" ? 0.0 : spec.duration;
    tasks = workloads::uniform_tasks(spec.tasks, duration,
                                     std::min(spec.cores, caps.cores));
    const auto gpus = std::min(spec.gpus, caps.gpus);
    for (auto& t : tasks) t.demand.gpus = gpus;
  } else if (spec.workload == "hetero") {
    tasks = workloads::heterogeneous_tasks(spec.tasks,
                                           hetero_classes(spec, caps),
                                           spec.seed ^ 0x9e3779b97f4a7c15ull);
  } else if (spec.workload == "impeccable") {
    tasks = workloads::heterogeneous_tasks(spec.tasks,
                                           impeccable_classes(spec, caps),
                                           spec.seed ^ 0xbf58476d1ce4e5b9ull);
  } else {
    util::raise("spec: unknown workload: ", spec.workload);
  }

  // Decorations the workload generators do not model: failure injection,
  // retry budgets, priorities and staged data.
  sim::RngStream rng(spec.seed, "check.workload");
  for (auto& t : tasks) {
    t.fail_probability = spec.fail_probability;
    t.max_retries = spec.max_retries;
    if (rng.bernoulli(0.5)) {
      t.priority = static_cast<int>(rng.uniform_int(0, 31));
    }
    if (rng.bernoulli(0.2)) t.input_mb = rng.uniform(1.0, 64.0);
    if (rng.bernoulli(0.2)) t.output_mb = rng.uniform(1.0, 64.0);
  }
  return tasks;
}

// Maps the spec's ingress dimensions onto an IngressConfig. arrival_param
// is overloaded the way the spec documents it: open-loop rate [tasks/s] or
// closed-loop think time [s]; 0 keeps the ingress defaults.
ingress::IngressConfig ingress_config(const ScenarioSpec& spec) {
  ingress::IngressConfig cfg;
  cfg.clients = spec.clients;
  cfg.total_offers = spec.tasks;
  if (spec.arrival == "poisson") {
    cfg.arrival.kind = ingress::ArrivalKind::kPoisson;
  } else if (spec.arrival == "diurnal") {
    cfg.arrival.kind = ingress::ArrivalKind::kDiurnal;
  } else if (spec.arrival == "bursty") {
    cfg.arrival.kind = ingress::ArrivalKind::kBursty;
  } else if (spec.arrival == "closed") {
    cfg.arrival.kind = ingress::ArrivalKind::kClosed;
  } else {
    util::raise("spec: unknown arrival process: ", spec.arrival);
  }
  if (spec.arrival_param > 0.0) {
    if (cfg.arrival.kind == ingress::ArrivalKind::kClosed) {
      cfg.arrival.think = spec.arrival_param;
    } else {
      cfg.arrival.rate = spec.arrival_param;
    }
  }
  if (spec.admit == "reject") {
    cfg.admit.policy = ingress::AdmitPolicy::kReject;
  } else if (spec.admit == "defer") {
    cfg.admit.policy = ingress::AdmitPolicy::kDefer;
  } else {
    util::raise("spec: unknown admission policy: ", spec.admit);
  }
  if (spec.admit_capacity < 0) {
    util::raise("spec: negative admission capacity: ", spec.admit_capacity);
  }
  cfg.admit.capacity = static_cast<std::size_t>(spec.admit_capacity);
  return cfg;
}

// Post-build scheduler knobs the PilotDescription cannot express: swap the
// placement policy of every flux instance / dragon runtime, and optionally
// the dragon capacity queue's admission policy.
void apply_knobs(core::Agent& agent, const ScenarioSpec& spec) {
  const auto kind = placement_kind(spec.placement);
  if (auto* tb = agent.backend("flux")) {
    auto* fb = static_cast<flux::FluxBackend*>(tb);
    for (int i = 0; i < fb->partitions(); ++i) {
      fb->instance(i).set_placement_policy(kind);
    }
  }
  if (auto* tb = agent.backend("dragon")) {
    auto* db = static_cast<dragon::DragonBackend*>(tb);
    for (int i = 0; i < db->partitions(); ++i) {
      db->runtime(i).set_placement_policy(kind);
      if (spec.dragon_queue == "priority") {
        db->runtime(i).set_queue_policy(
            std::make_unique<sched::PriorityFifoPolicy>());
      }
    }
  }
}

void apply_crash(core::Agent& agent, const FaultSpec& fault) {
  auto* tb = agent.backend(fault.backend);
  if (tb == nullptr) return;  // backend dropped during bootstrap
  if (fault.backend == "flux") {
    auto* fb = static_cast<flux::FluxBackend*>(tb);
    const int i = fault.index % std::max(1, fb->partitions());
    if (fb->instance(i).healthy()) {
      fb->crash_instance(i, "fault injection: broker lost");
    }
  } else if (fault.backend == "dragon") {
    auto* db = static_cast<dragon::DragonBackend*>(tb);
    const int i = fault.index % std::max(1, db->partitions());
    if (db->runtime(i).healthy()) {
      db->crash("fault injection: runtime lost", i);
    }
  } else if (fault.backend == "prrte") {
    auto* pb = static_cast<prrte::DvmBackend*>(tb);
    if (pb->healthy()) pb->crash("fault injection: dvm lost");
  }
}

// The deliberate defect the harness must be able to catch (see ISSUE /
// docs/correctness.md): a double-booking scheduler modeled as one core
// claimed behind every placer's back and never released. Retries until a
// core is free so the leak lands even mid-burst.
void inject_overcommit(core::Session& session, core::Pilot& pilot,
                       sim::Time start) {
  auto leak = std::make_shared<std::function<void()>>();
  *leak = [&session, &pilot, leak] {
    const auto range = pilot.allocation();
    for (platform::NodeId n = range.first; n < range.end(); ++n) {
      if (session.cluster().node(n).allocate(1, 0)) return;  // leaked
    }
    session.engine().in(1.0, [leak] { (*leak)(); });
  };
  session.engine().at(start, [leak] { (*leak)(); });
}

// Journal lines end in '\n'; violation details are single-line.
std::string chomp(std::string line) {
  while (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

// The journal header records the spec with the oracle dimensions reset:
// crash_at/recover describe how the *oracle* exercises the scenario, not
// what the run does, so every crash point of a scenario shares one
// uninterrupted reference journal (docs/recovery.md).
std::string header_spec_line(const ScenarioSpec& spec) {
  ScenarioSpec header = spec;
  header.crash_at = 0;
  header.recover = true;
  return header.to_string();
}

void run_impl(const ScenarioSpec& spec, const RunOptions& opts,
              RunResult& result) {
  // Bare threaded mode: the engine drains shard rounds on a worker pool,
  // so the between-events observers stay off — the invariant monitor's
  // post-event hook and the journal scribe both assume they see the one
  // global event order. run_with_oracles compensates by comparing the
  // bare run's terminal state against the monitored serial run.
  const bool threaded = opts.engine_threads > 1;
  if (threaded &&
      (opts.journal || opts.crash_at > 0 || opts.recovery != nullptr)) {
    util::raise(
        "run: the journal scribe observes the event order between events "
        "and requires engine_threads == 1");
  }
  core::Session session(platform::frontier_spec(), spec.nodes, spec.seed,
                        platform::frontier_calibration(), spec.shards,
                        opts.engine_threads);
  std::unique_ptr<InvariantMonitor> monitor;
  if (!threaded) {
    InvariantMonitor::Options mopts;
    mopts.coherence_stride = opts.coherence_stride;
    monitor = std::make_unique<InvariantMonitor>(session, mopts);
  }

  // Durable journal: the scribe attaches before the pilot exists so
  // bootstrap-time allocations are journaled too. In recovery mode it
  // validates every record against the surviving prefix.
  std::unique_ptr<journal::Scribe> scribe;
  if (opts.journal || opts.crash_at > 0 || opts.recovery != nullptr) {
    scribe = opts.recovery != nullptr
                 ? std::make_unique<journal::Scribe>(session,
                                                     opts.recovery->prefix())
                 : std::make_unique<journal::Scribe>(session);
    scribe->record_header(spec.seed, header_spec_line(spec));
  }
  const auto crashed_now = [&] {
    if (scribe == nullptr || opts.crash_at == 0) return false;
    return scribe->records() >= opts.crash_at;
  };

  core::PilotManager pmgr(session);
  core::PilotDescription pd;
  pd.nodes = spec.nodes;
  pd.backends = spec.backends;
  pd.trace_tasks = true;
  pd.router = spec.router == "adaptive" ? core::RouterPolicy::kAdaptive
                                        : core::RouterPolicy::kStatic;
  auto& pilot = pmgr.submit(std::move(pd));

  bool ready = false;
  bool ready_reported = false;
  std::string ready_error;
  pilot.launch([&](bool ok, std::string error) {
    ready = ok;
    ready_reported = true;
    ready_error = std::move(error);
  });
  apply_knobs(pilot.agent(), spec);

  const std::uint64_t launch_budget = 100000;
  while (!ready_reported && session.engine().step()) {
    if (++result.events > launch_budget) break;
    if (crashed_now()) {
      // Controller died during bootstrap: keep the surviving bytes, skip
      // the end-state audit (an interrupted run legitimately holds
      // in-flight allocations).
      result.crashed = true;
      result.journal = scribe->writer().bytes();
      return;
    }
  }
  result.ready = ready;
  if (!ready) {
    if (monitor) {
      monitor->finish();
      result.violations = monitor->violations();
    }
    result.violations.push_back(Violation{
        "launch", util::cat("pilot never became ready: ", ready_error),
        session.now()});
    return;
  }
  const sim::Time ready_time = session.now();
  if (scribe) scribe->record_ready();

  core::TaskManager tmgr(session, pilot.agent());
  if (monitor) monitor->watch(tmgr);
  if (scribe) scribe->attach(tmgr);
  if (monitor) monitor->watch_backends(pilot.agent());
  tmgr.on_complete([&result](const core::Task& task) {
    switch (task.state()) {
      case core::TaskState::kDone:
        ++result.done;
        break;
      case core::TaskState::kFailed:
        ++result.failed;
        break;
      default:
        ++result.canceled;
        break;
    }
  });

  // Service-mode ingress (docs/ingress.md): clients > 0 routes the task
  // budget through an arrival process + admission control instead of one
  // up-front submit. Accepted uids then trickle in over the run, so cancel
  // storms sample the ingress service's accepted set at fire time.
  std::unique_ptr<ingress::IngressService> svc;
  std::vector<std::string> uids;
  if (spec.clients > 0) {
    svc = std::make_unique<ingress::IngressService>(session, tmgr,
                                                    ingress_config(spec));
    svc->start(build_workload(spec));
  } else {
    uids = tmgr.submit(build_workload(spec));
  }

  // The injected state-loss defect (docs/recovery.md): a recovery path
  // that forgets the pending fault schedule. Inert on normal runs — only
  // the crash/recover oracle can observe it, as a journal divergence or a
  // terminal-state mismatch against the uninterrupted reference.
  const bool lost_fault_schedule =
      spec.bug == "state-loss" && opts.recovery != nullptr;
  for (const auto& fault : spec.faults) {
    if (lost_fault_schedule) break;
    if (fault.kind == FaultSpec::Kind::kCrash) {
      session.engine().at(ready_time + fault.time,
                          [&pilot, fault, s = scribe.get()] {
                            if (s) {
                              s->record_fault("crash", fault.backend,
                                              fault.index, 0);
                            }
                            apply_crash(pilot.agent(), fault);
                          });
    } else {
      session.engine().at(
          ready_time + fault.time,
          [&tmgr, uids, fault, s = scribe.get(), svc_p = svc.get()] {
            // Under ingress the accepted set grows over the run; sample it
            // when the storm fires, not when it was scheduled.
            const auto& pool = svc_p != nullptr ? svc_p->accepted_uids() : uids;
            if (pool.empty()) return;
            const auto n = std::min<std::size_t>(
                pool.size(),
                static_cast<std::size_t>(std::max(1, fault.count)));
            if (s) {
              s->record_fault("cancel", "", 0,
                              static_cast<std::int64_t>(n));
            }
            const std::size_t stride = pool.size() / n;
            for (std::size_t i = 0; i < n; ++i) {
              tmgr.cancel(pool[i * stride]);
            }
          });
    }
  }
  if (spec.bug == "overcommit") {
    inject_overcommit(session, pilot, ready_time + 0.5);
  } else if (spec.bug != "none" && spec.bug != "state-loss") {
    util::raise("spec: unknown bug injection: ", spec.bug);
  }

  const std::uint64_t budget =
      opts.max_events != 0
          ? opts.max_events
          : 200000 + 5000ull * static_cast<std::uint64_t>(
                                   std::max(0, spec.tasks));
  bool livelocked = false;
  if (threaded) {
    // Parallel drain: run() owns the loop, so the event budget is counted
    // from the post-event hook. The hook fires on worker threads — a
    // relaxed atomic is enough for a monotone counter — and stop() ends
    // the run after the round that crossed the budget.
    std::atomic<std::uint64_t> mt_events{result.events};
    sim::Engine& engine = session.engine();
    engine.set_post_event_hook([&engine, &mt_events, budget] {
      if (mt_events.fetch_add(1, std::memory_order_relaxed) + 1 > budget) {
        engine.stop();
      }
    });
    engine.run();
    engine.set_post_event_hook({});
    result.events = mt_events.load(std::memory_order_relaxed);
    if (result.events > budget) {
      livelocked = true;
      result.violations.push_back(Violation{
          "livelock",
          util::cat("event budget exhausted after ", result.events,
                    " events with ", session.engine().pending(),
                    " still pending"),
          session.now()});
    }
  } else {
    while (session.engine().step()) {
      if (++result.events > budget) {
        livelocked = true;
        result.violations.push_back(Violation{
            "livelock",
            util::cat("event budget exhausted after ", result.events,
                      " events with ", session.engine().pending(),
                      " still pending"),
            session.now()});
        break;
      }
      if (crashed_now()) {
        result.crashed = true;
        break;
      }
    }
  }
  result.makespan = session.now() - ready_time;
  if (result.crashed) {
    // Simulated controller death: the journal prefix is all that
    // survives. No end record, no end-state audit — an interrupted run
    // legitimately holds in-flight allocations and unfinished tasks.
    result.journal = scribe->writer().bytes();
    return;
  }
  if (scribe) {
    scribe->record_end(static_cast<std::int64_t>(result.done),
                       static_cast<std::int64_t>(result.failed),
                       static_cast<std::int64_t>(result.canceled),
                       result.events);
  }

  if (monitor) {
    monitor->finish();
    for (const auto& v : monitor->violations()) {
      result.violations.push_back(v);
    }
  }

  // Ingress oracles: every offer got exactly one verdict (conservation
  // under rejection), every accept reached the TMGR, closed-loop clients
  // honored their in-flight bound, and the service drained (unless the
  // run livelocked, in which case the drain is the livelock's problem).
  if (svc != nullptr) {
    const auto istats = svc->stats();
    if (!istats.conserved()) {
      result.violations.push_back(Violation{
          "ingress-conservation",
          util::cat("offered ", istats.offered, " != accepted ",
                    istats.accepted, " + rejected ", istats.rejected,
                    " + deferred ", istats.deferred),
          session.now()});
    }
    if (istats.accepted != tmgr.submitted()) {
      result.violations.push_back(Violation{
          "ingress-conservation",
          util::cat("accepted ", istats.accepted,
                    " offers but the TMGR holds ", tmgr.submitted(),
                    " submissions"),
          session.now()});
    }
    const auto cfg = ingress_config(spec);
    if (cfg.arrival.kind == ingress::ArrivalKind::kClosed &&
        istats.max_client_in_flight >
            static_cast<std::uint64_t>(cfg.in_flight_limit)) {
      result.violations.push_back(Violation{
          "ingress-bound",
          util::cat("a closed-loop client reached ",
                    istats.max_client_in_flight,
                    " in-flight requests (limit ", cfg.in_flight_limit, ")"),
          session.now()});
    }
    if (!livelocked && !svc->quiescent()) {
      result.violations.push_back(Violation{
          "ingress-conservation",
          "engine drained but the ingress service is not quiescent",
          session.now()});
    }
  }

  if (opts.recovery != nullptr) {
    if (scribe->diverged()) {
      const auto& d = scribe->divergence();
      result.violations.push_back(Violation{
          "recovery-divergence",
          util::cat("replay diverged from the journal at record #", d.index,
                    ": expected [", chomp(d.expected), "] got [",
                    chomp(d.got), "]"),
          session.now()});
    } else if (!scribe->replay_complete()) {
      result.violations.push_back(Violation{
          "recovery-divergence",
          util::cat("replay ended after ", scribe->cursor(), " of ",
                    opts.recovery->prefix().size(),
                    " journaled records"),
          session.now()});
    }
  }

  if (scribe) result.journal = scribe->writer().bytes();
  // Restore-path equivalence digests, in backend registration order
  // (deterministic): compared against the uninterrupted reference by
  // check_recovery and the RecoveryContract suite.
  for (const auto& name : pilot.agent().backend_names()) {
    if (auto* b = pilot.agent().backend(name)) {
      result.backend_summaries.push_back(b->restore_summary());
    }
  }

  // Fingerprint: full trace + every task's final record. Bit-identical
  // across runs of the same spec iff the simulation is deterministic.
  std::ostringstream os;
  session.trace().write_csv(os);
  std::uint64_t h = fnv1a(1469598103934665603ull, os.str());
  tmgr.for_each_task([&h](const core::Task& task) {
    h = fnv1a(h, util::cat(task.uid(), "|", core::to_string(task.state()), "|",
                           task.backend(), "|", task.attempts(), "\n"));
  });
  if (svc != nullptr) {
    // Ingress counters join the fingerprint only when armed, so classic
    // (clients=0) fingerprints stay comparable with pre-ingress baselines.
    const auto istats = svc->stats();
    h = fnv1a(h, util::cat("ingress|", istats.offered, "|", istats.accepted,
                           "|", istats.rejected, "|", istats.deferred, "|",
                           istats.batches, "|", istats.launched, "|",
                           istats.completed, "\n"));
  }
  result.fingerprint = h;
}

}  // namespace

RunResult run_scenario(const ScenarioSpec& spec, const RunOptions& opts) {
  RunResult result;
  try {
    run_impl(spec, opts, result);
  } catch (const std::exception& e) {
    result.violations.push_back(Violation{"exception", e.what(), 0.0});
  }
  return result;
}

std::vector<Violation> check_recovery(const ScenarioSpec& spec,
                                      const RunResult& reference,
                                      const RunOptions& opts) {
  std::vector<Violation> out;
  if (spec.crash_at == 0) return out;
  if (reference.journal.empty()) {
    out.push_back(Violation{
        "recovery", "reference run recorded no journal (opts.journal off?)",
        0.0});
    return out;
  }

  // 1. Re-run to the crash point: the controller dies once its journal
  // holds spec.crash_at records. Pre-crash invariant violations are the
  // uninterrupted reference's to report; here only the bytes matter.
  RunOptions copts = opts;
  copts.journal = true;
  copts.crash_at = spec.crash_at;
  copts.recovery = nullptr;
  const RunResult crashed = run_scenario(spec, copts);

  // 2. Torn tail: a crash mid-write loses a few trailing bytes. Seeded
  // and deterministic; the header record always survives (a journal whose
  // very first write was torn has nothing to recover, by construction).
  std::string bytes = crashed.journal;
  sim::RngStream torn(spec.seed ^ spec.crash_at, "check.torn-tail");
  const std::size_t keep = bytes.find('\n') + 1;
  std::size_t chop = static_cast<std::size_t>(torn.uniform_int(0, 48));
  chop = std::min(chop, bytes.size() > keep ? bytes.size() - keep
                                            : std::size_t{0});
  bytes.resize(bytes.size() - chop);

  // 3. Recover by deterministic re-execution, validating every emitted
  // record against the surviving prefix, then compare the finished run
  // byte-for-byte against the uninterrupted reference.
  try {
    const journal::RecoveryManager rm(bytes);
    if (!spec.recover) return out;  // survive-only: prefix integrity checked
    RunOptions ropts = opts;
    ropts.journal = true;
    ropts.crash_at = 0;
    ropts.recovery = &rm;
    const RunResult recovered =
        run_scenario(ScenarioSpec::parse(rm.spec_line()), ropts);
    for (const auto& v : recovered.violations) out.push_back(v);
    if (recovered.journal != reference.journal) {
      // Locate the first differing record for the report.
      const auto split_lines = [](const std::string& text) {
        std::vector<std::string> lines;
        std::string line;
        std::istringstream is(text);
        while (std::getline(is, line)) lines.push_back(line);
        return lines;
      };
      const auto ref = split_lines(reference.journal);
      const auto got = split_lines(recovered.journal);
      std::size_t i = 0;
      while (i < ref.size() && i < got.size() && ref[i] == got[i]) ++i;
      out.push_back(Violation{
          "recovery",
          util::cat("recovered journal diverged from the uninterrupted run "
                    "at record #",
                    i, ": expected [", i < ref.size() ? ref[i] : "<eof>",
                    "] got [", i < got.size() ? got[i] : "<eof>", "]"),
          0.0});
    }
    if (recovered.fingerprint != reference.fingerprint ||
        recovered.done != reference.done ||
        recovered.failed != reference.failed ||
        recovered.canceled != reference.canceled ||
        recovered.makespan != reference.makespan) {
      out.push_back(Violation{
          "recovery",
          util::cat("recovered terminal state mismatch: fingerprint ",
                    recovered.fingerprint, " vs ", reference.fingerprint,
                    ", done ", recovered.done, " vs ", reference.done,
                    ", failed ", recovered.failed, " vs ", reference.failed,
                    ", canceled ", recovered.canceled, " vs ",
                    reference.canceled, ", makespan ", recovered.makespan,
                    " vs ", reference.makespan),
          0.0});
    }
    if (recovered.backend_summaries != reference.backend_summaries) {
      std::string detail = "restored backend state diverged:";
      for (std::size_t i = 0; i < reference.backend_summaries.size() ||
                              i < recovered.backend_summaries.size();
           ++i) {
        const std::string& want = i < reference.backend_summaries.size()
                                      ? reference.backend_summaries[i]
                                      : "<absent>";
        const std::string& have = i < recovered.backend_summaries.size()
                                      ? recovered.backend_summaries[i]
                                      : "<absent>";
        if (want != have) {
          detail += util::cat(" [", want, "] vs [", have, "]");
        }
      }
      out.push_back(Violation{"recovery", detail, 0.0});
    }
  } catch (const std::exception& e) {
    out.push_back(Violation{
        "recovery", util::cat("journal prefix unrecoverable: ", e.what()),
        0.0});
  }
  return out;
}

RunResult run_with_oracles(const ScenarioSpec& spec, const RunOptions& opts) {
  // The recovery oracle compares against the first run's journal, so
  // journal the base runs whenever the spec carries a crash point.
  RunOptions base = opts;
  if (spec.crash_at > 0) base.journal = true;
  RunResult first = run_scenario(spec, base);
  const RunResult second = run_scenario(spec, base);
  if (first.fingerprint != second.fingerprint ||
      first.events != second.events || first.journal != second.journal) {
    first.violations.push_back(Violation{
        "determinism",
        util::cat("same-seed runs diverged: fingerprint ", first.fingerprint,
                  " vs ", second.fingerprint, ", events ", first.events,
                  " vs ", second.events, ", journal bytes ",
                  first.journal.size(), " vs ", second.journal.size()),
        0.0});
  }
  // Sharded full-stack runs must schedule identically to the classic single
  // calendar: the shard split only partitions the data structure, never the
  // event order (docs/sharding.md). Raw event counts legitimately differ —
  // cross-shard hops are mailbox events that do not exist at shards=1 — so
  // the oracle compares the trace/task fingerprints, which capture every
  // observable timestamp and outcome.
  if (spec.shards > 1) {
    ScenarioSpec serial = spec;
    serial.shards = 1;
    const RunResult unsharded = run_scenario(serial, opts);
    if (first.fingerprint != unsharded.fingerprint) {
      first.violations.push_back(Violation{
          "shard-invariance",
          util::cat("shards=", spec.shards, " diverged from shards=1: ",
                    "fingerprint ", first.fingerprint, " vs ",
                    unsharded.fingerprint),
          0.0});
    }
  }
  // The threads dimension, first on the storm kernel (pure engine, no
  // stack): the parallel drain must fingerprint-match the serial
  // single-shard reference.
  if (spec.threads > 1) {
    sim::StormConfig storm;
    storm.seed = spec.seed;
    sim::StormConfig reference = storm;  // shards=1, threads=1
    storm.shards = std::max(spec.shards, spec.threads);
    storm.threads = spec.threads;
    const auto parallel = sim::run_storm(storm);
    const auto serial = sim::run_storm(reference);
    if (parallel.fingerprint != serial.fingerprint ||
        parallel.events != serial.events) {
      first.violations.push_back(Violation{
          "storm-determinism",
          util::cat("storm(shards=", storm.shards, ",threads=", storm.threads,
                    ") diverged from serial: fingerprint ",
                    parallel.fingerprint, " vs ", serial.fingerprint,
                    ", events ", parallel.events, " vs ", serial.events),
          0.0});
    }
  }
  // Then on the full stack: a bare threaded run (engine_threads =
  // spec.threads, shards raised to cover the pool) must reach the same
  // terminal state as the monitored serial run — the confinement proofs
  // (docs/sharding.md) promise the parallel drain is observably
  // identical, and this oracle holds them to it. Bug-injection and
  // journaled specs stay serial: their whole point is the between-events
  // observers that bare mode turns off. Raw event counts are not
  // compared — the shard count legitimately changes the number of
  // cross-shard hop events.
  if (spec.threads > 1 && spec.bug == "none" && spec.crash_at == 0 &&
      !opts.journal && opts.recovery == nullptr) {
    ScenarioSpec mt = spec;
    mt.shards = std::max(spec.shards, spec.threads);
    RunOptions bare = opts;
    bare.engine_threads = spec.threads;
    const RunResult threaded = run_scenario(mt, bare);
    for (const auto& v : threaded.violations) first.violations.push_back(v);
    if (threaded.fingerprint != first.fingerprint ||
        threaded.done != first.done || threaded.failed != first.failed ||
        threaded.canceled != first.canceled ||
        threaded.makespan != first.makespan) {
      first.violations.push_back(Violation{
          "thread-invariance",
          util::cat("full stack (shards=", mt.shards, ",engine_threads=",
                    spec.threads, ") diverged from the monitored serial run: ",
                    "fingerprint ", threaded.fingerprint, " vs ",
                    first.fingerprint, ", done ", threaded.done, " vs ",
                    first.done, ", failed ", threaded.failed, " vs ",
                    first.failed, ", canceled ", threaded.canceled, " vs ",
                    first.canceled, ", makespan ", threaded.makespan, " vs ",
                    first.makespan),
          0.0});
    }
  }
  // Crash/recover oracle (docs/recovery.md): crash the controller at the
  // spec's record index, recover from the surviving journal prefix, and
  // demand the recovered run be byte- and state-equivalent to `first`.
  if (spec.crash_at > 0) {
    for (auto& violation : check_recovery(spec, first, opts)) {
      first.violations.push_back(std::move(violation));
    }
  }
  return first;
}

}  // namespace flotilla::check
