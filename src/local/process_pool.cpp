#include "local/process_pool.hpp"

#include <chrono>
#include <csignal>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "util/error.hpp"

namespace flotilla::local {

ProcessPool::ProcessPool(unsigned max_concurrent)
    : max_concurrent_(max_concurrent) {
  FLOT_CHECK(max_concurrent >= 1, "pool needs >= 1 slot");
  reaper_ = std::thread([this] { reaper_loop(); });
}

ProcessPool::~ProcessPool() {
  wait_all();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  state_changed_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

void ProcessPool::spawn(std::vector<std::string> argv, Callback done) {
  FLOT_CHECK(!argv.empty(), "spawn needs an argv");
  std::vector<Finished> failed;
  {
    std::lock_guard lock(mutex_);
    FLOT_CHECK(!stopping_, "spawn on a stopping pool");
    queue_.push_back(Pending{std::move(argv), std::move(done)});
    start_pending_locked(&failed);
  }
  state_changed_.notify_all();
  run_callbacks(std::move(failed));
}

bool ProcessPool::start_one_locked(Pending&& pending,
                                   std::vector<Finished>* failed) {
  std::vector<char*> argv;
  argv.reserve(pending.argv.size() + 1);
  for (auto& arg : pending.argv) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    // Out of process slots system-wide: report as failure. The callback
    // must not run under mutex_ (it may call back into the pool), so it is
    // handed to the caller; the in-flight count keeps wait_all() honest
    // until it actually ran.
    ProcessResult result;
    result.exit_code = 127;
    ++launched_;
    ++completed_;
    ++callbacks_in_flight_;
    failed->push_back(Finished{std::move(pending.done), result});
    return false;
  }
  if (pid == 0) {
    // Child: exec or die with the shell's command-not-found code.
    ::execvp(argv[0], argv.data());
    ::_exit(127);
  }
  ++launched_;
  live_.emplace(pid,
                Live{std::move(pending.done),
                     std::chrono::steady_clock::now()});
  return true;
}

void ProcessPool::start_pending_locked(std::vector<Finished>* failed) {
  while (!queue_.empty() && live_.size() < max_concurrent_) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    start_one_locked(std::move(pending), failed);
  }
}

void ProcessPool::run_callbacks(std::vector<Finished> ready) {
  if (ready.empty()) return;
  for (auto& finished : ready) {
    if (finished.done) finished.done(finished.result);
  }
  {
    std::lock_guard lock(mutex_);
    callbacks_in_flight_ -= static_cast<unsigned>(ready.size());
  }
  state_changed_.notify_all();
}

void ProcessPool::reaper_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    state_changed_.wait(lock,
                        [this] { return stopping_ || !live_.empty(); });
    if (live_.empty()) {
      if (stopping_) return;
      continue;
    }
    lock.unlock();
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    lock.lock();
    if (pid <= 0) continue;  // interrupted or not ours
    const auto it = live_.find(pid);
    if (it == live_.end()) continue;  // not a pool child
    ProcessResult result;
    if (WIFEXITED(status)) {
      result.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      result.signaled = true;
      result.term_signal = WTERMSIG(status);
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      it->second.started)
            .count();
    std::vector<Finished> ready;
    ready.push_back(Finished{std::move(it->second.done), result});
    ++callbacks_in_flight_;
    live_.erase(it);
    ++completed_;
    start_pending_locked(&ready);
    lock.unlock();
    run_callbacks(std::move(ready));
    lock.lock();
  }
}

void ProcessPool::wait_all() {
  std::unique_lock lock(mutex_);
  // Includes callbacks still running on the reaper thread: "everything
  // completed" must mean the completion callbacks have finished too, or a
  // caller could tear down state a callback is about to touch.
  state_changed_.wait(lock, [this] {
    return queue_.empty() && live_.empty() && callbacks_in_flight_ == 0;
  });
}

std::uint64_t ProcessPool::launched() const {
  std::lock_guard lock(mutex_);
  return launched_;
}

std::uint64_t ProcessPool::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

unsigned ProcessPool::running() const {
  std::lock_guard lock(mutex_);
  return static_cast<unsigned>(live_.size());
}

}  // namespace flotilla::local
