#include "local/process_pool.hpp"

#include <chrono>
#include <csignal>

#include <sys/wait.h>
#include <unistd.h>

#include "util/error.hpp"

namespace flotilla::local {

ProcessPool::ProcessPool(unsigned max_concurrent)
    : max_concurrent_(max_concurrent) {
  FLOT_CHECK(max_concurrent >= 1, "pool needs >= 1 slot");
  reaper_ = std::thread([this] { reaper_loop(); });
}

ProcessPool::~ProcessPool() {
  wait_all();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  state_changed_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

void ProcessPool::spawn(std::vector<std::string> argv, Callback done) {
  FLOT_CHECK(!argv.empty(), "spawn needs an argv");
  {
    std::lock_guard lock(mutex_);
    FLOT_CHECK(!stopping_, "spawn on a stopping pool");
    queue_.push_back(Pending{std::move(argv), std::move(done)});
    start_pending_locked();
  }
  state_changed_.notify_all();
}

bool ProcessPool::start_one_locked(Pending&& pending) {
  std::vector<char*> argv;
  argv.reserve(pending.argv.size() + 1);
  for (auto& arg : pending.argv) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    // Out of process slots system-wide: report as failure.
    ProcessResult result;
    result.exit_code = 127;
    ++launched_;
    ++completed_;
    if (pending.done) pending.done(result);
    return false;
  }
  if (pid == 0) {
    // Child: exec or die with the shell's command-not-found code.
    ::execvp(argv[0], argv.data());
    ::_exit(127);
  }
  ++launched_;
  live_.emplace(pid,
                Live{std::move(pending.done),
                     std::chrono::steady_clock::now()});
  return true;
}

void ProcessPool::start_pending_locked() {
  while (!queue_.empty() && live_.size() < max_concurrent_) {
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    start_one_locked(std::move(pending));
  }
}

void ProcessPool::reaper_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    state_changed_.wait(lock,
                        [this] { return stopping_ || !live_.empty(); });
    if (live_.empty()) {
      if (stopping_) return;
      continue;
    }
    lock.unlock();
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    lock.lock();
    if (pid <= 0) continue;  // interrupted or not ours
    const auto it = live_.find(pid);
    if (it == live_.end()) continue;  // not a pool child
    ProcessResult result;
    if (WIFEXITED(status)) {
      result.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      result.signaled = true;
      result.term_signal = WTERMSIG(status);
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      it->second.started)
            .count();
    Callback done = std::move(it->second.done);
    live_.erase(it);
    ++completed_;
    start_pending_locked();
    lock.unlock();
    if (done) done(result);
    lock.lock();
    state_changed_.notify_all();
  }
}

void ProcessPool::wait_all() {
  std::unique_lock lock(mutex_);
  state_changed_.wait(lock,
                      [this] { return queue_.empty() && live_.empty(); });
}

std::uint64_t ProcessPool::launched() const {
  std::lock_guard lock(mutex_);
  return launched_;
}

std::uint64_t ProcessPool::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

unsigned ProcessPool::running() const {
  std::lock_guard lock(mutex_);
  return static_cast<unsigned>(live_.size());
}

}  // namespace flotilla::local
