// Real process execution: a bounded pool of forked child processes.
//
// The simulation backends model task launching at Frontier scale; this is
// the native seed of the same execution model — actually fork/exec'ing
// executables on the local host with bounded concurrency and asynchronous
// completion callbacks, the way an RP agent's executor drives real tasks
// on its allocation. Used by the local-execution example and as the
// building block for running Flotilla workloads for real at laptop scale.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

namespace flotilla::local {

struct ProcessResult {
  int exit_code = -1;      // valid when !signaled
  bool signaled = false;   // terminated by a signal
  int term_signal = 0;     // valid when signaled
  double wall_seconds = 0.0;

  bool success() const { return !signaled && exit_code == 0; }
};

class ProcessPool {
 public:
  using Callback = std::function<void(const ProcessResult&)>;

  // At most `max_concurrent` children run at once; further spawns queue.
  explicit ProcessPool(unsigned max_concurrent = 4);
  ~ProcessPool();

  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  // Schedules `argv` (argv[0] resolved via PATH). `done` runs on the
  // reaper thread; keep it short and thread-safe. A spawn failure is
  // reported as exit_code 127 (shell convention for "command not found").
  void spawn(std::vector<std::string> argv, Callback done);

  // Blocks until every spawned and queued process has completed.
  void wait_all();

  std::uint64_t launched() const;
  std::uint64_t completed() const;
  unsigned running() const;

 private:
  struct Pending {
    std::vector<std::string> argv;
    Callback done;
  };

  // A completion whose user callback still has to run. Callbacks execute
  // outside mutex_ (so they may call back into the pool), but wait_all()
  // must not return before they finish — callbacks_in_flight_ tracks them.
  struct Finished {
    Callback done;
    ProcessResult result;
  };

  void reaper_loop();
  // Must hold mutex_; starts queued work while below the concurrency cap.
  // Launch failures are appended to `failed` for the caller to report
  // after releasing the lock.
  void start_pending_locked(std::vector<Finished>* failed);
  bool start_one_locked(Pending&& pending, std::vector<Finished>* failed);
  // Runs callbacks without the lock held, then settles the in-flight count.
  void run_callbacks(std::vector<Finished> ready);

  unsigned max_concurrent_;
  mutable std::mutex mutex_;
  std::condition_variable state_changed_;
  std::deque<Pending> queue_;
  struct Live {
    Callback done;
    std::chrono::steady_clock::time_point started;
  };
  std::map<pid_t, Live> live_;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;
  unsigned callbacks_in_flight_ = 0;
  bool stopping_ = false;
  std::thread reaper_;
};

}  // namespace flotilla::local
