// Per-node resource bookkeeping.
//
// Cores and GPUs are tracked as bitmasks (Frontier exposes at most 64
// schedulable cores and 8 GCDs per node), so allocate/free are a handful of
// bit operations — important because the 1024-node experiments place
// hundreds of thousands of tasks.
#pragma once

#include <cstdint>
#include <optional>

#include "platform/types.hpp"

namespace flotilla::platform {

class Cluster;

// The core/GPU indices a task occupies on one node.
struct NodeSlice {
  NodeId node = 0;
  std::uint64_t core_mask = 0;
  std::uint8_t gpu_mask = 0;

  int cores() const;
  int gpus() const;

  friend bool operator==(const NodeSlice&, const NodeSlice&) = default;
};

class Node {
 public:
  Node(NodeId id, int cores, int gpus);

  NodeId id() const { return id_; }
  int total_cores() const { return total_cores_; }
  int total_gpus() const { return total_gpus_; }
  int free_cores() const { return free_cores_; }
  int free_gpus() const { return free_gpus_; }
  bool idle() const {
    return free_cores_ == total_cores_ && free_gpus_ == total_gpus_;
  }

  // Claims `cores` cores and `gpus` GPUs; returns the claimed slice or
  // nullopt if the node cannot satisfy the request.
  std::optional<NodeSlice> allocate(int cores, int gpus);

  // Returns a previously allocated slice. Double-free is an invariant
  // violation and throws.
  void release(const NodeSlice& slice);

  // Wired by the owning Cluster so capacity changes reach its observers.
  void attach_owner(Cluster* owner) { owner_ = owner; }

 private:
  void notify_changed();

  Cluster* owner_ = nullptr;
  NodeId id_;
  int total_cores_;
  int total_gpus_;
  int free_cores_;
  int free_gpus_;
  std::uint64_t core_free_mask_;  // bit set = core free
  std::uint8_t gpu_free_mask_;
};

}  // namespace flotilla::platform
