// Shared placement algorithms used by the backend schedulers (slurmctld's
// step scheduler and Flux's fluxion-equivalent).
//
// Two demand shapes:
//  - tightly coupled (cores_per_node > 0): whole-chunk placement of
//    cores_per_node cores on each of ceil(cores/cores_per_node) nodes, GPUs
//    spread evenly across the chunk nodes; all-or-nothing.
//  - loosely coupled (cores_per_node == 0): greedy first-fit from a rotating
//    cursor so successive small tasks spread across the range instead of
//    rescanning from node 0.
#pragma once

#include <optional>

#include "platform/cluster.hpp"
#include "platform/placement.hpp"

namespace flotilla::platform {

// Attempts to place `demand` within `range` of `cluster`. On success the
// slices are already allocated on the nodes; on failure nothing is held.
// `cursor` (optional) carries the rotating scan position across calls.
std::optional<Placement> try_place(Cluster& cluster, NodeRange range,
                                   const ResourceDemand& demand,
                                   NodeId* cursor = nullptr);

// Frees every slice of `placement` back to its node.
void release_placement(Cluster& cluster, const Placement& placement);

}  // namespace flotilla::platform
