// Cluster model: a named platform profile plus a vector of nodes.
//
// The Frontier profile matches the paper's experiment setup: 64 physical
// cores per node of which 8 are reserved for the OS, leaving cpn = 56
// schedulable cores at SMT=1 (the paper's "4 nodes ... total of 224 cores"),
// and 8 MI250X GCDs exposed as 8 GPUs.
#pragma once

#include <string>
#include <vector>

#include "platform/node.hpp"
#include "platform/placement.hpp"
#include "platform/types.hpp"

namespace flotilla::platform {

struct PlatformSpec {
  std::string name = "generic";
  int cores_per_node = 56;
  int gpus_per_node = 8;
  int smt = 1;  // hardware threads exposed per core
  // Site-enforced ceiling on concurrently active srun invocations per
  // allocation (Frontier: 112, measured in the paper's Experiment srun).
  std::int64_t srun_concurrency_ceiling = 112;
};

// Frontier, OLCF — the paper's platform.
PlatformSpec frontier_spec();

class Cluster {
 public:
  // Observes per-node capacity changes. Free-capacity indexes (the
  // scheduling subsystem's FreeResourceIndex) subscribe here so they stay
  // coherent no matter who allocates — a placer, a test poking nodes
  // directly, or overlapping backends sharing a span.
  class Observer {
   public:
    virtual ~Observer() = default;
    // Fired after every successful allocate/release on `node`.
    virtual void node_changed(NodeId node) = 0;
  };

  Cluster(PlatformSpec spec, int num_nodes);

  // Nodes notify their owning cluster by address; pinning the cluster in
  // place keeps those back-references (and observers) valid.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const PlatformSpec& spec() const { return spec_; }
  int size() const { return static_cast<int>(nodes_.size()); }

  Node& node(NodeId id);
  const Node& node(NodeId id) const;

  NodeRange all_nodes() const { return NodeRange{0, size()}; }

  // Frees every slice of `placement` back to its node.
  void release(const Placement& placement);

  void add_observer(Observer* observer);
  void remove_observer(Observer* observer);
  // Called by Node after each successful allocate/release.
  void notify_node_changed(NodeId id);

  // Aggregates over a node range.
  std::int64_t total_cores(NodeRange range) const;
  std::int64_t total_gpus(NodeRange range) const;
  std::int64_t free_cores(NodeRange range) const;
  std::int64_t free_gpus(NodeRange range) const;

  // Splits `range` into `parts` near-equal contiguous partitions (first
  // partitions get the remainder). Throws if parts > range.count.
  static std::vector<NodeRange> partition(NodeRange range, int parts);

 private:
  PlatformSpec spec_;
  std::vector<Node> nodes_;
  std::vector<Observer*> observers_;
};

}  // namespace flotilla::platform
