// A placement is the set of node slices a task occupies — the runtime
// equivalent of a Flux R-list or a Slurm step layout.
#pragma once

#include <vector>

#include "platform/node.hpp"

namespace flotilla::platform {

struct Placement {
  std::vector<NodeSlice> slices;

  bool empty() const { return slices.empty(); }
  int node_count() const { return static_cast<int>(slices.size()); }

  std::int64_t total_cores() const {
    std::int64_t n = 0;
    for (const auto& s : slices) n += s.cores();
    return n;
  }

  std::int64_t total_gpus() const {
    std::int64_t n = 0;
    for (const auto& s : slices) n += s.gpus();
    return n;
  }
};

}  // namespace flotilla::platform
