// Config-driven platform and calibration definitions.
//
// RADICAL-Pilot ships per-machine "resource config" files; Flotilla's
// equivalent lets users describe their platform and override calibration
// constants from key=value configs without recompiling:
//
//   platform.name = summit
//   platform.cores_per_node = 42
//   platform.gpus_per_node = 6
//   platform.srun_ceiling = 0          # no srun ceiling (LSF machine)
//   slurm.ctl_step_base = 0.004
//   flux.exec_spawn = 0.030
//   ...
//
// Unknown keys under known prefixes are rejected (they are always typos in
// an experiment sweep); unrelated prefixes are ignored.
#pragma once

#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "util/config.hpp"

namespace flotilla::platform {

// Summit, OLCF — the platform of the paper's predecessor study ([32]:
// ORTE/JSM many-task characterization): 2x21 usable POWER9 cores and
// 6 V100 GPUs per node, LSF-managed (no srun ceiling).
PlatformSpec summit_spec();

// Looks up a built-in profile by name ("frontier", "summit", "generic");
// throws util::Error for unknown names.
PlatformSpec spec_by_name(const std::string& name);

// Builds a spec from `platform.*` keys, starting from the built-in profile
// named by `platform.name` (default "generic").
PlatformSpec spec_from_config(const util::Config& config);

// Applies `slurm.*`, `flux.*`, `dragon.*`, `prrte.*` and `core.*` overrides
// on top of the default Frontier calibration.
Calibration calibration_from_config(const util::Config& config);

}  // namespace flotilla::platform
