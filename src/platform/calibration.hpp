// Calibration profile: every fitted control-plane latency constant in one
// place, each documented with the paper observation it reproduces.
//
// The rule (DESIGN.md §4.1): control *logic* is real code; only point
// latencies of physical operations (RPC service, fork/exec, bootstrap) are
// parameterized here. Experiment shapes — who wins, where curves saturate or
// cross — must emerge from the simulated queueing, not from these numbers
// directly.
//
// Primary anchors from the paper (§4, Figs 4–8):
//   srun:   152 tasks/s at 1 node, 61 at 4 nodes, declining with scale;
//           hard ceiling of 112 concurrent sruns => 50% utilization on
//           4 nodes (224 cores).
//   flux:   ~28 tasks/s at 1 node, ~300 average at 1024 nodes, peak 744
//           with one instance; up to 930 with multiple instances.
//   dragon: 343/380/204 tasks/s at 4/16/64 nodes (exec tasks), max 622.
//   hybrid: up to 1,547 tasks/s; RP task-management ceiling ~1.55k/s.
//   boot:   ~20 s per Flux instance, ~9 s per Dragon instance (Fig 7),
//           roughly independent of instance size.
#pragma once

#include <cstdint>

namespace flotilla::platform {

// --- Slurm / srun -----------------------------------------------------------
struct SlurmCalibration {
  // slurmctld step-creation RPC handling is serialized in the controller.
  // Fixed cost plus a per-allocation-node term (credential + layout cover
  // the full allocation): fitted to 1/(base + 1*per_node) = 152 tasks/s at
  // 1 node and 1/(base + 4*per_node) = 61 tasks/s at 4 nodes.
  double ctl_step_base = 3.3e-3;       // s
  double ctl_step_per_node = 3.27e-3;  // s per node of the allocation
  // Quadratic term for very large allocations: credential construction and
  // the controller's communication fanout scale worse than linearly. At
  // 1,024 nodes this puts a step create near 12 s, which (serialized over
  // ~1,800 heterogeneous tasks) reproduces the paper's inflated srun
  // makespan at scale (Fig 8b: ~44,000 s vs Flux's ~17,500 s). Negligible
  // (<0.2 ms) at the 1-4 node scales that anchor Fig 5(a).
  double ctl_step_per_node_sq = 1.14e-5;  // s per (allocation node)^2
  // Controller-side cost of retiring a completed step.
  double ctl_complete_cost = 1.0e-3;  // s
  // srun client fork + connect before it contacts the controller. Does not
  // occupy the controller.
  double srun_client_startup = 0.050;  // s
  // slurmstepd fork/exec of the task on each target node.
  double node_task_spawn = 4.0e-3;  // s
  // "Job step creation temporarily disabled, retrying": when a step cannot
  // get resources, srun backs off and retries. This polling (vs Flux's
  // event-driven launch) is what stretches IMPECCABLE wave transitions
  // (Fig 8 a,b).
  double step_retry_initial = 2.0;   // s, first retry delay
  double step_retry_max = 60.0;      // s, backoff cap (Slurm's default)
  double step_retry_factor = 2.0;    // exponential backoff factor
  // Each retry costs the controller another RPC: a fixed part plus a
  // fraction of the step-create work (the placement attempt is re-run), so
  // backlogs of polling sruns congest the launch path — the paper's
  // "frequent dips" in the srun start rate (Fig 8 a,b).
  double ctl_retry_cost = 1.2e-3;   // s
  double ctl_retry_fraction = 0.1;  // of the per-node step-create cost
  // Site ceiling on concurrently active srun invocations (paper: 112).
  std::int64_t concurrency_ceiling = 112;
  // PMI wireup for multi-node (MPI) steps: rank exchange through the
  // controller-mediated PMI path (§3.1: "traditional MPI-based launch
  // mechanisms suffer from high startup latencies, centralized
  // bottlenecks"). Applied once per multi-node step on top of the spawn.
  double mpi_wireup_base = 0.30;      // s
  double mpi_wireup_per_node = 10e-3;  // s per step node
  double jitter_cv = 0.15;  // lognormal CV applied to service times
};

// --- Flux -------------------------------------------------------------------
struct FluxCalibration {
  // Rank-0 broker costs; ingest + schedule serialize on rank 0, which is
  // what caps a single instance near 1/(ingest+sched) ~ 800/s (paper peak
  // 744 tasks/s), degrading under completion-event load.
  double ingest_cost = 0.25e-3;  // s, job-ingest validate + enqueue
  double sched_cost = 1.00e-3;   // s, alloc decision per job
  // fluxion's match cost grows with the instance's resource graph; this
  // term bends single-instance throughput down on very large partitions
  // (Fig 6: at one instance, 256 nodes outperforms 1024 nodes).
  double sched_cost_per_node = 3.3e-6;  // s per partition node per decision
  // Rank-0 share of job-exec coordination. The exec service fans work out
  // to the per-node brokers, so the rank-0 cost amortizes roughly with the
  // square root of the instance size: exec_coord_base / sqrt(nodes) per
  // job. Fit: 1/(sched+coord(4)) ~ 56 tasks/s at 4 nodes (Fig 6, one
  // instance) while 256-node instances still reach ~280 tasks/s.
  double exec_coord_base = 33.0e-3;  // s at one node
  double event_cost = 0.35e-3;   // s, per job-completion event
  // Per-node exec broker fork/exec of the job shim + task; one spawn at a
  // time per node. 1/0.035 = 28.6 tasks/s on one node (paper: ~28).
  double exec_spawn = 35.0e-3;            // s
  int exec_parallel_per_node = 1;         // concurrent spawns per node
  // Instance bootstrap (Fig 7: ~20 s, roughly flat in size).
  double bootstrap_base = 18.5;      // s
  double bootstrap_per_node = 0.03;  // s per node in the instance
  // PMI wireup for multi-node jobs: Flux's broker-native PMI is the fast
  // path for tightly coupled tasks (§3.1).
  double mpi_wireup_base = 0.10;      // s
  double mpi_wireup_per_node = 3e-3;  // s per job node
  double jitter_cv = 0.20;
};

// --- Dragon -----------------------------------------------------------------
struct DragonCalibration {
  // Central dispatcher service time per task; process (exec) tasks go
  // through full process-group setup, function tasks are dispatched to warm
  // workers in-memory. Fit: (1 - infra_share(4)) / dispatch_exec ~ 343
  // tasks/s (Fig 5c at 4 nodes).
  double dispatch_exec = 2.80e-3;  // s
  double dispatch_func = 1.00e-3;  // s
  // Node-local service fork/exec for process tasks (parallel across nodes).
  double node_spawn_exec = 4.0e-3;  // s
  // In-memory function start on a warm worker.
  double func_start = 0.3e-3;  // s
  // Infrastructure traffic (heartbeats, channel management) multiplexes
  // onto the same dispatcher event loop: each node costs `infra_cost` of
  // dispatcher time every `infra_period`, consuming a processor-sharing
  // fraction infra_cost*nodes/infra_period of its capacity. This is the
  // centralized-runtime drag that bends throughput down at 64 nodes
  // (Fig 5c: 380 -> 204 tasks/s).
  double infra_period = 0.20;     // s
  double infra_cost = 1.40e-3;    // s of dispatcher time per node per period
  // Instance bootstrap (Fig 7: ~9 s).
  double bootstrap_base = 8.6;       // s
  double bootstrap_per_node = 0.02;  // s per node
  // RP-side startup timeout guarding against hung bootstrap (§3.2.2).
  double startup_timeout = 60.0;  // s
  // PMI wireup for multi-node process groups: Dragon has no optimized PMI
  // fabric, so tightly coupled startup is its slowest path.
  double mpi_wireup_base = 0.50;       // s
  double mpi_wireup_per_node = 15e-3;  // s per group node
  double jitter_cv = 0.18;
};

// --- PRRTE / DVM --------------------------------------------------------------
struct PrrteCalibration {
  // One-time Distributed Virtual Machine wireup: prte daemons start on
  // every node and connect once; per-task launches are then cheap (the
  // "minimal per-task overhead" design point of §5).
  double dvm_startup_base = 4.5;        // s
  double dvm_startup_per_node = 0.02;   // s per node
  // Head daemon relays each spawn request (serialized, cheap).
  double head_relay_cost = 1.2e-3;  // s (~800 relays/s)
  // Per-node prted fork/exec of the ranks; parallel across nodes.
  double daemon_spawn_cost = 6.0e-3;  // s
  // PMIx-native wireup for multi-node jobs.
  double mpi_wireup_base = 0.15;      // s
  double mpi_wireup_per_node = 4e-3;  // s per job node
  double jitter_cv = 0.15;
};

// --- RADICAL-Pilot core -----------------------------------------------------
struct CoreCalibration {
  // TMGR intake/translation per task.
  double tmgr_task_cost = 0.20e-3;  // s
  // Batched intake (flux-core job-ingest style: one KVS transaction per
  // batch): fixed transaction cost plus a small per-task increment. A
  // full 64-task batch costs base + 64*per_task = 3.5 ms (~55 us/task)
  // vs 64 * tmgr_task_cost = 12.8 ms serialized — the amortization that
  // lets service-mode ingress (src/ingress) sustain >10k accepts/s.
  double tmgr_batch_base = 0.30e-3;      // s per batch transaction
  double tmgr_batch_per_task = 0.05e-3;  // s per task in the batch
  // Agent scheduler decision per task.
  double agent_sched_cost = 0.25e-3;  // s
  // Executor-side serialization + submit RPC per task, per backend family.
  // The flux value sets RP's ~950 tasks/s multi-instance ceiling (paper:
  // max 930 with flux_n); flux+dragon adds an independent executor path,
  // lifting the aggregate toward the observed ~1,550 tasks/s.
  double submit_cost_flux = 1.05e-3;    // s
  double submit_cost_srun = 0.80e-3;    // s
  double submit_cost_dragon = 0.60e-3;  // s
  double submit_cost_prrte = 0.70e-3;   // s
  // Completion bookkeeping per task.
  double collect_cost = 0.15e-3;  // s
  // Agent bootstrap on top of backend bootstrap.
  double agent_bootstrap = 2.0;  // s
  // Staging (Fig 1: StagerInput/StagerOutput, "multiple instances of that
  // component can execute concurrently"): each stager instance streams one
  // transfer at a time at the shared-filesystem per-stream bandwidth.
  int stager_instances = 4;
  double fs_stream_bandwidth_mbps = 1600.0;  // MB/s per concurrent stream
  double stage_latency = 4.0e-3;             // s per transfer (metadata)
  double jitter_cv = 0.10;
};

struct Calibration {
  SlurmCalibration slurm;
  FluxCalibration flux;
  DragonCalibration dragon;
  PrrteCalibration prrte;
  CoreCalibration core;
};

// Default profile fitted to the paper's Frontier measurements.
inline Calibration frontier_calibration() { return Calibration{}; }

// Conservative lookahead window for the sharded engine (docs/sharding.md):
// the smallest calibrated latency of any cross-component control-plane
// hop. No interaction between two components — and therefore no
// cross-shard event — can take effect sooner than this, so shards may
// safely drain [T, T + conservative_lookahead) concurrently without a
// delivery ever landing inside an already-drained window. The full stack
// currently runs the engine at lookahead 0 (same-timestamp batch drain,
// which the monotonic-time invariant check requires); this derivation is
// what a positive-window deployment would use, and platform_test pins it
// against the calibration constants.
inline double conservative_lookahead(const Calibration& c) {
  double min_hop = c.core.tmgr_task_cost;
  const double hops[] = {
      c.core.collect_cost,      c.core.agent_sched_cost,
      c.flux.ingest_cost,       c.flux.event_cost,
      c.dragon.func_start,      c.dragon.dispatch_func,
      c.slurm.ctl_complete_cost, c.prrte.head_relay_cost,
  };
  for (const double hop : hops) {
    if (hop < min_hop) min_hop = hop;
  }
  return min_hop;
}

}  // namespace flotilla::platform
