#include "platform/node.hpp"

#include <bit>

#include "platform/cluster.hpp"
#include "util/error.hpp"

namespace flotilla::platform {

namespace {

// Lowest `n` set bits of `mask`; requires popcount(mask) >= n.
std::uint64_t take_lowest(std::uint64_t mask, int n) {
  std::uint64_t taken = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t bit = mask & (~mask + 1);  // lowest set bit
    taken |= bit;
    mask ^= bit;
  }
  return taken;
}

}  // namespace

int NodeSlice::cores() const { return std::popcount(core_mask); }
int NodeSlice::gpus() const {
  return std::popcount(static_cast<unsigned>(gpu_mask));
}

Node::Node(NodeId id, int cores, int gpus)
    : id_(id),
      total_cores_(cores),
      total_gpus_(gpus),
      free_cores_(cores),
      free_gpus_(gpus) {
  FLOT_CHECK(cores >= 1 && cores <= 64, "node cores out of range: ", cores);
  FLOT_CHECK(gpus >= 0 && gpus <= 8, "node gpus out of range: ", gpus);
  core_free_mask_ =
      cores == 64 ? ~0ULL : ((1ULL << cores) - 1);
  gpu_free_mask_ = static_cast<std::uint8_t>((1U << gpus) - 1);
}

std::optional<NodeSlice> Node::allocate(int cores, int gpus) {
  FLOT_CHECK(cores >= 0 && gpus >= 0, "negative demand");
  if (cores > free_cores_ || gpus > free_gpus_) return std::nullopt;
  NodeSlice slice;
  slice.node = id_;
  slice.core_mask = take_lowest(core_free_mask_, cores);
  slice.gpu_mask =
      static_cast<std::uint8_t>(take_lowest(gpu_free_mask_, gpus));
  core_free_mask_ ^= slice.core_mask;
  gpu_free_mask_ = static_cast<std::uint8_t>(gpu_free_mask_ ^ slice.gpu_mask);
  free_cores_ -= cores;
  free_gpus_ -= gpus;
  notify_changed();
  return slice;
}

void Node::notify_changed() {
  if (owner_ != nullptr) owner_->notify_node_changed(id_);
}

void Node::release(const NodeSlice& slice) {
  FLOT_CHECK(slice.node == id_, "slice released on wrong node: slice.node=",
             slice.node, " node=", id_);
  FLOT_CHECK((core_free_mask_ & slice.core_mask) == 0,
             "double free of cores on node ", id_);
  FLOT_CHECK((gpu_free_mask_ & slice.gpu_mask) == 0,
             "double free of gpus on node ", id_);
  core_free_mask_ |= slice.core_mask;
  gpu_free_mask_ = static_cast<std::uint8_t>(gpu_free_mask_ | slice.gpu_mask);
  free_cores_ += slice.cores();
  free_gpus_ += slice.gpus();
  notify_changed();
}

}  // namespace flotilla::platform
