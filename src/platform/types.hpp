// Basic platform vocabulary shared across backends and the core runtime.
#pragma once

#include <cstdint>
#include <string>

namespace flotilla::platform {

using NodeId = std::int32_t;

// A task's resource demand. `cores` is the total core count across all
// nodes; multi-node demands are split by the placing scheduler.
struct ResourceDemand {
  std::int64_t cores = 1;
  std::int64_t gpus = 0;
  // Cores that must be co-located per node; 0 means "pack greedily".
  std::int64_t cores_per_node = 0;

  friend bool operator==(const ResourceDemand&,
                         const ResourceDemand&) = default;
};

// A contiguous range of nodes, used for allocations and partitions.
struct NodeRange {
  NodeId first = 0;
  std::int32_t count = 0;

  NodeId end() const { return first + count; }
  bool contains(NodeId n) const { return n >= first && n < end(); }

  friend bool operator==(const NodeRange&, const NodeRange&) = default;
};

}  // namespace flotilla::platform
