// TaskBackend: the contract between the RP core and a task runtime system
// (srun/Slurm, Flux, Dragon). Mirrors the integration surface of §3.2:
// asynchronous submission, event-driven state propagation (no polling), and
// explicit bootstrap with failure reporting so the core can apply its
// startup-timeout and failover logic.
#pragma once

#include <functional>
#include <string>

#include "obs/tracer.hpp"
#include "platform/placement.hpp"
#include "platform/types.hpp"
#include "sim/engine.hpp"

namespace flotilla::platform {

enum class TaskModality {
  kExecutable,  // standalone binary (possibly multi-node/MPI)
  kFunction,    // in-memory function task
};

struct LaunchRequest {
  std::string id;  // task uid, unique per session
  ResourceDemand demand;
  sim::Time duration = 0.0;  // payload runtime; 0 models a null task
  TaskModality modality = TaskModality::kExecutable;
  double fail_probability = 0.0;  // fault injection knob
  // For backends without an internal scheduler (self_scheduling() false,
  // e.g. a PRRTE DVM): the placement the agent's scheduler decided on.
  // The agent owns these resources and releases them on completion.
  Placement placement;
  bool preplaced = false;
  // Co-scheduling group (§2): tasks sharing a gang tag are placed
  // atomically and started together. gang_size members form the group.
  std::string gang;
  int gang_size = 0;
  // Scheduling urgency (Flux: 0..31, higher first).
  int priority = 16;
};

struct LaunchOutcome {
  std::string id;
  bool success = true;
  std::string error;
  sim::Time started = 0.0;   // virtual time execution began
  sim::Time finished = 0.0;  // virtual time execution ended
};

class TaskBackend {
 public:
  using ReadyHandler = std::function<void(bool ok, std::string error)>;
  using StartHandler = std::function<void(const std::string& id)>;
  using CompletionHandler = std::function<void(const LaunchOutcome&)>;

  virtual ~TaskBackend() = default;

  virtual const std::string& name() const = 0;

  // Which task modalities this backend can execute.
  virtual bool accepts(TaskModality modality) const = 0;

  // Whether the backend schedules/places tasks itself (Flux, Slurm,
  // Dragon). Backends returning false (PRRTE's DVM model, §5: "delegates
  // coordination and scheduling to external systems") receive preplaced
  // requests from the agent's own scheduler.
  virtual bool self_scheduling() const { return true; }

  // The node range this backend executes on (used by the agent's
  // scheduler for externally scheduled backends).
  virtual NodeRange span() const = 0;

  // Whether the backend can co-schedule gangs (atomic all-or-nothing
  // placement + synchronized start). Only hierarchical schedulers (Flux)
  // support this.
  virtual bool supports_coscheduling() const { return false; }

  // Asynchronously bootstraps the runtime; `ready` fires exactly once.
  virtual void bootstrap(ReadyHandler ready) = 0;

  // Accepts a task for execution. Must only be called after a successful
  // bootstrap. Never blocks; results arrive via the handlers.
  virtual void submit(LaunchRequest request) = 0;

  // Event subscriptions. Handlers fire from the event loop, once per task.
  virtual void on_task_start(StartHandler handler) = 0;
  virtual void on_task_complete(CompletionHandler handler) = 0;

  // Releases resources; pending tasks complete with failure.
  virtual void shutdown() = 0;

  // False once the backend has crashed or failed to bootstrap.
  virtual bool healthy() const = 0;

  // Tasks accepted but not yet finished.
  virtual std::size_t inflight() const = 0;

  // Drain/quiesce probe: true when the backend holds no queued or running
  // work anywhere inside it — no inflight tasks, no internally queued jobs,
  // no held placements. At simulation drain every backend must be
  // quiescent; the invariant checkers (src/check) assert exactly that.
  // Backends with internal queues override this to include them.
  virtual bool quiescent() const { return inflight() == 0; }

  // Recovery-path equivalence digest (docs/recovery.md): a deterministic
  // one-line summary of the backend's externally observable state —
  // health, in-flight work, and whatever internal structure the backend
  // considers part of its restored identity (partition health, queue
  // depths). After a journal-replay recovery, a backend's summary must
  // equal the uninterrupted same-seed run's summary at the same virtual
  // time; the backend_contract_test RecoveryContract suite asserts this
  // for every backend.
  virtual std::string restore_summary() const {
    return name() + "|healthy=" + (healthy() ? "1" : "0") +
           "|inflight=" + std::to_string(inflight());
  }

  // Attaches the structured tracer (src/obs). Called before bootstrap;
  // backends propagate the handle to their instances, placers and queues.
  // The default keeps untraced backends untouched.
  virtual void set_trace(obs::TraceHandle) {}
};

}  // namespace flotilla::platform
