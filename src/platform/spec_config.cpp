#include "platform/spec_config.hpp"

#include <functional>
#include <map>

#include "util/error.hpp"

namespace flotilla::platform {

PlatformSpec summit_spec() {
  PlatformSpec spec;
  spec.name = "summit";
  spec.cores_per_node = 42;  // 2 x 21 usable POWER9 cores
  spec.gpus_per_node = 6;    // V100s
  spec.smt = 1;
  // LSF/jsrun machine: no Slurm srun ceiling. Model "no ceiling" as a
  // value far above any realistic concurrency.
  spec.srun_concurrency_ceiling = 1 << 20;
  return spec;
}

PlatformSpec spec_by_name(const std::string& name) {
  if (name == "frontier") return frontier_spec();
  if (name == "summit") return summit_spec();
  if (name == "generic" || name.empty()) return PlatformSpec{};
  util::raise("unknown platform profile '", name,
              "' (known: frontier, summit, generic)");
}

PlatformSpec spec_from_config(const util::Config& config) {
  const auto sub = config.subset("platform");
  PlatformSpec spec = spec_by_name(sub.get_string("name", "generic"));
  for (const auto& [key, value] : sub.entries()) {
    (void)value;
    if (key == "name") {
      continue;
    } else if (key == "cores_per_node") {
      spec.cores_per_node = static_cast<int>(sub.get_int(key));
    } else if (key == "gpus_per_node") {
      spec.gpus_per_node = static_cast<int>(sub.get_int(key));
    } else if (key == "smt") {
      spec.smt = static_cast<int>(sub.get_int(key));
    } else if (key == "srun_ceiling") {
      spec.srun_concurrency_ceiling = sub.get_int(key);
      if (spec.srun_concurrency_ceiling <= 0) {
        spec.srun_concurrency_ceiling = 1 << 20;  // "unlimited"
      }
    } else {
      util::raise("unknown platform config key 'platform.", key, "'");
    }
  }
  FLOT_CHECK(spec.cores_per_node >= 1 && spec.cores_per_node <= 64,
             "cores_per_node out of range: ", spec.cores_per_node);
  FLOT_CHECK(spec.gpus_per_node >= 0 && spec.gpus_per_node <= 8,
             "gpus_per_node out of range: ", spec.gpus_per_node);
  return spec;
}

namespace {

// Applies every `prefix.*` key through a name->slot map; rejects typos.
void apply(const util::Config& config, const std::string& prefix,
           const std::map<std::string, double*>& slots) {
  const auto sub = config.subset(prefix);
  for (const auto& [key, value] : sub.entries()) {
    (void)value;
    const auto it = slots.find(key);
    FLOT_CHECK(it != slots.end(), "unknown calibration key '", prefix, ".",
               key, "'");
    *it->second = sub.get_double(key);
  }
}

}  // namespace

Calibration calibration_from_config(const util::Config& config) {
  Calibration cal = frontier_calibration();
  apply(config, "slurm",
        {
            {"ctl_step_base", &cal.slurm.ctl_step_base},
            {"ctl_step_per_node", &cal.slurm.ctl_step_per_node},
            {"ctl_step_per_node_sq", &cal.slurm.ctl_step_per_node_sq},
            {"ctl_complete_cost", &cal.slurm.ctl_complete_cost},
            {"srun_client_startup", &cal.slurm.srun_client_startup},
            {"node_task_spawn", &cal.slurm.node_task_spawn},
            {"step_retry_initial", &cal.slurm.step_retry_initial},
            {"step_retry_max", &cal.slurm.step_retry_max},
            {"step_retry_factor", &cal.slurm.step_retry_factor},
            {"ctl_retry_cost", &cal.slurm.ctl_retry_cost},
            {"ctl_retry_fraction", &cal.slurm.ctl_retry_fraction},
            {"mpi_wireup_base", &cal.slurm.mpi_wireup_base},
            {"mpi_wireup_per_node", &cal.slurm.mpi_wireup_per_node},
            {"jitter_cv", &cal.slurm.jitter_cv},
        });
  apply(config, "flux",
        {
            {"ingest_cost", &cal.flux.ingest_cost},
            {"sched_cost", &cal.flux.sched_cost},
            {"sched_cost_per_node", &cal.flux.sched_cost_per_node},
            {"exec_coord_base", &cal.flux.exec_coord_base},
            {"event_cost", &cal.flux.event_cost},
            {"exec_spawn", &cal.flux.exec_spawn},
            {"bootstrap_base", &cal.flux.bootstrap_base},
            {"bootstrap_per_node", &cal.flux.bootstrap_per_node},
            {"mpi_wireup_base", &cal.flux.mpi_wireup_base},
            {"mpi_wireup_per_node", &cal.flux.mpi_wireup_per_node},
            {"jitter_cv", &cal.flux.jitter_cv},
        });
  apply(config, "dragon",
        {
            {"dispatch_exec", &cal.dragon.dispatch_exec},
            {"dispatch_func", &cal.dragon.dispatch_func},
            {"node_spawn_exec", &cal.dragon.node_spawn_exec},
            {"func_start", &cal.dragon.func_start},
            {"infra_period", &cal.dragon.infra_period},
            {"infra_cost", &cal.dragon.infra_cost},
            {"bootstrap_base", &cal.dragon.bootstrap_base},
            {"bootstrap_per_node", &cal.dragon.bootstrap_per_node},
            {"startup_timeout", &cal.dragon.startup_timeout},
            {"mpi_wireup_base", &cal.dragon.mpi_wireup_base},
            {"mpi_wireup_per_node", &cal.dragon.mpi_wireup_per_node},
            {"jitter_cv", &cal.dragon.jitter_cv},
        });
  apply(config, "prrte",
        {
            {"dvm_startup_base", &cal.prrte.dvm_startup_base},
            {"dvm_startup_per_node", &cal.prrte.dvm_startup_per_node},
            {"head_relay_cost", &cal.prrte.head_relay_cost},
            {"daemon_spawn_cost", &cal.prrte.daemon_spawn_cost},
            {"mpi_wireup_base", &cal.prrte.mpi_wireup_base},
            {"mpi_wireup_per_node", &cal.prrte.mpi_wireup_per_node},
            {"jitter_cv", &cal.prrte.jitter_cv},
        });
  apply(config, "core",
        {
            {"tmgr_task_cost", &cal.core.tmgr_task_cost},
            {"agent_sched_cost", &cal.core.agent_sched_cost},
            {"submit_cost_flux", &cal.core.submit_cost_flux},
            {"submit_cost_srun", &cal.core.submit_cost_srun},
            {"submit_cost_dragon", &cal.core.submit_cost_dragon},
            {"submit_cost_prrte", &cal.core.submit_cost_prrte},
            {"collect_cost", &cal.core.collect_cost},
            {"agent_bootstrap", &cal.core.agent_bootstrap},
            {"fs_stream_bandwidth_mbps",
             &cal.core.fs_stream_bandwidth_mbps},
            {"stage_latency", &cal.core.stage_latency},
            {"jitter_cv", &cal.core.jitter_cv},
        });
  return cal;
}

}  // namespace flotilla::platform
