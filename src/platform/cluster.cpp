#include "platform/cluster.hpp"

#include "util/error.hpp"

namespace flotilla::platform {

PlatformSpec frontier_spec() {
  PlatformSpec spec;
  spec.name = "frontier";
  spec.cores_per_node = 56;
  spec.gpus_per_node = 8;
  spec.smt = 1;
  spec.srun_concurrency_ceiling = 112;
  return spec;
}

Cluster::Cluster(PlatformSpec spec, int num_nodes) : spec_(std::move(spec)) {
  FLOT_CHECK(num_nodes >= 1, "cluster needs at least one node");
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), spec_.cores_per_node,
                        spec_.gpus_per_node);
  }
  for (auto& node : nodes_) node.attach_owner(this);
}

void Cluster::release(const Placement& placement) {
  for (const auto& slice : placement.slices) node(slice.node).release(slice);
}

void Cluster::add_observer(Observer* observer) {
  FLOT_CHECK(observer != nullptr, "null cluster observer");
  observers_.push_back(observer);
}

void Cluster::remove_observer(Observer* observer) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (*it != observer) continue;
    observers_.erase(it);
    return;
  }
}

void Cluster::notify_node_changed(NodeId id) {
  for (Observer* observer : observers_) observer->node_changed(id);
}

Node& Cluster::node(NodeId id) {
  FLOT_CHECK(id >= 0 && id < size(), "node id out of range: ", id);
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(NodeId id) const {
  FLOT_CHECK(id >= 0 && id < size(), "node id out of range: ", id);
  return nodes_[static_cast<std::size_t>(id)];
}

std::int64_t Cluster::total_cores(NodeRange range) const {
  return static_cast<std::int64_t>(range.count) * spec_.cores_per_node;
}

std::int64_t Cluster::total_gpus(NodeRange range) const {
  return static_cast<std::int64_t>(range.count) * spec_.gpus_per_node;
}

std::int64_t Cluster::free_cores(NodeRange range) const {
  std::int64_t n = 0;
  for (NodeId i = range.first; i < range.end(); ++i) n += node(i).free_cores();
  return n;
}

std::int64_t Cluster::free_gpus(NodeRange range) const {
  std::int64_t n = 0;
  for (NodeId i = range.first; i < range.end(); ++i) n += node(i).free_gpus();
  return n;
}

std::vector<NodeRange> Cluster::partition(NodeRange range, int parts) {
  FLOT_CHECK(parts >= 1, "partition count must be >= 1, got ", parts);
  FLOT_CHECK(parts <= range.count, "cannot split ", range.count,
             " nodes into ", parts, " partitions");
  std::vector<NodeRange> result;
  result.reserve(static_cast<std::size_t>(parts));
  const int base = range.count / parts;
  const int extra = range.count % parts;
  NodeId next = range.first;
  for (int i = 0; i < parts; ++i) {
    const int count = base + (i < extra ? 1 : 0);
    result.push_back(NodeRange{next, count});
    next += count;
  }
  return result;
}

}  // namespace flotilla::platform
