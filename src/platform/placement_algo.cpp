#include "platform/placement_algo.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace flotilla::platform {

void release_placement(Cluster& cluster, const Placement& placement) {
  for (const auto& slice : placement.slices) {
    cluster.node(slice.node).release(slice);
  }
}

std::optional<Placement> try_place(Cluster& cluster, NodeRange range,
                                   const ResourceDemand& demand,
                                   NodeId* cursor) {
  Placement placement;
  auto rollback = [&] { release_placement(cluster, placement); };

  if (demand.cores_per_node > 0) {
    auto nodes_needed = static_cast<int>(
        (demand.cores + demand.cores_per_node - 1) / demand.cores_per_node);
    // Degenerate GPU-only chunked demand still needs one node.
    if (nodes_needed == 0 && demand.gpus > 0) nodes_needed = 1;
    std::int64_t cores_left = demand.cores;
    std::int64_t gpus_left = demand.gpus;
    int chunks_left = nodes_needed;
    for (int i = 0; i < range.count && chunks_left > 0; ++i) {
      auto& node = cluster.node(range.first + i);
      const auto cores_here = static_cast<int>(
          std::min<std::int64_t>(demand.cores_per_node, cores_left));
      const auto gpus_here =
          static_cast<int>((gpus_left + chunks_left - 1) / chunks_left);
      auto slice = node.allocate(cores_here, gpus_here);
      if (!slice) continue;
      placement.slices.push_back(*slice);
      cores_left -= cores_here;
      gpus_left -= gpus_here;
      --chunks_left;
    }
    if (chunks_left > 0 || cores_left > 0 || gpus_left > 0) {
      rollback();
      return std::nullopt;
    }
    return placement;
  }

  std::int64_t cores_left = std::max<std::int64_t>(demand.cores, 0);
  std::int64_t gpus_left = std::max<std::int64_t>(demand.gpus, 0);
  const NodeId base = cursor ? *cursor : range.first;
  for (int i = 0; i < range.count; ++i) {
    if (cores_left == 0 && gpus_left == 0) break;
    const NodeId id =
        range.first + (base - range.first + i) % range.count;
    auto& node = cluster.node(id);
    const auto cores_here = static_cast<int>(
        std::min<std::int64_t>(node.free_cores(), cores_left));
    const auto gpus_here = static_cast<int>(
        std::min<std::int64_t>(node.free_gpus(), gpus_left));
    if (cores_here == 0 && gpus_here == 0) continue;
    auto slice = node.allocate(cores_here, gpus_here);
    FLOT_CHECK(slice.has_value(), "free-count/allocate mismatch on node ", id);
    placement.slices.push_back(*slice);
    cores_left -= cores_here;
    gpus_left -= gpus_here;
    // Advance past the node we just used so successive small tasks
    // round-robin over the range instead of piling onto one node.
    if (cursor) {
      *cursor = range.first + (id - range.first + 1) % range.count;
    }
  }
  if (cores_left > 0 || gpus_left > 0) {
    rollback();
    return std::nullopt;
  }
  return placement;
}

}  // namespace flotilla::platform
