// Flux-based task backend: RP's Flux executor driving one or more
// concurrently running Flux instances over disjoint partitions (Fig 2).
//
// Instances are launched via srun, so each holds one slot of the
// allocation-wide concurrent-srun ceiling for its lifetime — at 1024 nodes
// with many partitions this coupling is part of why utilization sags in
// Experiment flux_n. Bootstrap happens concurrently across instances, so
// total overhead is not additive in the instance count (Fig 7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "flux/instance.hpp"
#include "platform/backend.hpp"
#include "platform/calibration.hpp"
#include "sim/resource.hpp"

namespace flotilla::flux {

class FluxBackend : public platform::TaskBackend {
 public:
  // `backfill_depth` selects the scheduling policy of every instance
  // (§3.2.1: "first-come-first-served, backfilling, or customized
  // co-scheduling strategies"): 1 = strict FCFS, larger values allow that
  // many younger jobs to be scanned around a blocked queue head.
  FluxBackend(sim::Engine& engine, platform::Cluster& cluster,
              platform::NodeRange allocation, int partitions,
              const platform::FluxCalibration& cal, std::uint64_t seed,
              sim::Resource* srun_ceiling = nullptr, int backfill_depth = 64);
  ~FluxBackend() override;

  const std::string& name() const override { return name_; }
  bool accepts(platform::TaskModality modality) const override {
    return modality == platform::TaskModality::kExecutable;
  }
  platform::NodeRange span() const override { return allocation_; }
  bool supports_coscheduling() const override { return true; }
  void bootstrap(ReadyHandler ready) override;
  void submit(platform::LaunchRequest request) override;
  void on_task_start(StartHandler handler) override {
    start_handler_ = std::move(handler);
  }
  void on_task_complete(CompletionHandler handler) override {
    completion_handler_ = std::move(handler);
  }
  void shutdown() override;
  bool healthy() const override;
  std::size_t inflight() const override { return inflight_; }
  // Quiesce includes every instance's pending queue and running jobs.
  bool quiescent() const override;

  int partitions() const { return static_cast<int>(instances_.size()); }
  Instance& instance(int i) { return *instances_.at(static_cast<size_t>(i)); }

  // Adds per-instance broker health and queue depth: recovery must bring
  // back the same partition topology, including which brokers were down.
  std::string restore_summary() const override {
    std::string out = TaskBackend::restore_summary();
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      out += "|i" + std::to_string(i) + "=" +
             (instances_[i]->healthy() ? "up" : "down") + ":" +
             std::to_string(instances_[i]->queue_depth());
    }
    return out;
  }

  // Fault injection: simulates the i-th broker crashing.
  void crash_instance(int i, const std::string& reason = "broker lost");
  // Fault injection: makes bootstrap report failure.
  bool fail_bootstrap = false;

  // Per-instance bootstrap durations, available once ready (Fig 7).
  std::vector<sim::Time> bootstrap_durations() const;

  // Forwards the tracer to every instance (bootstrap spans, queue waits,
  // placement attempts per partition).
  void set_trace(obs::TraceHandle handle) override {
    for (auto& instance : instances_) instance->set_trace(handle);
  }

 private:
  void handle_event(int instance_index, const JobEvent& event);
  int pick_instance(const platform::ResourceDemand& demand,
                    const std::string& gang) const;
  void fail_task(const std::string& id, const std::string& error);

  sim::Engine& engine_;
  platform::NodeRange allocation_;
  int cores_per_node_;
  std::string name_ = "flux";
  std::vector<std::unique_ptr<Instance>> instances_;
  sim::Resource* srun_ceiling_;  // may be null (no ceiling coupling)
  std::unordered_map<std::string, int> task_instance_;
  std::size_t inflight_ = 0;
  mutable int rr_cursor_ = 0;
  bool ready_ = false;
  bool shut_down_ = false;
  StartHandler start_handler_;
  CompletionHandler completion_handler_;
};

}  // namespace flotilla::flux
