#include "flux/flux_backend.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace flotilla::flux {

FluxBackend::FluxBackend(sim::Engine& engine, platform::Cluster& cluster,
                         platform::NodeRange allocation, int partitions,
                         const platform::FluxCalibration& cal,
                         std::uint64_t seed, sim::Resource* srun_ceiling,
                         int backfill_depth)
    : engine_(engine),
      allocation_(allocation),
      cores_per_node_(cluster.spec().cores_per_node),
      srun_ceiling_(srun_ceiling) {
  FLOT_CHECK(backfill_depth >= 1, "backfill depth must be >= 1");
  const auto ranges = platform::Cluster::partition(allocation, partitions);
  instances_.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    instances_.push_back(std::make_unique<Instance>(
        util::cat("flux.", i), engine, cluster, ranges[i], cal,
        seed + 7919 * (i + 1)));
    instances_.back()->backfill_depth = backfill_depth;
    instances_.back()->on_event(
        [this, i](const JobEvent& event) {
          handle_event(static_cast<int>(i), event);
        });
  }
}

FluxBackend::~FluxBackend() = default;

void FluxBackend::bootstrap(ReadyHandler ready) {
  if (fail_bootstrap) {
    engine_.in(1.0, [ready = std::move(ready)] {
      ready(false, "flux broker bootstrap failed");
    });
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(instances_.size()));
  auto ready_shared =
      std::make_shared<ReadyHandler>(std::move(ready));
  for (auto& instance_ptr : instances_) {
    Instance* instance = instance_ptr.get();
    auto start_instance = [this, instance, remaining, ready_shared] {
      instance->bootstrap([this, remaining, ready_shared] {
        if (--*remaining == 0) {
          ready_ = true;
          (*ready_shared)(true, "");
        }
      });
    };
    if (srun_ceiling_) {
      // Each instance is launched under srun and holds its slot for its
      // lifetime, competing with every other srun on the allocation.
      srun_ceiling_->acquire(1, start_instance);
    } else {
      engine_.in(0.0, start_instance);
    }
  }
}

int FluxBackend::pick_instance(const platform::ResourceDemand& demand,
                               const std::string& gang) const {
  const int n = static_cast<int>(instances_.size());
  // Round-robin over healthy instances whose partition is large enough for
  // the task (a multi-node task cannot span instances). Gang members hash
  // to a stable instance so the whole gang lands on one scheduler.
  const int base =
      gang.empty() ? rr_cursor_
                   : static_cast<int>(sim::RngStream::hash(gang) %
                                      static_cast<std::uint64_t>(n));
  for (int step = 0; step < n; ++step) {
    const int i = (base + step) % n;
    const auto& instance = *instances_[static_cast<size_t>(i)];
    if (!instance.healthy()) continue;
    const auto cores_capacity =
        static_cast<std::int64_t>(instance.partition().count) *
        cores_per_node_;
    if (demand.cores > cores_capacity) continue;
    if (gang.empty()) rr_cursor_ = (i + 1) % n;
    return i;
  }
  return -1;
}

void FluxBackend::submit(platform::LaunchRequest request) {
  FLOT_CHECK(ready_, "submit to flux backend before bootstrap");
  ++inflight_;
  const int target = pick_instance(request.demand, request.gang);
  if (target < 0 || shut_down_) {
    fail_task(request.id,
              shut_down_ ? "backend shut down"
                         : "no healthy instance can fit task");
    return;
  }
  Job job;
  job.id = std::move(request.id);
  job.demand = request.demand;
  job.duration = request.duration;
  job.fail_probability = request.fail_probability;
  job.gang = std::move(request.gang);
  job.gang_size = request.gang_size;
  job.priority = request.priority;
  task_instance_[job.id] = target;
  instances_[static_cast<size_t>(target)]->submit(std::move(job));
}

void FluxBackend::handle_event(int instance_index, const JobEvent& event) {
  switch (event.kind) {
    case JobEventKind::kSubmit:
    case JobEventKind::kAlloc:
      return;
    case JobEventKind::kStart:
      if (start_handler_) start_handler_(event.job_id);
      return;
    case JobEventKind::kFinish: {
      task_instance_.erase(event.job_id);
      FLOT_CHECK(inflight_ > 0, "finish without inflight task");
      --inflight_;
      platform::LaunchOutcome outcome;
      outcome.id = event.job_id;
      outcome.success = event.success;
      outcome.error = event.note;
      outcome.started = event.started;
      outcome.finished = event.finished;
      if (completion_handler_) completion_handler_(outcome);
      return;
    }
    case JobEventKind::kException: {
      if (event.job_id.empty()) return;  // instance-level marker
      (void)instance_index;
      task_instance_.erase(event.job_id);
      FLOT_CHECK(inflight_ > 0, "exception without inflight task");
      --inflight_;
      platform::LaunchOutcome outcome;
      outcome.id = event.job_id;
      outcome.success = false;
      outcome.error = event.note;
      outcome.finished = engine_.now();
      if (completion_handler_) completion_handler_(outcome);
      return;
    }
  }
}

void FluxBackend::fail_task(const std::string& id, const std::string& error) {
  FLOT_CHECK(inflight_ > 0, "fail without inflight task");
  --inflight_;
  platform::LaunchOutcome outcome;
  outcome.id = id;
  outcome.success = false;
  outcome.error = error;
  outcome.finished = engine_.now();
  if (completion_handler_) completion_handler_(outcome);
}

void FluxBackend::crash_instance(int i, const std::string& reason) {
  instances_.at(static_cast<size_t>(i))->crash(reason);
}

bool FluxBackend::quiescent() const {
  if (inflight_ != 0) return false;
  return std::all_of(instances_.begin(), instances_.end(),
                     [](const auto& inst) {
                       return inst->queue_depth() == 0 &&
                              inst->running_jobs() == 0;
                     });
}

bool FluxBackend::healthy() const {
  if (shut_down_ || !ready_) return false;
  return std::any_of(instances_.begin(), instances_.end(),
                     [](const auto& inst) { return inst->healthy(); });
}

void FluxBackend::shutdown() {
  shut_down_ = true;
  for (auto& instance : instances_) {
    if (instance->healthy()) instance->crash("backend shut down");
  }
}

std::vector<sim::Time> FluxBackend::bootstrap_durations() const {
  std::vector<sim::Time> result;
  result.reserve(instances_.size());
  for (const auto& instance : instances_) {
    result.push_back(instance->bootstrap_duration());
  }
  return result;
}

}  // namespace flotilla::flux
