// Flux job model: the jobspec-equivalent a task is serialized into when RP
// submits it over the Flux RPC interface (§3.2.1, Fig 2 ②).
#pragma once

#include <cstdint>
#include <string>

#include "platform/placement.hpp"
#include "platform/types.hpp"
#include "sim/engine.hpp"

namespace flotilla::flux {

enum class JobState {
  kDepend,    // accepted, waiting in queue
  kSched,     // being considered by the scheduler
  kRun,       // executing
  kInactive,  // finished (success or failure)
};

struct Job {
  std::string id;
  platform::ResourceDemand demand;
  sim::Time duration = 0.0;
  double fail_probability = 0.0;
  sim::Time submitted = 0.0;
  sim::Time started = 0.0;
  JobState state = JobState::kDepend;
  platform::Placement placement;
  // Co-scheduling (§2: tightly coupled tasks "launched concurrently with
  // co-scheduled resources"): jobs sharing a gang tag are placed
  // atomically — all of them or none — and start together once every
  // member's shim is up. gang_size tells the scheduler when the gang is
  // fully submitted.
  std::string gang;
  int gang_size = 0;
  // Urgency (0..31, default 16): the pending queue is ordered by
  // descending priority, then submission order.
  int priority = 16;
};

// Job lifecycle events emitted on the instance's event bus (Fig 2 ④).
enum class JobEventKind {
  kSubmit,
  kAlloc,
  kStart,
  kFinish,
  kException,
};

struct JobEvent {
  JobEventKind kind;
  std::string job_id;
  bool success = true;
  std::string note;
  sim::Time started = 0.0;
  sim::Time finished = 0.0;
};

}  // namespace flotilla::flux
