// A single Flux instance over a node partition.
//
// Structure mirrors the real system (§3.2.1):
//  - one broker per node; rank 0 hosts job-ingest, the scheduler (fluxion)
//    and the job-event bus. Ingest, scheduling decisions and completion
//    events all serialize on rank 0 — this is the queueing bottleneck that
//    caps a single instance's throughput near the paper's 744 tasks/s peak.
//  - the scheduler runs FCFS with backfill: the queue head is tried first;
//    if it does not fit, up to `backfill_depth` younger jobs are scanned for
//    one that does.
//  - each decision's cost grows with the partition's resource graph
//    (fluxion match cost), which bends single-instance throughput back down
//    on very large partitions (Fig 6: 256 nodes beats 1024 at 1 instance).
//  - placement dispatches to the target nodes' exec brokers, which fork the
//    job shim serially per node (~35 ms/task): small instances are
//    spawn-limited (~28 tasks/s on one node, Fig 5b).
//  - completions free resources and *kick* the scheduler via events; there
//    is no polling anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "flux/job.hpp"
#include "obs/tracer.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sched/placer.hpp"
#include "sched/queue.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"

namespace flotilla::flux {

class Instance {
 public:
  using EventHandler = std::function<void(const JobEvent&)>;

  Instance(std::string name, sim::Engine& engine, platform::Cluster& cluster,
           platform::NodeRange partition, const platform::FluxCalibration& cal,
           std::uint64_t seed);

  const std::string& name() const { return name_; }
  platform::NodeRange partition() const { return partition_; }

  // Engine shard this instance's events run on (docs/sharding.md):
  // derived from the instance name, the control shard when the engine is
  // single-shard. Entry points called from other shards hop here.
  sim::ShardId shard() const { return shard_; }

  // Bootstraps the broker overlay; `ready` fires once jobs are accepted.
  // The reported overhead (Fig 7) is the time from this call to readiness.
  void bootstrap(std::function<void()> ready);
  bool ready() const { return ready_; }
  sim::Time bootstrap_duration() const { return bootstrap_duration_; }

  // job-ingest RPC (asynchronous; events report progress).
  void submit(Job job);

  // Subscribes to the job event bus. One subscriber (the RP Flux executor).
  void on_event(EventHandler handler) { event_handler_ = std::move(handler); }

  // Simulates a broker crash: running and queued jobs raise exceptions,
  // further submissions are rejected via exception events.
  void crash(const std::string& reason);
  bool healthy() const { return healthy_; }

  std::size_t queue_depth() const { return pending_.size(); }
  std::size_t running_jobs() const { return running_; }
  std::uint64_t jobs_completed() const { return completed_; }

  // Scheduler tuning (white-box test access).
  int backfill_depth = 64;

  // Swaps the fluxion matcher's placement policy (default first-fit).
  void set_placement_policy(sched::PlacementPolicyKind kind) {
    placer_.set_policy(kind);
  }

  // Attaches structured tracing (src/obs): bootstrap span, pending-queue
  // wait spans and placement-attempt instants, all under this instance's
  // name as the component.
  void set_trace(obs::TraceHandle handle) {
    obs_trace_ = handle;
    pending_.set_trace(handle, name_);
    placer_.set_trace(handle, name_);
  }

  // When enabled, each job's lifecycle events are appended to a per-job
  // eventlog (Flux's KVS eventlog equivalent) retrievable post mortem.
  // Off by default: paper-scale runs submit hundreds of thousands of jobs.
  bool record_eventlogs = false;
  using Eventlog = std::vector<std::pair<sim::Time, std::string>>;
  // The recorded eventlog of a job; empty if unknown or recording was off.
  const Eventlog& eventlog(const std::string& job_id) const;

 private:
  void emit(JobEventKind kind, const std::string& job_id, bool success = true,
            const std::string& note = "", sim::Time started = 0.0,
            sim::Time finished = 0.0);
  void ingest(Job job);  // shard-local half of submit()
  void crash_on_shard(const std::string& reason);
  void kick_scheduler();
  void run_sched_decision();
  // By value: the tag outlives the queue entries remove_if destroys.
  bool try_schedule_gang(std::string gang);
  void dispatch(std::shared_ptr<Job> job);
  void dispatch_gang(std::vector<std::shared_ptr<Job>> members);
  void job_started(std::shared_ptr<Job> job);
  void job_finished(std::shared_ptr<Job> job);
  double sched_decision_cost();

  std::string name_;
  sim::Engine& engine_;
  sim::ShardId shard_ = sim::kControlShard;
  platform::Cluster& cluster_;
  platform::NodeRange partition_;
  platform::FluxCalibration cal_;
  sim::RngStream rng_;
  sim::Server rank0_;  // ingest + sched + event handling serialize here
  std::vector<std::unique_ptr<sim::Server>> exec_;  // per-node spawn servers
  // Fluxion equivalent: priority queue with bounded backfill, and a fixed
  // scan origin (the matcher rescans the partition from the top).
  sched::TaskQueue pending_;
  sched::BackfillPolicy* backfill_;  // owned by pending_
  sched::Placer placer_;
  std::unordered_map<std::string, std::shared_ptr<Job>> active_;
  std::unordered_map<std::string, Eventlog> eventlogs_;
  EventHandler event_handler_;
  obs::TraceHandle obs_trace_;
  bool ready_ = false;
  bool bootstrap_started_ = false;
  bool healthy_ = true;
  bool sched_busy_ = false;
  std::size_t running_ = 0;
  std::uint64_t completed_ = 0;
  sim::Time bootstrap_requested_ = 0.0;
  sim::Time bootstrap_duration_ = 0.0;
};

}  // namespace flotilla::flux
