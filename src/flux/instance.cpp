#include "flux/instance.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/ordered.hpp"

namespace flotilla::flux {

Instance::Instance(std::string name, sim::Engine& engine,
                   platform::Cluster& cluster, platform::NodeRange partition,
                   const platform::FluxCalibration& cal, std::uint64_t seed)
    : name_(std::move(name)),
      engine_(engine),
      cluster_(cluster),
      partition_(partition),
      cal_(cal),
      rng_(seed, name_),
      rank0_(engine, 1),
      pending_(std::make_unique<sched::BackfillPolicy>(backfill_depth)),
      backfill_(static_cast<sched::BackfillPolicy*>(&pending_.policy())),
      placer_(cluster, partition,
              sched::PlacerOptions{.rotate_cursor = false}) {
  FLOT_CHECK(partition.count >= 1, "flux instance needs at least one node");
  FLOT_CHECK(partition.end() <= cluster.size(),
             "partition exceeds cluster: end=", partition.end());
  shard_ = engine_.affinity(name_);
  exec_.reserve(static_cast<std::size_t>(partition.count));
  for (int i = 0; i < partition.count; ++i) {
    exec_.push_back(
        std::make_unique<sim::Server>(engine, cal.exec_parallel_per_node));
  }
}

void Instance::bootstrap(std::function<void()> ready) {
  FLOT_CHECK(!bootstrap_started_, "instance ", name_,
             " bootstrapped twice");
  bootstrap_started_ = true;
  bootstrap_requested_ = engine_.now();
  obs_trace_.begin(obs::SpanType::kBootstrap, name_, "",
                   static_cast<double>(partition_.count));
  const double duration = rng_.lognormal_mean_cv(
      cal_.bootstrap_base + cal_.bootstrap_per_node * partition_.count,
      cal_.jitter_cv / 2);
  // Targeted at this instance's shard: the whole broker lifecycle (ingest,
  // sched, exec, completion events) then stays shard-local.
  engine_.in(shard_, duration, [this, ready = std::move(ready)] {
    ready_ = true;
    bootstrap_duration_ = engine_.now() - bootstrap_requested_;
    obs_trace_.end(obs::SpanType::kBootstrap, name_, "");
    if (ready) ready();
  });
}

const Instance::Eventlog& Instance::eventlog(
    const std::string& job_id) const {
  static const Eventlog kEmpty;
  const auto it = eventlogs_.find(job_id);
  return it == eventlogs_.end() ? kEmpty : it->second;
}

void Instance::emit(JobEventKind kind, const std::string& job_id,
                    bool success, const std::string& note, sim::Time started,
                    sim::Time finished) {
  if (record_eventlogs && !job_id.empty()) {
    const char* name = "?";
    switch (kind) {
      case JobEventKind::kSubmit:
        name = "submit";
        break;
      case JobEventKind::kAlloc:
        name = "alloc";
        break;
      case JobEventKind::kStart:
        name = "start";
        break;
      case JobEventKind::kFinish:
        name = success ? "finish" : "finish(rc!=0)";
        break;
      case JobEventKind::kException:
        name = "exception";
        break;
    }
    eventlogs_[job_id].emplace_back(engine_.now(), name);
  }
  if (!event_handler_) return;
  JobEvent event;
  event.kind = kind;
  event.job_id = job_id;
  event.success = success;
  event.note = note;
  event.started = started;
  event.finished = finished;
  event_handler_(event);
}

void Instance::submit(Job job) {
  // Submissions arrive from the agent's control shard; hop onto this
  // instance's shard (a direct call on a single-shard engine).
  engine_.invoke_on(shard_, [this, job = std::move(job)]() mutable {
    ingest(std::move(job));
  });
}

void Instance::ingest(Job job) {
  FLOT_CHECK(ready_, "submit to flux instance ", name_, " before bootstrap");
  if (!healthy_) {
    emit(JobEventKind::kException, job.id, false, "broker unreachable");
    return;
  }
  job.submitted = engine_.now();
  auto shared = std::make_shared<Job>(std::move(job));
  const double cost = rng_.lognormal_mean_cv(cal_.ingest_cost, cal_.jitter_cv);
  rank0_.submit(cost, [this, shared] {
    if (!healthy_) {
      emit(JobEventKind::kException, shared->id, false, "broker crashed");
      return;
    }
    // Priority queue with FIFO tie-breaking (Flux urgency semantics) —
    // the shared BackfillPolicy keeps pending_ sorted by non-increasing
    // priority with a binary-search insertion point.
    sched::QueueEntry entry;
    entry.id = shared->id;
    entry.priority = shared->priority;
    entry.gang = shared->gang;
    entry.gang_size = shared->gang_size;
    entry.demand = shared->demand;
    entry.payload = shared;
    pending_.push(std::move(entry));
    emit(JobEventKind::kSubmit, shared->id);
    kick_scheduler();
  });
}

double Instance::sched_decision_cost() {
  // Per-decision rank-0 work: fluxion match (grows with the resource
  // graph) plus the rank-0 share of exec coordination (amortizes as the
  // exec service fans out over more brokers).
  const double coord =
      cal_.exec_coord_base / std::sqrt(static_cast<double>(partition_.count));
  return rng_.lognormal_mean_cv(
      cal_.sched_cost + cal_.sched_cost_per_node * partition_.count + coord,
      cal_.jitter_cv);
}

void Instance::kick_scheduler() {
  if (sched_busy_ || pending_.empty() || !healthy_) return;
  sched_busy_ = true;
  rank0_.submit(sched_decision_cost(), [this] { run_sched_decision(); });
}

bool Instance::try_schedule_gang(std::string gang) {
  // Collect the gang's members; schedule only once all of them arrived.
  std::vector<std::shared_ptr<Job>> members;
  int declared_size = 0;
  for (const auto& entry : pending_.entries()) {
    if (entry.gang != gang) continue;
    members.push_back(std::static_pointer_cast<Job>(entry.payload));
    declared_size = std::max(declared_size, entry.gang_size);
  }
  if (members.empty() ||
      static_cast<int>(members.size()) < declared_size) {
    return false;
  }
  // Atomic all-or-nothing placement (§2's co-scheduled resources).
  std::vector<platform::Placement> placements;
  placements.reserve(members.size());
  for (const auto& member : members) {
    auto placement = placer_.place(member->demand);
    if (!placement) {
      for (const auto& held : placements) placer_.release(held);
      return false;
    }
    placements.push_back(std::move(*placement));
  }
  for (std::size_t m = 0; m < members.size(); ++m) {
    members[m]->placement = std::move(placements[m]);
    members[m]->state = JobState::kSched;
    active_.emplace(members[m]->id, members[m]);
  }
  pending_.remove_if(
      [&gang](const sched::QueueEntry& entry) { return entry.gang == gang; });
  for (const auto& member : members) emit(JobEventKind::kAlloc, member->id);
  dispatch_gang(std::move(members));
  return true;
}

void Instance::run_sched_decision() {
  sched_busy_ = false;
  if (!healthy_ || pending_.empty()) return;
  // FCFS with backfill: try the head; if it does not fit, scan up to
  // backfill_depth younger jobs for one that does. Gangs schedule as a
  // unit; a gang that cannot be placed (or is incomplete) is skipped as a
  // whole for this pass.
  backfill_->set_depth(backfill_depth);  // white-box tuning writes through
  const auto scan_limit = pending_.scan_limit();
  std::vector<std::string> failed_gangs;
  for (std::size_t i = 0; i < scan_limit && i < pending_.size(); ++i) {
    const auto& candidate = pending_.at(i);
    if (!candidate.gang.empty()) {
      if (std::find(failed_gangs.begin(), failed_gangs.end(),
                    candidate.gang) != failed_gangs.end()) {
        continue;
      }
      if (try_schedule_gang(candidate.gang)) {
        kick_scheduler();
        return;
      }
      failed_gangs.push_back(candidate.gang);
      continue;
    }
    auto placement = placer_.place(candidate.demand);
    if (!placement) continue;
    auto job = std::static_pointer_cast<Job>(pending_.take(i).payload);
    job->placement = std::move(*placement);
    job->state = JobState::kSched;
    // Tracked from allocation on, so a crash mid-spawn still reaps it.
    active_.emplace(job->id, job);
    emit(JobEventKind::kAlloc, job->id);
    dispatch(std::move(job));
    kick_scheduler();  // next decision costs another rank-0 pass
    return;
  }
  // Nothing fits: sleep until a completion or submission kicks us again.
}

void Instance::dispatch_gang(std::vector<std::shared_ptr<Job>> members) {
  // Spawn every member's shims; no member starts until the whole gang is
  // up, then all start together after one shared wireup across the gang's
  // node span.
  std::size_t total_slices = 0;
  std::size_t total_nodes = 0;
  for (const auto& member : members) {
    total_slices += std::max<std::size_t>(1, member->placement.slices.size());
    total_nodes += member->placement.slices.size();
  }
  const double wireup = rng_.lognormal_mean_cv(
      cal_.mpi_wireup_base +
          cal_.mpi_wireup_per_node * static_cast<double>(total_nodes),
      cal_.jitter_cv);
  auto remaining = std::make_shared<std::size_t>(total_slices);
  auto members_shared =
      std::make_shared<std::vector<std::shared_ptr<Job>>>(std::move(members));
  auto on_slice_up = [this, remaining, members_shared, wireup] {
    if (--*remaining > 0) return;
    engine_.in(wireup, [this, members_shared] {
      for (const auto& member : *members_shared) job_started(member);
    });
  };
  for (const auto& member : *members_shared) {
    if (member->placement.slices.empty()) {
      exec_.front()->submit(
          rng_.lognormal_mean_cv(cal_.exec_spawn, cal_.jitter_cv),
          on_slice_up);
      continue;
    }
    for (const auto& slice : member->placement.slices) {
      const auto local =
          static_cast<std::size_t>(slice.node - partition_.first);
      FLOT_CHECK(local < exec_.size(), "slice outside partition");
      exec_[local]->submit(
          rng_.lognormal_mean_cv(cal_.exec_spawn, cal_.jitter_cv),
          on_slice_up);
    }
  }
}

void Instance::dispatch(std::shared_ptr<Job> job) {
  // Fork/exec the job shim on every target node; the job starts when the
  // slowest node is up. Each node's exec broker spawns serially. Multi-node
  // jobs additionally pay Flux's broker-native PMI wireup (§3.1's fast
  // path for tightly coupled tasks).
  const auto job_nodes = job->placement.slices.size();
  auto remaining =
      std::make_shared<int>(static_cast<int>(job_nodes ? job_nodes : 1));
  double wireup = 0.0;
  if (job_nodes > 1) {
    wireup = rng_.lognormal_mean_cv(
        cal_.mpi_wireup_base +
            cal_.mpi_wireup_per_node * static_cast<double>(job_nodes),
        cal_.jitter_cv);
  }
  auto on_node_ready = [this, job, remaining, wireup] {
    if (--*remaining > 0) return;
    if (wireup > 0.0) {
      engine_.in(wireup, [this, job] { job_started(job); });
    } else {
      job_started(job);
    }
  };
  if (job->placement.slices.empty()) {
    // Zero-demand (null) job: still pays one spawn on rank 0's node.
    exec_.front()->submit(
        rng_.lognormal_mean_cv(cal_.exec_spawn, cal_.jitter_cv),
        on_node_ready);
    return;
  }
  for (const auto& slice : job->placement.slices) {
    const auto local =
        static_cast<std::size_t>(slice.node - partition_.first);
    FLOT_CHECK(local < exec_.size(), "slice outside partition: node ",
               slice.node);
    exec_[local]->submit(
        rng_.lognormal_mean_cv(cal_.exec_spawn, cal_.jitter_cv),
        on_node_ready);
  }
}

void Instance::job_started(std::shared_ptr<Job> job) {
  if (job->state == JobState::kInactive || active_.count(job->id) == 0) {
    return;  // the broker crashed while the shim was spawning
  }
  job->state = JobState::kRun;
  job->started = engine_.now();
  ++running_;
  emit(JobEventKind::kStart, job->id, true, "", job->started);
  engine_.in(job->duration, [this, job] { job_finished(job); });
}

void Instance::job_finished(std::shared_ptr<Job> job) {
  if (job->state != JobState::kRun) return;  // crashed meanwhile
  job->state = JobState::kInactive;
  const sim::Time finished = engine_.now();
  const bool failed = job->fail_probability > 0.0 &&
                      rng_.bernoulli(job->fail_probability);
  // The completion event is processed by rank 0 before resources free and
  // the scheduler is kicked — completions compete with ingest/sched for the
  // broker, which is the instance's steady-state throughput limit.
  const double cost = rng_.lognormal_mean_cv(cal_.event_cost, cal_.jitter_cv);
  rank0_.submit(cost, [this, job, failed, finished] {
    if (active_.erase(job->id) == 0) return;  // crash already reaped it
    placer_.release(job->placement);
    job->placement.slices.clear();
    FLOT_CHECK(running_ > 0, "completion without running job");
    --running_;
    ++completed_;
    emit(JobEventKind::kFinish, job->id, !failed,
         failed ? "job exited with non-zero status" : "", job->started,
         finished);
    kick_scheduler();
  });
}

void Instance::crash(const std::string& reason) {
  // Fault injection fires from the control shard; the broker dies on its
  // own shard so the exception events interleave deterministically with
  // in-flight work.
  engine_.invoke_on(shard_, [this, reason] { crash_on_shard(reason); });
}

void Instance::crash_on_shard(const std::string& reason) {
  if (!healthy_) return;
  healthy_ = false;
  // Queued jobs raise exceptions, in queue order.
  for (auto& entry : pending_.drain()) {
    auto job = std::static_pointer_cast<Job>(entry.payload);
    job->state = JobState::kInactive;
    emit(JobEventKind::kException, job->id, false, reason);
  }
  // Running jobs die with the broker. Resources are released here so the
  // pilot can reuse the nodes after failover; the jobs' pending finish
  // timers become no-ops once removed from the active set. Sorted order so
  // the exception-event sequence is reproducible across runs.
  for (const auto& id : util::sorted_keys(active_)) {
    auto& job = active_.at(id);
    job->state = JobState::kInactive;
    placer_.release(job->placement);
    job->placement.slices.clear();
    emit(JobEventKind::kException, id, false, reason);
  }
  active_.clear();
  running_ = 0;
  // Instance-level exception so RP can trigger failover promptly.
  emit(JobEventKind::kException, "", false, reason);
}

}  // namespace flotilla::flux
