// Deterministic iteration over unordered associative containers.
//
// Hash-map iteration order depends on the allocator, the stdlib, and the
// insertion history — letting it drive event ordering silently breaks the
// simulator's reproducibility guarantee (see docs/correctness.md and the
// `unordered-iteration` rule in tools/flotilla_lint.cpp). Where a hot path
// genuinely needs a hash map, snapshot the keys with sorted_keys() and
// iterate those instead.
#pragma once

#include <algorithm>
#include <vector>

namespace flotilla::util {

template <typename Assoc>
std::vector<typename Assoc::key_type> sorted_keys(const Assoc& assoc) {
  std::vector<typename Assoc::key_type> keys;
  keys.reserve(assoc.size());
  for (const auto& entry : assoc) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace flotilla::util
