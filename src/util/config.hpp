// Flat key/value configuration with typed accessors.
//
// Used to parameterize sessions, agents and backends, mirroring
// RADICAL-Pilot's resource-config files. Keys are dotted strings
// ("agent.scheduler", "flux.partitions"); values are stored as strings and
// converted on read. Unknown keys fall back to caller-supplied defaults so
// that configs stay forward compatible.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flotilla::util {

class Config {
 public:
  Config() = default;

  // Parses "key=value" pairs, one per element. Whitespace around key and
  // value is trimmed; lines starting with '#' and empty lines are ignored.
  static Config from_pairs(const std::vector<std::string>& pairs);

  // Parses newline-separated "key=value" text (e.g. file contents).
  static Config from_text(std::string_view text);

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         std::string fallback = "") const;
  long get_int(const std::string& key, long fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  std::optional<std::string> find(const std::string& key) const;

  // All keys sharing `prefix.` with the prefix stripped, e.g.
  // subset("flux") of {"flux.partitions": "4"} -> {"partitions": "4"}.
  Config subset(const std::string& prefix) const;

  // Overlays `other` on top of *this (other wins on conflicts).
  Config merged_with(const Config& other) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace flotilla::util
