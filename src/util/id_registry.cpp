#include "util/id_registry.hpp"

#include <iomanip>
#include <sstream>

namespace flotilla::util {

std::string IdRegistry::next(const std::string& ns, int width) {
  std::uint64_t value = 0;
  {
    std::lock_guard lock(mutex_);
    value = counters_[ns]++;
  }
  std::ostringstream os;
  os << ns << '.' << std::setw(width) << std::setfill('0') << value;
  return os.str();
}

std::uint64_t IdRegistry::count(const std::string& ns) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(ns);
  return it == counters_.end() ? 0 : it->second;
}

void IdRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
}

}  // namespace flotilla::util
