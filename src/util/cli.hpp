// Minimal command-line parser for the Flotilla tools and benches.
//
// Supports --key value and --key=value options, --flag booleans, typed
// getters with defaults, and generated --help text. Unknown options are an
// error (catches typos in experiment sweeps).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace flotilla::util {

class CliParser {
 public:
  explicit CliParser(std::string program_summary = "");

  // Declares an option taking a value. Returns *this for chaining.
  CliParser& option(const std::string& name, const std::string& fallback,
                    const std::string& help);
  // Declares a boolean flag (present = true).
  CliParser& flag(const std::string& name, const std::string& help);

  // Parses argv. Returns false (after printing usage) when --help was
  // requested; throws util::Error on unknown or malformed options.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  // Positional arguments left after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Spec {
    std::string fallback;
    std::string help;
    bool is_flag = false;
  };

  std::string summary_;
  std::string program_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace flotilla::util
