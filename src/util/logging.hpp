// Lightweight leveled logging.
//
// Components obtain a named Logger from the global LogRegistry; the registry
// owns a single sink (stderr by default, or a file) and a global level
// threshold that can be set programmatically or via the FLOTILLA_LOG
// environment variable (trace|debug|info|warn|error|off).
//
// Logging is thread-safe: the real-threaded Dragon function executor logs
// from worker threads.
#pragma once

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/strfmt.hpp"

namespace flotilla::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

std::string_view to_string(LogLevel level);
LogLevel log_level_from_string(std::string_view name);

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(std::string_view line) = 0;
};

// Process-wide logging state. Access via LogRegistry::instance().
class LogRegistry {
 public:
  static LogRegistry& instance();

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  // Replaces the sink; pass nullptr to restore the default stderr sink.
  void set_sink(std::shared_ptr<LogSink> sink);

  void emit(std::string_view component, LogLevel level, std::string_view msg);

 private:
  LogRegistry();

  std::atomic<LogLevel> level_;
  std::mutex mutex_;
  std::shared_ptr<LogSink> sink_;
};

// Named front-end; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  bool enabled(LogLevel level) const {
    return level >= LogRegistry::instance().level();
  }

  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    if (!enabled(level)) return;
    LogRegistry::instance().emit(component_, level,
                                 cat(std::forward<Args>(args)...));
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    log(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::kWarn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::kError, std::forward<Args>(args)...);
  }

  const std::string& component() const { return component_; }

 private:
  std::string component_;
};

// Sink appending lines to a file (the agent's log file in RP terms).
// Lines are flushed as written so post-mortem logs survive crashes.
class FileSink : public LogSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void write(std::string_view line) override;
  bool ok() const { return file_ != nullptr; }

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

// Sink that appends lines to an in-memory buffer; used by tests to assert on
// emitted diagnostics.
class CaptureSink : public LogSink {
 public:
  void write(std::string_view line) override;
  std::vector<std::string> lines() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

}  // namespace flotilla::util
