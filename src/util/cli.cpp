#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace flotilla::util {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

CliParser& CliParser::option(const std::string& name,
                             const std::string& fallback,
                             const std::string& help) {
  FLOT_CHECK(!specs_.count(name), "duplicate option --", name);
  specs_[name] = Spec{fallback, help, false};
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
  FLOT_CHECK(!specs_.count(name), "duplicate flag --", name);
  specs_[name] = Spec{"", help, true};
  return *this;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << "usage: " << (program_.empty() ? "prog" : program_)
     << " [options]\n";
  if (!summary_.empty()) os << summary_ << "\n";
  os << "options:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value> (default: " << spec.fallback << ")";
    os << "\n      " << spec.help << "\n";
  }
  os << "  --help\n      print this message\n";
  return os.str();
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    FLOT_CHECK(it != specs_.end(), "unknown option --", name, "\n", usage());
    if (it->second.is_flag) {
      FLOT_CHECK(!has_value, "flag --", name, " does not take a value");
      values_[name] = "1";
      continue;
    }
    if (!has_value) {
      FLOT_CHECK(i + 1 < argc, "option --", name, " needs a value");
      value = argv[++i];
    }
    values_[name] = std::move(value);
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto spec = specs_.find(name);
  FLOT_CHECK(spec != specs_.end(), "undeclared option --", name);
  const auto it = values_.find(name);
  return it == values_.end() ? spec->second.fallback : it->second;
}

long CliParser::get_int(const std::string& name) const {
  const auto value = get(name);
  char* end = nullptr;
  const long result = std::strtol(value.c_str(), &end, 10);
  FLOT_CHECK(end && *end == '\0', "option --", name,
             " is not an integer: ", value);
  return result;
}

double CliParser::get_double(const std::string& name) const {
  const auto value = get(name);
  char* end = nullptr;
  const double result = std::strtod(value.c_str(), &end);
  FLOT_CHECK(end && *end == '\0', "option --", name,
             " is not a number: ", value);
  return result;
}

bool CliParser::get_flag(const std::string& name) const {
  const auto spec = specs_.find(name);
  FLOT_CHECK(spec != specs_.end() && spec->second.is_flag,
             "undeclared flag --", name);
  return values_.count(name) != 0;
}

}  // namespace flotilla::util
