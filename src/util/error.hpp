// Error handling primitives.
//
// Programmer errors (broken invariants, misuse of the API) throw
// flotilla::util::Error; expected runtime failures (task failure, backend
// crash) are modeled as states, not exceptions, following the task/pilot
// state machines in core/.
#pragma once

#include <stdexcept>
#include <string>

#include "util/strfmt.hpp"

namespace flotilla::util {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

template <typename... Args>
[[noreturn]] void raise(Args&&... args) {
  throw Error(cat(std::forward<Args>(args)...));
}

// Check an invariant; message is only assembled on failure.
#define FLOT_CHECK(cond, ...)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::flotilla::util::raise("check failed: " #cond " — ", __VA_ARGS__);   \
    }                                                                       \
  } while (false)

}  // namespace flotilla::util
