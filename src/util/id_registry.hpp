// Typed, human-readable entity identifiers.
//
// Mirrors RADICAL-Pilot's id scheme: "task.000042", "pilot.0001",
// "flux.0003". A registry hands out monotonically increasing per-namespace
// counters; ids sort lexicographically in creation order within a namespace.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace flotilla::util {

class IdRegistry {
 public:
  // Returns "<ns>.<counter>" with the counter zero-padded to `width`.
  std::string next(const std::string& ns, int width = 6);

  // Number of ids handed out so far for `ns`.
  std::uint64_t count(const std::string& ns) const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace flotilla::util
