#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace flotilla::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel log_level_from_string(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace {

class StderrSink : public LogSink {
 public:
  void write(std::string_view line) override {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  }
};

}  // namespace

LogRegistry& LogRegistry::instance() {
  static LogRegistry registry;
  return registry;
}

LogRegistry::LogRegistry()
    : level_(LogLevel::kWarn), sink_(std::make_shared<StderrSink>()) {
  if (const char* env = std::getenv("FLOTILLA_LOG")) {
    level_.store(log_level_from_string(env), std::memory_order_relaxed);
  }
}

void LogRegistry::set_sink(std::shared_ptr<LogSink> sink) {
  std::lock_guard lock(mutex_);
  sink_ = sink ? std::move(sink) : std::make_shared<StderrSink>();
}

void LogRegistry::emit(std::string_view component, LogLevel level,
                       std::string_view msg) {
  const std::string line =
      cat('[', to_string(level), "] ", component, ": ", msg);
  // Snapshot the sink and call it outside the registry lock: a sink that
  // logs (or swaps the sink) from write() would otherwise deadlock. Sinks
  // serialize their own writes.
  std::shared_ptr<LogSink> sink;
  {
    std::lock_guard lock(mutex_);
    sink = sink_;
  }
  sink->write(line);
}

FileSink::FileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

FileSink::~FileSink() {
  if (file_) std::fclose(file_);
}

void FileSink::write(std::string_view line) {
  if (!file_) return;
  std::lock_guard lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void CaptureSink::write(std::string_view line) {
  std::lock_guard lock(mutex_);
  lines_.emplace_back(line);
}

std::vector<std::string> CaptureSink::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

void CaptureSink::clear() {
  std::lock_guard lock(mutex_);
  lines_.clear();
}

}  // namespace flotilla::util
