#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace flotilla::util {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

void parse_pair(Config& config, std::string_view line) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return;
  const auto eq = line.find('=');
  FLOT_CHECK(eq != std::string_view::npos, "config entry missing '=': ", line);
  const auto key = trim(line.substr(0, eq));
  const auto value = trim(line.substr(eq + 1));
  FLOT_CHECK(!key.empty(), "config entry has empty key: ", line);
  config.set(std::string(key), std::string(value));
}

}  // namespace

Config Config::from_pairs(const std::vector<std::string>& pairs) {
  Config config;
  for (const auto& pair : pairs) parse_pair(config, pair);
  return config;
}

Config Config::from_text(std::string_view text) {
  Config config;
  while (!text.empty()) {
    const auto nl = text.find('\n');
    const auto line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    parse_pair(config, line);
    if (nl == std::string_view::npos) break;
    text = text.substr(nl + 1);
  }
  return config;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::move(fallback) : it->second;
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  FLOT_CHECK(end && *end == '\0', "config key ", key,
             " is not an integer: ", it->second);
  return value;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  FLOT_CHECK(end && *end == '\0', "config key ", key,
             " is not a number: ", it->second);
  return value;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  raise("config key ", key, " is not a boolean: ", it->second);
}

Config Config::subset(const std::string& prefix) const {
  Config result;
  const std::string full = prefix + ".";
  for (const auto& [key, value] : entries_) {
    if (key.rfind(full, 0) == 0) {
      result.set(key.substr(full.size()), value);
    }
  }
  return result;
}

Config Config::merged_with(const Config& other) const {
  Config result = *this;
  for (const auto& [key, value] : other.entries_) result.set(key, value);
  return result;
}

}  // namespace flotilla::util
