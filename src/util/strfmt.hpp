// Minimal string formatting helpers.
//
// GCC 12 does not ship std::format, so we provide a tiny, allocation-light
// replacement sufficient for log lines and table rendering:
//
//   cat("tasks=", n, " rate=", rate)        -> "tasks=42 rate=9.5"
//   fmt("submit {} to {}", id, backend)     -> "submit t.1 to flux"
//
// `fmt` replaces each "{}" in order; surplus arguments are appended, surplus
// placeholders are left verbatim. Not a std::format clone by design.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace flotilla::util {

namespace detail {

inline void cat_one(std::ostringstream& os) { (void)os; }

template <typename T, typename... Rest>
void cat_one(std::ostringstream& os, T&& v, Rest&&... rest) {
  os << std::forward<T>(v);
  cat_one(os, std::forward<Rest>(rest)...);
}

}  // namespace detail

template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  detail::cat_one(os, std::forward<Args>(args)...);
  return os.str();
}

namespace detail {

inline void fmt_step(std::ostringstream& os, std::string_view& spec) {
  os << spec;
  spec = {};
}

template <typename T, typename... Rest>
void fmt_step(std::ostringstream& os, std::string_view& spec, T&& v,
              Rest&&... rest) {
  const auto pos = spec.find("{}");
  if (pos == std::string_view::npos) {
    os << spec << ' ' << std::forward<T>(v);
    spec = {};
  } else {
    os << spec.substr(0, pos) << std::forward<T>(v);
    spec = spec.substr(pos + 2);
  }
  fmt_step(os, spec, std::forward<Rest>(rest)...);
}

}  // namespace detail

template <typename... Args>
std::string fmt(std::string_view spec, Args&&... args) {
  std::ostringstream os;
  detail::fmt_step(os, spec, std::forward<Args>(args)...);
  if (!spec.empty()) os << spec;
  return os.str();
}

}  // namespace flotilla::util
