// Streaming pipeline over warm Dragon workers.
//
// §2 calls out "asynchronous pipelines of Python functions communicating
// through in-memory data structures or message queues" as the intermediate
// coupling class (REINVENT generation, SST-guided patch selection). This is
// the C++ analogue: a chain of stages, each with its own warm worker
// threads and bounded input queue; items flow stage-to-stage through
// in-memory queues with natural backpressure.
//
// Items of one stage may be processed out of order relative to each other
// when the stage has more than one worker; pipelines needing strict order
// use single-worker stages.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dragon/mpmc_queue.hpp"
#include "util/error.hpp"

namespace flotilla::dragon {

template <typename T>
class Pipeline {
 public:
  // A stage transform; returning nullopt drops (filters) the item.
  using Transform = std::function<std::optional<T>(T)>;
  using Sink = std::function<void(T)>;

  explicit Pipeline(std::size_t queue_capacity = 256)
      : queue_capacity_(queue_capacity) {}

  ~Pipeline() {
    if (started_ && !finished_) finish();
  }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  Pipeline& add_stage(std::string name, unsigned workers, Transform fn) {
    FLOT_CHECK(!started_, "cannot add stages after start()");
    FLOT_CHECK(workers >= 1, "stage '", name, "' needs >= 1 worker");
    FLOT_CHECK(fn, "stage '", name, "' needs a transform");
    stages_.push_back(std::make_unique<Stage>(name, workers, std::move(fn),
                                              queue_capacity_));
    return *this;
  }

  // Terminal consumer, called from stage worker threads; must be
  // thread-safe.
  Pipeline& set_sink(Sink sink) {
    FLOT_CHECK(!started_, "cannot set sink after start()");
    sink_ = std::move(sink);
    return *this;
  }

  void start() {
    FLOT_CHECK(!started_, "pipeline started twice");
    FLOT_CHECK(!stages_.empty(), "pipeline has no stages");
    started_ = true;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      Stage* stage = stages_[i].get();
      Stage* next = i + 1 < stages_.size() ? stages_[i + 1].get() : nullptr;
      for (unsigned w = 0; w < stage->workers; ++w) {
        stage->threads.emplace_back(
            [this, stage, next] { worker_loop(stage, next); });
      }
    }
  }

  // Feeds one item into the first stage; blocks when the stage is full
  // (backpressure). Returns false once finish() was called.
  bool feed(T item) {
    FLOT_CHECK(started_, "feed() before start()");
    return stages_.front()->queue.push(std::move(item));
  }

  // Closes the input, drains every stage in order, joins all workers.
  void finish() {
    FLOT_CHECK(started_, "finish() before start()");
    if (finished_) return;
    finished_ = true;
    for (auto& stage : stages_) {
      stage->queue.close();
      for (auto& thread : stage->threads) {
        if (thread.joinable()) thread.join();
      }
    }
  }

  std::size_t stage_count() const { return stages_.size(); }

  std::uint64_t processed(const std::string& stage_name) const {
    for (const auto& stage : stages_) {
      if (stage->name == stage_name) {
        return stage->processed.load(std::memory_order_relaxed);
      }
    }
    util::raise("unknown pipeline stage '", stage_name, "'");
  }

  std::uint64_t dropped(const std::string& stage_name) const {
    for (const auto& stage : stages_) {
      if (stage->name == stage_name) {
        return stage->dropped.load(std::memory_order_relaxed);
      }
    }
    util::raise("unknown pipeline stage '", stage_name, "'");
  }

 private:
  struct Stage {
    Stage(std::string stage_name, unsigned worker_count, Transform transform,
          std::size_t capacity)
        : name(std::move(stage_name)),
          workers(worker_count),
          fn(std::move(transform)),
          queue(capacity) {}

    std::string name;
    unsigned workers;
    Transform fn;
    MpmcQueue<T> queue;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  void worker_loop(Stage* stage, Stage* next) {
    while (auto item = stage->queue.pop()) {
      auto result = stage->fn(std::move(*item));
      stage->processed.fetch_add(1, std::memory_order_relaxed);
      if (!result) {
        stage->dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (next) {
        // Downstream close only happens in finish() after this stage's
        // workers joined, so the push cannot be dropped mid-stream.
        next->queue.push(std::move(*result));
      } else if (sink_) {
        sink_(std::move(*result));
      }
    }
  }

  std::size_t queue_capacity_;
  std::vector<std::unique_ptr<Stage>> stages_;
  Sink sink_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace flotilla::dragon
