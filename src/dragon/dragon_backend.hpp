// Dragon task backend: RP's Dragon executor + launcher (Fig 3).
//
// RP pushes serialized tasks to the Dragon runtime over ZeroMQ pipes and a
// watcher thread receives completion events asynchronously. Error handling
// follows §3.2.2: a startup timeout guards bootstrap, and a runtime crash
// fails affected tasks and marks the backend unhealthy so the agent can
// fail over.
//
// `partitions > 1` implements the paper's declared future work (§4.1.4:
// "Future work will investigate partitioned configurations using Dragon to
// enable concurrency and resilience similar to our approach with Flux"):
// multiple independent Dragon runtimes over disjoint node spans, each with
// its own dispatcher, removing the centralized bottleneck that bends
// throughput down at 64 nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dragon/runtime.hpp"
#include "platform/backend.hpp"

namespace flotilla::dragon {

class DragonBackend : public platform::TaskBackend {
 public:
  DragonBackend(sim::Engine& engine, platform::Cluster& cluster,
                platform::NodeRange span,
                const platform::DragonCalibration& cal, std::uint64_t seed,
                int partitions = 1);
  ~DragonBackend() override;

  const std::string& name() const override { return name_; }
  bool accepts(platform::TaskModality) const override {
    return true;  // Dragon executes both processes and functions
  }
  platform::NodeRange span() const override { return span_; }
  void bootstrap(ReadyHandler ready) override;
  void submit(platform::LaunchRequest request) override;
  void on_task_start(StartHandler handler) override {
    start_handler_ = std::move(handler);
  }
  void on_task_complete(CompletionHandler handler) override {
    completion_handler_ = std::move(handler);
  }
  void shutdown() override;
  bool healthy() const override;
  std::size_t inflight() const override { return inflight_; }
  // Quiesce includes every runtime's capacity queue and active tasks.
  bool quiescent() const override;

  int partitions() const { return static_cast<int>(runtimes_.size()); }
  Runtime& runtime(int i = 0) { return *runtimes_.at(static_cast<size_t>(i)); }

  // Adds per-runtime health and capacity-queue depth: recovery must bring
  // back the same partition topology, including which runtimes were down.
  std::string restore_summary() const override {
    std::string out = TaskBackend::restore_summary();
    for (std::size_t i = 0; i < runtimes_.size(); ++i) {
      out += "|r" + std::to_string(i) + "=" +
             (runtimes_[i]->healthy() ? "up" : "down") + ":" +
             std::to_string(runtimes_[i]->pending());
    }
    return out;
  }

  // Fault injection: every runtime hangs during bootstrap; RP's startup
  // timeout must fire and report failure.
  void set_fail_bootstrap() {
    for (auto& runtime : runtimes_) runtime->fail_silently = true;
  }
  // Fault injection: crash a (or the only) runtime.
  void crash(const std::string& reason = "dragon runtime crashed",
             int instance = 0);

  sim::Time bootstrap_duration() const {
    return runtimes_.front()->bootstrap_duration();
  }

  // Forwards the tracer to every runtime. A single runtime traces as
  // "dragon"; partitioned runtimes trace as "dragon.0", "dragon.1", ...
  void set_trace(obs::TraceHandle handle) override {
    for (std::size_t i = 0; i < runtimes_.size(); ++i) {
      runtimes_[i]->set_trace(
          handle, runtimes_.size() == 1 ? name_
                                        : name_ + "." + std::to_string(i));
    }
  }

 private:
  int pick_runtime(const platform::ResourceDemand& demand) const;
  void fail_task(const std::string& id, const std::string& error);

  sim::Engine& engine_;
  platform::NodeRange span_;
  std::string name_ = "dragon";
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::unordered_map<std::string, int> task_runtime_;
  int cores_per_node_;
  platform::DragonCalibration cal_;
  std::size_t inflight_ = 0;
  mutable int rr_cursor_ = 0;
  bool ready_ = false;
  bool ready_reported_ = false;
  StartHandler start_handler_;
  CompletionHandler completion_handler_;
};

}  // namespace flotilla::dragon
