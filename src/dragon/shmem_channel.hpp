// Single-producer/single-consumer ring buffer, the in-process analogue of
// Dragon's shared-memory queues ("Shmem Queue", Fig 3): a producer and a
// consumer on different threads exchange fixed-size items without locks,
// using acquire/release ordering on head/tail indices.
//
// Capacity is rounded up to a power of two; one slot is kept free to
// distinguish full from empty.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <vector>

namespace flotilla::dragon {

template <typename T>
class ShmemChannel {
 public:
  explicit ShmemChannel(std::size_t min_capacity)
      : buffer_(std::bit_ceil(min_capacity + 1)),
        mask_(buffer_.size() - 1) {}

  // Ordering invariant (TSan-verified by
  // ShmemChannel.StressProducerConsumerIndexOrdering): each side loads its
  // own index relaxed (sole writer), loads the other side's index acquire,
  // and publishes its slot access with a release store — so the slot write
  // happens-before the consumer's read, and the consumer's read
  // happens-before the producer reuses the slot.

  // Producer side. Returns false when full.
  bool try_send(T item) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when empty.
  std::optional<T> try_receive() {
    const auto tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return buffer_.size() - 1; }

  std::size_t size() const {
    const auto head = head_.load(std::memory_order_acquire);
    const auto tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-owned
};

}  // namespace flotilla::dragon
