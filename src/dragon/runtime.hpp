// Dragon runtime model.
//
// Captures the design point §3.2.2 describes: one *centralized* runtime
// spanning the whole span of nodes, dispatching tasks to per-node local
// services with no internal scheduler or partitioning. Characteristic
// behaviour reproduced here:
//
//  - high, node-count-independent dispatch rate at small scale (Fig 5c:
//    343/380 tasks/s at 4/16 nodes) because the dispatcher, not the nodes,
//    is the service center;
//  - throughput decline at larger node counts (204 tasks/s at 64 nodes)
//    because infrastructure traffic (heartbeats, channel management) flows
//    through the same dispatcher and its load grows with the node count;
//  - function tasks dispatch faster than process tasks (warm workers,
//    no process-group setup) — the hybrid experiment's Dragon lane.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "obs/tracer.hpp"
#include "platform/backend.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sched/placer.hpp"
#include "sched/queue.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"

namespace flotilla::dragon {

struct TaskEvent {
  enum class Kind { kStart, kFinish } kind;
  std::string id;
  bool success = true;
  std::string note;
  sim::Time started = 0.0;
  sim::Time finished = 0.0;
};

class Runtime {
 public:
  using EventHandler = std::function<void(const TaskEvent&)>;

  Runtime(sim::Engine& engine, platform::Cluster& cluster,
          platform::NodeRange span, const platform::DragonCalibration& cal,
          std::uint64_t seed);

  // Brings up the runtime overlay (Fig 7: ~9 s). If `fail_silently` was
  // set, the runtime never reports readiness — exercising RP's startup
  // timeout (§3.2.2).
  void bootstrap(std::function<void()> ready);
  bool ready() const { return ready_; }
  sim::Time bootstrap_duration() const { return bootstrap_duration_; }
  bool fail_silently = false;

  void execute(platform::LaunchRequest request);

  void on_event(EventHandler handler) { event_handler_ = std::move(handler); }

  void crash(const std::string& reason);
  bool healthy() const { return healthy_; }
  platform::NodeRange span() const { return span_; }

  // Engine shard this runtime's dispatcher/worker events run on
  // (docs/sharding.md). Defaults to affinity("dragon"); a multi-runtime
  // backend assigns each runtime its own key before bootstrap.
  sim::ShardId shard() const { return shard_; }
  void set_shard(sim::ShardId shard) { shard_ = shard; }

  std::size_t pending() const { return pending_.size(); }
  std::size_t running() const { return active_.size(); }
  std::uint64_t completed() const { return completed_; }

  // Replaces the capacity queue's admission policy (default: strict FIFO,
  // Dragon has no internal scheduler). White-box hook for exercising
  // priority/backfill semantics through the shared QueuePolicy.
  void set_queue_policy(std::unique_ptr<sched::QueuePolicy> policy) {
    pending_.set_policy(std::move(policy));
  }

  // Swaps the span placer's policy (default rotating first-fit).
  void set_placement_policy(sched::PlacementPolicyKind kind) {
    placer_.set_policy(kind);
  }

  // Attaches structured tracing under `component` (e.g. "dragon.0"):
  // bootstrap span, capacity-queue waits, placement attempts.
  void set_trace(obs::TraceHandle handle, std::string component) {
    obs_trace_ = handle;
    trace_component_ = std::move(component);
    pending_.set_trace(handle, trace_component_);
    placer_.set_trace(handle, trace_component_);
  }

 private:
  struct Task {
    platform::LaunchRequest request;
    platform::Placement placement;
    sim::Time started = 0.0;
    bool running = false;
  };

  double infra_share() const;
  void accept(platform::LaunchRequest request);  // shard-local execute half
  void crash_on_shard(const std::string& reason);
  void dispatch(std::shared_ptr<Task> task);
  void start_task(std::shared_ptr<Task> task);
  void finish_task(std::shared_ptr<Task> task);
  void drain_pending();
  void emit_start(const std::string& id, sim::Time started);
  void emit_finish(std::shared_ptr<Task> task, bool success,
                   const std::string& note);

  sim::Engine& engine_;
  sim::ShardId shard_ = sim::kControlShard;
  platform::Cluster& cluster_;
  platform::NodeRange span_;
  platform::DragonCalibration cal_;
  sim::RngStream rng_;
  sim::Server dispatcher_;
  sched::TaskQueue pending_;  // waiting for capacity
  std::unordered_map<std::string, std::shared_ptr<Task>> active_;
  sched::Placer placer_;  // rotating indexed first-fit over the span
  EventHandler event_handler_;
  obs::TraceHandle obs_trace_;
  std::string trace_component_ = "dragon";
  bool ready_ = false;
  bool bootstrap_started_ = false;
  bool healthy_ = true;
  std::uint64_t completed_ = 0;
  sim::Time bootstrap_requested_ = 0.0;
  sim::Time bootstrap_duration_ = 0.0;
};

}  // namespace flotilla::dragon
