#include "dragon/function_executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace flotilla::dragon {

FunctionExecutor::FunctionExecutor(unsigned workers,
                                   std::size_t queue_capacity)
    : queue_(queue_capacity) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

FunctionExecutor::~FunctionExecutor() { shutdown(); }

void FunctionExecutor::enqueue(std::function<void()> job) {
  if (down_.load(std::memory_order_acquire) || !queue_.push(std::move(job))) {
    throw std::runtime_error("FunctionExecutor is shut down");
  }
}

void FunctionExecutor::worker_loop() {
  while (auto job = queue_.pop()) {
    (*job)();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FunctionExecutor::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& future : futures) future.get();
}

void FunctionExecutor::shutdown() {
  bool expected = false;
  if (!down_.compare_exchange_strong(expected, true)) return;
  queue_.close();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

}  // namespace flotilla::dragon
