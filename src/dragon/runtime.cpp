#include "dragon/runtime.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/ordered.hpp"

namespace flotilla::dragon {

Runtime::Runtime(sim::Engine& engine, platform::Cluster& cluster,
                 platform::NodeRange span,
                 const platform::DragonCalibration& cal, std::uint64_t seed)
    : engine_(engine),
      cluster_(cluster),
      span_(span),
      cal_(cal),
      rng_(seed, "dragon"),
      dispatcher_(engine, 1),
      pending_(std::make_unique<sched::FifoPolicy>()),
      placer_(cluster, span) {
  FLOT_CHECK(span.count >= 1, "dragon runtime needs at least one node");
  FLOT_CHECK(span.end() <= cluster.size(), "span exceeds cluster");
  shard_ = engine_.affinity("dragon");
}

void Runtime::bootstrap(std::function<void()> ready) {
  FLOT_CHECK(!bootstrap_started_, "dragon runtime bootstrapped twice");
  bootstrap_started_ = true;
  bootstrap_requested_ = engine_.now();
  // A hung bootstrap (fail_silently) leaves the span open on purpose: the
  // trace shows a bootstrap that never completed.
  obs_trace_.begin(obs::SpanType::kBootstrap, trace_component_, "",
                   static_cast<double>(span_.count));
  if (fail_silently) return;  // never comes up; RP's timeout must fire
  const double duration = rng_.lognormal_mean_cv(
      cal_.bootstrap_base + cal_.bootstrap_per_node * span_.count,
      cal_.jitter_cv / 2);
  // Targeted at this runtime's shard so the dispatcher loop and every
  // task lifecycle event stay shard-local.
  engine_.in(shard_, duration, [this, ready = std::move(ready)] {
    ready_ = true;
    bootstrap_duration_ = engine_.now() - bootstrap_requested_;
    obs_trace_.end(obs::SpanType::kBootstrap, trace_component_, "");
    if (ready) ready();
  });
}

void Runtime::execute(platform::LaunchRequest request) {
  // Called from the backend on the control shard; the dispatcher runs on
  // this runtime's shard (a direct call on a single-shard engine).
  engine_.invoke_on(shard_, [this, request = std::move(request)]() mutable {
    accept(std::move(request));
  });
}

void Runtime::accept(platform::LaunchRequest request) {
  FLOT_CHECK(ready_, "execute on dragon runtime before bootstrap");
  auto task = std::make_shared<Task>();
  task->request = std::move(request);
  if (!healthy_) {
    emit_finish(task, false, "runtime down");
    return;
  }
  dispatch(std::move(task));
}

double Runtime::infra_share() const {
  // Heartbeats and channel-management traffic from every node multiplex
  // onto the same dispatcher event loop as task dispatch. Under processor
  // sharing, a fraction infra_cost*nodes/infra_period of the dispatcher is
  // lost to infrastructure, inflating effective task service times — the
  // centralized drag that bends throughput down at 64 nodes (Fig 5c).
  const double share = cal_.infra_cost * span_.count / cal_.infra_period;
  return std::min(share, 0.85);
}

void Runtime::dispatch(std::shared_ptr<Task> task) {
  // Every task goes through the central dispatcher — this serialization is
  // Dragon's scalability ceiling when launching external processes.
  const double base = task->request.modality == platform::TaskModality::kFunction
                          ? cal_.dispatch_func
                          : cal_.dispatch_exec;
  const double effective = base / (1.0 - infra_share());
  dispatcher_.submit(
      rng_.lognormal_mean_cv(effective, cal_.jitter_cv),
      [this, task = std::move(task)]() mutable {
        if (!healthy_) {
          emit_finish(task, false, "runtime down");
          return;
        }
        auto placement = placer_.place(task->request.demand);
        if (!placement) {
          // No internal scheduler: the task simply waits for capacity,
          // entering the queue wherever its admission policy says.
          sched::QueueEntry entry;
          entry.id = task->request.id;
          entry.priority = task->request.priority;
          entry.demand = task->request.demand;
          entry.payload = std::move(task);
          pending_.push(std::move(entry));
          return;
        }
        task->placement = std::move(*placement);
        active_.emplace(task->request.id, task);
        double setup =
            task->request.modality == platform::TaskModality::kFunction
                ? cal_.func_start
                : cal_.node_spawn_exec;
        // Multi-node process groups pay wireup; Dragon has no optimized
        // PMI fabric, so this is its slowest launch path (§3.1).
        const auto group_nodes = task->placement.slices.size();
        if (group_nodes > 1) {
          setup += cal_.mpi_wireup_base +
                   cal_.mpi_wireup_per_node * static_cast<double>(group_nodes);
        }
        engine_.in(rng_.lognormal_mean_cv(setup, cal_.jitter_cv),
                   [this, task = std::move(task)]() mutable {
                     start_task(std::move(task));
                   });
      });
}

void Runtime::start_task(std::shared_ptr<Task> task) {
  if (active_.count(task->request.id) == 0) return;  // crashed meanwhile
  task->started = engine_.now();
  task->running = true;
  emit_start(task->request.id, task->started);
  // Hoisted: the lambda capture moves `task`, and argument evaluation
  // order is unspecified.
  const sim::Time duration = task->request.duration;
  engine_.in(duration, [this, task = std::move(task)]() mutable {
    finish_task(std::move(task));
  });
}

void Runtime::finish_task(std::shared_ptr<Task> task) {
  if (active_.erase(task->request.id) == 0) return;  // crash reaped it
  placer_.release(task->placement);
  task->placement.slices.clear();
  ++completed_;
  const bool failed = task->request.fail_probability > 0.0 &&
                      rng_.bernoulli(task->request.fail_probability);
  emit_finish(task, !failed, failed ? "worker exited non-zero" : "");
  drain_pending();
}

void Runtime::drain_pending() {
  // Freed capacity admits waiting tasks, oldest first; each re-dispatch
  // costs another pass through the dispatcher.
  if (pending_.empty()) return;
  auto task = std::static_pointer_cast<Task>(pending_.pop_front().payload);
  dispatch(std::move(task));
}

void Runtime::emit_start(const std::string& id, sim::Time started) {
  if (!event_handler_) return;
  TaskEvent event{TaskEvent::Kind::kStart, id, true, "", started, 0.0};
  event_handler_(event);
}

void Runtime::emit_finish(std::shared_ptr<Task> task, bool success,
                          const std::string& note) {
  if (!event_handler_) return;
  TaskEvent event{TaskEvent::Kind::kFinish, task->request.id, success, note,
                  task->started, engine_.now()};
  event_handler_(event);
}

void Runtime::crash(const std::string& reason) {
  engine_.invoke_on(shard_, [this, reason] { crash_on_shard(reason); });
}

void Runtime::crash_on_shard(const std::string& reason) {
  if (!healthy_) return;
  healthy_ = false;
  for (auto& entry : pending_.drain()) {
    emit_finish(std::static_pointer_cast<Task>(entry.payload), false, reason);
  }
  // Sorted so the failure-event sequence is reproducible across runs.
  for (const auto& id : util::sorted_keys(active_)) {
    auto& task = active_.at(id);
    placer_.release(task->placement);
    task->placement.slices.clear();
    emit_finish(task, false, reason);
  }
  active_.clear();
}

}  // namespace flotilla::dragon
