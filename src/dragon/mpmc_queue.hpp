// Bounded multi-producer/multi-consumer queue for the threaded function
// executor. Mutex + two condition variables: simple, correct, and fast
// enough for task granularities where Dragon-style runtimes make sense
// (dispatch cost ~1 ms in the paper; this queue is orders of magnitude
// cheaper). Close semantics let consumers drain and exit cleanly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace flotilla::dragon {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  // Blocks while full; returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  bool try_push(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty; returns nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Wakes all waiters; pushes fail afterwards, pops drain the remainder.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace flotilla::dragon
