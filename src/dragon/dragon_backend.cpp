#include "dragon/dragon_backend.hpp"

#include "platform/cluster.hpp"
#include "util/error.hpp"

namespace flotilla::dragon {

DragonBackend::DragonBackend(sim::Engine& engine, platform::Cluster& cluster,
                             platform::NodeRange span,
                             const platform::DragonCalibration& cal,
                             std::uint64_t seed, int partitions)
    : engine_(engine),
      span_(span),
      cores_per_node_(cluster.spec().cores_per_node),
      cal_(cal) {
  const auto ranges = platform::Cluster::partition(span, partitions);
  runtimes_.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    runtimes_.push_back(std::make_unique<Runtime>(
        engine, cluster, ranges[i], cal, seed + 104729 * (i + 1)));
    // Each runtime gets its own shard key so partitioned deployments spread
    // over the engine's worker shards instead of pinning to one.
    runtimes_.back()->set_shard(
        engine.affinity("dragon." + std::to_string(i)));
    // The watcher thread: consumes Dragon events and updates RP's registry.
    runtimes_.back()->on_event([this](const TaskEvent& event) {
      if (event.kind == TaskEvent::Kind::kStart) {
        if (start_handler_) start_handler_(event.id);
        return;
      }
      task_runtime_.erase(event.id);
      FLOT_CHECK(inflight_ > 0, "dragon completion without inflight task");
      --inflight_;
      platform::LaunchOutcome outcome;
      outcome.id = event.id;
      outcome.success = event.success;
      outcome.error = event.note;
      outcome.started = event.started;
      outcome.finished = event.finished;
      if (completion_handler_) completion_handler_(outcome);
    });
  }
}

DragonBackend::~DragonBackend() = default;

void DragonBackend::bootstrap(ReadyHandler ready) {
  auto ready_shared = std::make_shared<ReadyHandler>(std::move(ready));
  auto remaining = std::make_shared<int>(static_cast<int>(runtimes_.size()));
  for (auto& runtime : runtimes_) {
    runtime->bootstrap([this, remaining, ready_shared] {
      if (--*remaining > 0 || ready_reported_) return;
      ready_reported_ = true;
      ready_ = true;
      (*ready_shared)(true, "");
    });
  }
  // §3.2.2: startup timeouts prevent RP from stalling on a hung runtime.
  engine_.in(cal_.startup_timeout, [this, ready_shared] {
    if (ready_reported_) return;
    ready_reported_ = true;
    for (auto& runtime : runtimes_) {
      if (runtime->healthy()) runtime->crash("startup timeout");
    }
    (*ready_shared)(false, "dragon runtime startup timed out");
  });
}

int DragonBackend::pick_runtime(
    const platform::ResourceDemand& demand) const {
  const int n = static_cast<int>(runtimes_.size());
  for (int step = 0; step < n; ++step) {
    const int i = (rr_cursor_ + step) % n;
    const auto& runtime = *runtimes_[static_cast<size_t>(i)];
    if (!runtime.healthy()) continue;
    const auto capacity =
        static_cast<std::int64_t>(runtime.span().count) * cores_per_node_;
    if (demand.cores > capacity) continue;
    rr_cursor_ = (i + 1) % n;
    return i;
  }
  return -1;
}

void DragonBackend::fail_task(const std::string& id,
                              const std::string& error) {
  FLOT_CHECK(inflight_ > 0, "fail without inflight task");
  --inflight_;
  platform::LaunchOutcome outcome;
  outcome.id = id;
  outcome.success = false;
  outcome.error = error;
  outcome.finished = engine_.now();
  if (completion_handler_) completion_handler_(outcome);
}

void DragonBackend::submit(platform::LaunchRequest request) {
  FLOT_CHECK(ready_, "submit to dragon backend before bootstrap");
  ++inflight_;
  const int target = pick_runtime(request.demand);
  if (target < 0) {
    fail_task(request.id, "no healthy dragon runtime can fit task");
    return;
  }
  task_runtime_[request.id] = target;
  runtimes_[static_cast<size_t>(target)]->execute(std::move(request));
}

void DragonBackend::crash(const std::string& reason, int instance) {
  runtimes_.at(static_cast<size_t>(instance))->crash(reason);
}

bool DragonBackend::quiescent() const {
  if (inflight_ != 0) return false;
  for (const auto& runtime : runtimes_) {
    if (runtime->pending() != 0 || runtime->running() != 0) return false;
  }
  return true;
}

bool DragonBackend::healthy() const {
  if (!ready_) return false;
  for (const auto& runtime : runtimes_) {
    if (runtime->healthy()) return true;
  }
  return false;
}

void DragonBackend::shutdown() {
  for (auto& runtime : runtimes_) {
    if (runtime->healthy()) runtime->crash("backend shut down");
  }
  ready_ = false;
}

}  // namespace flotilla::dragon
