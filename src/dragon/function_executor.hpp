// Real threaded function executor: Dragon's native mode, in C++.
//
// The paper runs "in-memory Python functions" on warm Dragon workers; the
// C++ analogue is a pool of warm worker threads executing std::function
// tasks from a bounded MPMC queue, with futures for results. This is the
// execution engine the examples use to mix real function tasks with
// simulated executable workloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "dragon/mpmc_queue.hpp"

namespace flotilla::dragon {

class FunctionExecutor {
 public:
  // `workers` = warm worker threads; `queue_capacity` bounds the backlog
  // (submit blocks when full, providing natural backpressure).
  explicit FunctionExecutor(unsigned workers = 0,
                            std::size_t queue_capacity = 4096);
  ~FunctionExecutor();

  FunctionExecutor(const FunctionExecutor&) = delete;
  FunctionExecutor& operator=(const FunctionExecutor&) = delete;

  // Schedules `fn` and returns a future for its result. Throws
  // std::runtime_error if the executor was shut down.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    auto future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Drains queued work, then joins the workers. Idempotent.
  void shutdown();

  unsigned worker_count() const { return static_cast<unsigned>(threads_.size()); }
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> down_{false};
};

}  // namespace flotilla::dragon
