#include "analyze/baseline.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace flotilla::analyze {

namespace {

// Splits `rule|file|line|message` (message keeps any further '|').
bool parse_line(const std::string& line, Finding* out) {
  const std::size_t p1 = line.find('|');
  if (p1 == std::string::npos) return false;
  const std::size_t p2 = line.find('|', p1 + 1);
  if (p2 == std::string::npos) return false;
  const std::size_t p3 = line.find('|', p2 + 1);
  if (p3 == std::string::npos) return false;
  out->rule = line.substr(0, p1);
  out->file = line.substr(p1 + 1, p2 - p1 - 1);
  const std::string line_str = line.substr(p2 + 1, p3 - p2 - 1);
  char* end = nullptr;
  out->line = std::strtoul(line_str.c_str(), &end, 10);
  if (end == line_str.c_str() || *end != '\0') return false;
  out->message = line.substr(p3 + 1);
  return !out->rule.empty() && !out->file.empty();
}

}  // namespace

bool parse_baseline(const std::string& text, std::set<Finding>* out,
                    std::string* error) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    Finding f;
    if (!parse_line(line.substr(first), &f)) {
      *error = "baseline line " + std::to_string(lineno) +
               ": expected 'rule|file|line|message'";
      return false;
    }
    out->insert(std::move(f));
  }
  return true;
}

bool load_baseline(const std::string& path, std::set<Finding>* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return true;  // no baseline yet: everything is a fresh finding
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_baseline(buf.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# flotilla-analyze baseline: grandfathered findings, one per line as\n"
      "# rule|file|line|message. CI fails only on findings not listed here.\n"
      "# Regenerate with: flotilla-analyze --write-baseline <this file>\n";
  for (const Finding& f : findings) {
    out += f.rule + "|" + f.file + "|" + std::to_string(f.line) + "|" +
           f.message + "\n";
  }
  return out;
}

bool save_baseline(const std::string& path,
                   const std::vector<Finding>& findings, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = path + ": cannot open for writing";
    return false;
  }
  out << format_baseline(findings);
  out.flush();
  if (!out) {
    *error = path + ": write failed";
    return false;
  }
  return true;
}

}  // namespace flotilla::analyze
