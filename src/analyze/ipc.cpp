#include "analyze/ipc.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

namespace flotilla::analyze {

namespace {

// Blocking even with no resolvable callee: these names block the calling
// thread outright. The cv wait members are excluded at depth 0 —
// `cv.wait(lk)` releases the lock it is handed — but still propagate
// through summaries, because a *caller's* lock is not released.
bool depth0_blocking(const std::string& name) {
  return name == "join" || name == "wait_all" || name == "sleep_for" ||
         name == "sleep_until" || name == "usleep" || name == "nanosleep";
}

std::string quoted_list(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += "'" + n + "'";
  }
  return out;
}

void push_unique(const Finding& f, std::set<std::string>* seen,
                 std::vector<Finding>* findings) {
  const std::string key =
      f.file + "|" + std::to_string(f.line) + "|" + f.rule + "|" + f.message;
  if (seen->insert(key).second) findings->push_back(f);
}

}  // namespace

// ---------------------------------------------------------------------------
// ipc-locks
// ---------------------------------------------------------------------------

std::vector<std::string> IpcLocksPass::rules() const {
  return {"ipc-blocking-under-lock", "ipc-self-deadlock"};
}

void IpcLocksPass::run(const AnalysisInput& input,
                       std::vector<Finding>* findings) const {
  if (!input.program) return;
  const ProgramModel& model = *input.program;
  std::set<std::string> seen;
  for (const ResolvedCall& call : model.calls) {
    if (call.held.empty() || call.callback) continue;
    const std::string& file = input.files[call.file_index].display;

    // Self-deadlock: some callee (transitively) re-acquires a held mutex.
    // One finding per re-acquired mutex; callees are visited in id order,
    // so the reported path is deterministic.
    std::map<std::string, std::string> reacquired;  // mutex -> where
    bool blocks = depth0_blocking(call.name);
    std::string block_path;
    for (int callee : call.callees) {
      const FunctionSummary& sub = model.summaries[callee];
      for (const std::string& mutex : call.held) {
        if (sub.mutexes.count(mutex) == 0) continue;
        if (reacquired.count(mutex) > 0) continue;
        reacquired[mutex] =
            "'" + model.functions[callee].def.name + "'" +
            model.trail(callee, &FunctionSummary::mutexes, mutex);
      }
      if (!blocks && block_path.empty() && !sub.blocking.empty()) {
        const auto& entry = *sub.blocking.begin();
        block_path =
            ": '" + model.functions[callee].def.name + "'" +
            model.trail(callee, &FunctionSummary::blocking, entry.first) +
            " reaches '" + entry.first + "'";
      }
    }
    for (const auto& [mutex, where] : reacquired) {
      push_unique(
          {file, call.line, "ipc-self-deadlock",
           "call to '" + call.name + "' while holding '" + mutex +
               "' self-deadlocks: " + where +
               " re-acquires it; release the lock before the call, or "
               "acquire the mutex once at the top level"},
          &seen, findings);
    }
    if (blocks) {
      push_unique(
          {file, call.line, "ipc-blocking-under-lock",
           "'" + call.name + "' blocks while holding " +
               quoted_list(call.held) +
               "; never sleep or join with a lock held"},
          &seen, findings);
    } else if (!block_path.empty()) {
      push_unique(
          {file, call.line, "ipc-blocking-under-lock",
           "call to '" + call.name + "' may block while holding " +
               quoted_list(call.held) + block_path +
               "; release the lock before calling into blocking code"},
          &seen, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// ipc-determinism
// ---------------------------------------------------------------------------

std::vector<std::string> IpcDeterminismPass::rules() const {
  return {"ipc-determinism"};
}

void IpcDeterminismPass::run(const AnalysisInput& input,
                             std::vector<Finding>* findings) const {
  if (!input.program) return;
  const ProgramModel& model = *input.program;

  std::vector<std::vector<const ResolvedCall*>> by_file(input.files.size());
  for (const ResolvedCall& call : model.calls) {
    if (!call.callback && !call.callees.empty()) {
      by_file[call.file_index].push_back(&call);
    }
  }

  std::set<std::string> seen;
  for (std::size_t fi = 0; fi < input.files.size(); ++fi) {
    const SourceFile& file = input.files[fi];
    for (const SinkFact& sink : file.facts.sinks) {
      for (const ResolvedCall* call : by_file[fi]) {
        if (call->token <= sink.open || call->token >= sink.close) continue;
        for (int callee : call->callees) {
          const FunctionSummary& sub = model.summaries[callee];
          for (const auto& [rule, origin] : sub.nondet) {
            (void)origin;
            const std::string what =
                rule == "wall-clock" ? "wall-clock time"
                                     : "unseeded randomness";
            push_unique(
                {file.display, sink.line, "ipc-determinism",
                 sink.what + " takes a value from '" + call->name +
                     "': '" + model.functions[callee].def.name + "'" +
                     model.trail(callee, &FunctionSummary::nondet, rule) +
                     " reads " + what +
                     "; trace content must be simulation-deterministic "
                     "(derive it from sim time or a seeded RngStream)"},
                &seen, findings);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// shared-state
// ---------------------------------------------------------------------------

bool component_suffix(const std::string& qualified,
                      const std::string& suffix) {
  if (qualified.size() < suffix.size()) return false;
  if (qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
    return false;
  }
  const std::size_t at = qualified.size() - suffix.size();
  if (at == 0) return true;
  return at >= 2 && qualified.compare(at - 2, 2, "::") == 0;
}

bool function_matches(const std::string& qualified,
                      const std::string& pattern) {
  if (pattern.size() > 3 &&
      pattern.compare(pattern.size() - 3, 3, "::*") == 0) {
    const std::string component = pattern.substr(0, pattern.size() - 3) + "::";
    if (qualified.compare(0, component.size(), component) == 0) return true;
    return qualified.find("::" + component) != std::string::npos;
  }
  return component_suffix(qualified, pattern);
}

const ConfinedAnnotation* match_annotation(
    const std::vector<ConfinedAnnotation>* confined,
    const std::string& target, const std::string& function) {
  if (confined == nullptr) return nullptr;
  for (const ConfinedAnnotation& a : *confined) {
    if (a.target != "*" && a.target != target) continue;
    if (function_matches(function, a.function)) return &a;
  }
  return nullptr;
}

bool load_confined_annotations(const std::string& path,
                               std::vector<ConfinedAnnotation>* out,
                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open confined-annotation file";
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    ConfinedAnnotation a;
    a.line = lineno;
    fields >> a.target >> a.function >> a.status;
    std::getline(fields, a.reason);
    const std::size_t start = a.reason.find_first_not_of(" \t");
    a.reason = start == std::string::npos ? "" : a.reason.substr(start);
    if (a.target.empty() || a.function.empty() || a.reason.empty() ||
        (a.status != "verified" && a.status != "assume")) {
      *error = path + ":" + std::to_string(lineno) +
               ": expected 'target function verified|assume reason...'";
      return false;
    }
    const std::size_t colon = a.reason.find_first_of(": \t");
    a.kind = colon == std::string::npos ? a.reason : a.reason.substr(0, colon);
    if (a.kind != "owner-confined" && a.kind != "shard-confined" &&
        a.kind != "threads-pinned" && a.kind != "host-tooling") {
      *error = path + ":" + std::to_string(lineno) +
               ": reason must open with owner-confined, shard-confined, "
               "threads-pinned, or host-tooling, got '" +
               a.kind + "'";
      return false;
    }
    out->push_back(std::move(a));
  }
  return true;
}

std::vector<SharedStateEntry> collect_shared_state(
    const AnalysisInput& input,
    const std::vector<ConfinedAnnotation>* confined) {
  if (!input.program) return {};
  const ProgramModel& model = *input.program;

  std::vector<char> reachable(model.functions.size(), 0);
  std::vector<int> stack;
  for (const FunctionNode& node : model.functions) {
    if (component_suffix(node.def.qualified, "sim::Engine::run")) {
      reachable[node.id] = 1;
      stack.push_back(node.id);
    }
  }
  bool hub_expanded = false;
  while (!stack.empty()) {
    const int fn = stack.back();
    stack.pop_back();
    for (int callee : model.callees[fn]) {
      if (reachable[callee] == 0) {
        reachable[callee] = 1;
        stack.push_back(callee);
      }
    }
    // Anything scheduled as a callback can run from the event loop:
    // over-approximate with every lambda and address-taken function.
    if (model.summaries[fn].invokes_callback && !hub_expanded) {
      hub_expanded = true;
      for (int target : model.callback_targets) {
        if (reachable[target] == 0) {
          reachable[target] = 1;
          stack.push_back(target);
        }
      }
    }
  }

  std::map<std::tuple<std::string, std::string, std::string>,
           SharedStateEntry>
      merged;
  for (const FunctionNode& node : model.functions) {
    if (reachable[node.id] == 0) continue;
    for (const WriteFact& write : model.summaries[node.id].writes) {
      if (write.guarded) continue;
      const auto key = std::make_tuple(node.display_file, write.target,
                                       node.def.qualified);
      auto [it, inserted] = merged.try_emplace(key);
      SharedStateEntry& entry = it->second;
      if (inserted) {
        entry.kind = write.kind;
        entry.target = write.target;
        entry.file = node.display_file;
        entry.line = write.line;
        entry.function = node.def.qualified;
      }
      entry.line = std::min(entry.line, write.line);
      ++entry.sites;
    }
  }

  std::vector<SharedStateEntry> entries;
  for (auto& [key, entry] : merged) {
    (void)key;
    const ConfinedAnnotation* a =
        match_annotation(confined, entry.target, entry.function);
    if (a != nullptr) entry.confinement = a->reason;
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SharedStateEntry& a, const SharedStateEntry& b) {
              return std::tie(a.file, a.line, a.target, a.function) <
                     std::tie(b.file, b.line, b.target, b.function);
            });
  return entries;
}

void write_shared_state_report(const std::vector<SharedStateEntry>& entries,
                               std::ostream& out) {
  std::size_t confined = 0;
  for (const SharedStateEntry& e : entries) {
    if (!e.confinement.empty()) ++confined;
  }
  out << "# flotilla-analyze shared-state report: unguarded writes "
         "reachable from sim::Engine::run\n";
  out << "# total " << entries.size() << " entries: " << confined
      << " confined-by-annotation, " << entries.size() - confined
      << " unannotated\n";
  out << "# kind\ttarget\tfirst-site\tsites\tfunction\tconfinement\n";
  for (const SharedStateEntry& e : entries) {
    out << (e.kind == WriteFact::Kind::kMember ? "member" : "global")
        << '\t' << e.target << '\t' << e.file << ':' << e.line << '\t'
        << e.sites << '\t' << e.function << '\t'
        << (e.confinement.empty() ? "-" : e.confinement) << '\n';
  }
}

std::vector<std::string> SharedStatePass::rules() const {
  return {"shared-state"};
}

void SharedStatePass::run(const AnalysisInput& input,
                          std::vector<Finding>* findings) const {
  for (const SharedStateEntry& e : collect_shared_state(input)) {
    std::string message =
        std::string(e.kind == WriteFact::Kind::kMember ? "member '"
                                                       : "global '") +
        e.target + "' written without a guard in '" + e.function + "'";
    if (e.sites > 1) {
      message += " (" + std::to_string(e.sites) + " sites)";
    }
    message +=
        ", reachable from sim::Engine::run; guard it or make it "
        "shard-local before the engine-sharding refactor (ROADMAP 1)";
    findings->push_back({e.file, e.line, "shared-state", message});
  }
}

}  // namespace flotilla::analyze
