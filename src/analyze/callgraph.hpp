// Whole-program call graph and bottom-up function summaries
// (docs/correctness.md, "Interprocedural analysis").
//
// Phase two of the two-phase driver: the per-file facts
// (analyze/facts.hpp) are linked into a ProgramModel — every function
// definition becomes a node, every call-shaped site is resolved to a
// candidate callee set by qualified name, and per-function summaries
// (mutexes acquired, blocking calls, nondeterminism sources) are
// propagated bottom-up to a fixpoint. The interprocedural passes
// (analyze/ipc.hpp) consume the model read-only.
//
// Resolution is deliberately an over-approximation:
//   - unqualified free calls try, in order: methods of the caller's own
//     class, free functions in the same file, then any function of that
//     name anywhere;
//   - member calls (x.f(), this->f()) match every function named f that
//     is defined inside some class (filtered to the caller's class for
//     `this->`);
//   - names harvested as virtual methods add every same-named definition
//     (dynamic dispatch can land in any override);
//   - calls through callback variables (the `*Callback`/std::function
//     harvest the lock pass uses) resolve to no direct edge; they mark
//     the caller as a callback invoker, and shared-state reachability
//     treats every lambda and address-taken function as a possible
//     target.
//
// Mutex identity: guard mutex names ending in '_' are member fields and
// are qualified with the acquiring function's class ("Engine::mu_"), so
// same-named fields of different classes never alias. Bare names (locals,
// globals) stay raw.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analyze/facts.hpp"
#include "analyze/pass.hpp"

namespace flotilla::analyze {

// Where a summary entry came from: directly from the function's own body
// (via < 0, line = source line), or from a callee (via = callee function
// id, line = line of the call site). Chains are reconstructed by
// following `via` through the callee's summary.
struct Origin {
  int via = -1;
  std::size_t line = 0;
};

// Transitive effects of calling a function, after fixpoint propagation.
struct FunctionSummary {
  std::map<std::string, Origin> mutexes;   // qualified mutex -> acquisition
  std::map<std::string, Origin> blocking;  // blocking callee name -> origin
  std::map<std::string, Origin> nondet;    // taint rule -> origin
  bool invokes_callback = false;           // calls through a callback var
  std::vector<WriteFact> writes;           // direct writes only
};

struct FunctionNode {
  int id = -1;
  int file_index = -1;        // into AnalysisInput::files
  FunctionDef def;
  std::string display_file;   // files[file_index].display
};

// A call-shaped site after resolution.
struct ResolvedCall {
  int caller = -1;            // function id, -1 when at namespace scope
  int file_index = -1;
  std::size_t token = 0;      // index of the name token in its file
  std::size_t line = 0;
  std::string name;
  bool callback = false;      // through a callback variable; callees empty
  bool member = false;        // invoked through '.' or '->'
  bool on_this = false;       // receiver is `this`
  std::string receiver;       // receiver identifier; empty when unknown
  std::vector<int> callees;   // candidate function ids (direct + virtual)
  std::vector<std::string> held;  // qualified mutexes held at the site
};

struct ProgramModel {
  std::vector<FunctionNode> functions;
  std::vector<FunctionSummary> summaries;  // parallel to functions
  std::vector<std::vector<int>> callees;   // union of edges per function
  std::vector<ResolvedCall> calls;
  // Possible targets of a callback invocation: every lambda plus every
  // address-taken function. Used for shared-state reachability only.
  std::vector<int> callback_targets;
  // Program-wide declaration harvest (callback vars, virtual methods).
  DeclHarvest merged;

  // Functions named `name` (last component), ids in ascending order.
  const std::vector<int>* by_name(const std::string& name) const;

  // Human-readable via-trail for a summary entry of `fn`, e.g.
  // " (via 'flush' -> 'append')"; empty for direct entries. `pick`
  // selects the map: &FunctionSummary::mutexes etc.
  std::string trail(int fn,
                    std::map<std::string, Origin> FunctionSummary::*pick,
                    const std::string& key) const;

  std::map<std::string, std::vector<int>> name_index;
};

// Qualifies a raw guard-argument mutex name with the acquiring class:
// trailing-underscore names are member fields.
std::string qualify_mutex(const std::string& raw,
                          const std::string& class_ctx);

// Links facts across files and runs summary propagation to a fixpoint.
ProgramModel build_program(const AnalysisInput& input);

}  // namespace flotilla::analyze
