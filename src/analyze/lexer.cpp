#include "analyze/lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace flotilla::analyze {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Phase 1: blank out comments (recording their text per line) while
// leaving string/char literals intact — include paths are quoted, so the
// directive parser still needs them. The state machine must be
// literal-aware: "/*" inside a string is not a comment.
std::string strip_comments(const std::string& src,
                           std::map<std::size_t, std::string>* comments) {
  std::string out = src;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  std::size_t line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') ++line;
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          (*comments)[line] += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          (*comments)[line] += "/*";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(src[i - 1]))) {
          const std::size_t open = src.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delim = ")" + src.substr(i + 2, open - i - 2) + "\"";
          for (std::size_t j = i; j <= open; ++j) {
            if (src[j] == '\n') ++line;
          }
          i = open;
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && is_digit(src[i - 1]))) {
          // (digit separators like 1'000'000 are not char literals)
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          (*comments)[line] += c;
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          if (next == '\n') ++line;
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          (*comments)[line] += c;
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < src.size()) {
          if (next == '\n') ++line;
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < src.size()) {
          if (next == '\n') ++line;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// Trims leading/trailing whitespace in place.
std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

class Tokenizer {
 public:
  Tokenizer(const std::string& code, LexedFile* out)
      : code_(code), out_(out) {}

  void run() {
    bool line_start = true;
    while (i_ < code_.size()) {
      const char c = code_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        line_start = true;
        continue;
      }
      if (is_space(c)) {
        ++i_;
        continue;
      }
      if (line_start && c == '#') {
        directive();
        line_start = true;  // directive consumed its trailing newline
        continue;
      }
      line_start = false;
      if (is_ident_char(c) && !is_digit(c)) {
        identifier_or_literal_prefix();
      } else if (is_digit(c) || (c == '.' && i_ + 1 < code_.size() &&
                                 is_digit(code_[i_ + 1]))) {
        number();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'') {
        char_literal();
      } else {
        punct();
      }
    }
  }

 private:
  void emit(TokenKind kind, std::string text, std::size_t line) {
    out_->tokens.push_back(Token{kind, std::move(text), line});
  }

  // One logical preprocessor line, honoring backslash continuations.
  void directive() {
    const std::size_t line = line_;
    std::string text;
    ++i_;  // '#'
    while (i_ < code_.size()) {
      const char c = code_[i_];
      if (c == '\\') {
        // Continuation: backslash, optional spaces, newline.
        std::size_t j = i_ + 1;
        while (j < code_.size() && code_[j] != '\n' && is_space(code_[j])) ++j;
        if (j < code_.size() && code_[j] == '\n') {
          ++line_;
          i_ = j + 1;
          text += ' ';
          continue;
        }
      }
      if (c == '\n') {
        ++line_;
        ++i_;
        break;
      }
      text += c;
      ++i_;
    }
    parse_directive(trimmed(text), line);
  }

  void parse_directive(const std::string& text, std::size_t line) {
    std::size_t p = 0;
    while (p < text.size() && is_ident_char(text[p])) ++p;
    const std::string name = text.substr(0, p);
    while (p < text.size() && is_space(text[p])) ++p;
    const std::string rest = text.substr(p);
    if (name == "include") {
      IncludeDirective inc;
      inc.line = line;
      if (!rest.empty() && rest[0] == '"') {
        const std::size_t close = rest.find('"', 1);
        if (close != std::string::npos) {
          inc.path = rest.substr(1, close - 1);
          out_->includes.push_back(std::move(inc));
        }
      } else if (!rest.empty() && rest[0] == '<') {
        const std::size_t close = rest.find('>', 1);
        if (close != std::string::npos) {
          inc.path = rest.substr(1, close - 1);
          inc.system = true;
          out_->includes.push_back(std::move(inc));
        }
      }
    } else if (name == "if" || name == "ifdef" || name == "ifndef" ||
               name == "elif") {
      out_->conditionals.push_back({name, trimmed(rest), line});
    } else if (name == "else" || name == "endif") {
      out_->conditionals.push_back({name, "", line});
    }
  }

  void identifier_or_literal_prefix() {
    const std::size_t line = line_;
    std::size_t begin = i_;
    while (i_ < code_.size() && is_ident_char(code_[i_])) ++i_;
    std::string text = code_.substr(begin, i_ - begin);
    if (i_ < code_.size() && code_[i_] == '"') {
      if (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
          text == "LR") {
        raw_string_literal(line);
        return;
      }
      if (text == "u8" || text == "u" || text == "U" || text == "L") {
        string_literal();
        return;
      }
    }
    if (i_ < code_.size() && code_[i_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      char_literal();
      return;
    }
    emit(TokenKind::kIdentifier, std::move(text), line);
  }

  void number() {
    const std::size_t line = line_;
    const std::size_t begin = i_;
    while (i_ < code_.size()) {
      const char c = code_[i_];
      if (is_ident_char(c) || c == '.') {
        ++i_;
      } else if (c == '\'' && i_ + 1 < code_.size() &&
                 is_ident_char(code_[i_ + 1])) {
        i_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') && i_ > begin &&
                 (code_[i_ - 1] == 'e' || code_[i_ - 1] == 'E' ||
                  code_[i_ - 1] == 'p' || code_[i_ - 1] == 'P')) {
        ++i_;  // exponent sign
      } else {
        break;
      }
    }
    emit(TokenKind::kNumber, code_.substr(begin, i_ - begin), line);
  }

  void string_literal() {
    const std::size_t line = line_;
    ++i_;  // opening quote
    while (i_ < code_.size()) {
      const char c = code_[i_];
      if (c == '\\' && i_ + 1 < code_.size()) {
        if (code_[i_ + 1] == '\n') ++line_;
        i_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // unterminated; keep line counts honest
      ++i_;
      if (c == '"') break;
    }
    emit(TokenKind::kString, "\"\"", line);
  }

  void char_literal() {
    const std::size_t line = line_;
    ++i_;  // opening quote
    while (i_ < code_.size()) {
      const char c = code_[i_];
      if (c == '\\' && i_ + 1 < code_.size()) {
        if (code_[i_ + 1] == '\n') ++line_;
        i_ += 2;
        continue;
      }
      if (c == '\n') ++line_;
      ++i_;
      if (c == '\'') break;
    }
    emit(TokenKind::kChar, "''", line);
  }

  void raw_string_literal(std::size_t line) {
    // At code_[i_] == '"' of R"delim( ... )delim".
    const std::size_t open = code_.find('(', i_ + 1);
    if (open == std::string::npos) {
      i_ = code_.size();
      emit(TokenKind::kString, "\"\"", line);
      return;
    }
    const std::string delim =
        ")" + code_.substr(i_ + 1, open - i_ - 1) + "\"";
    std::size_t end = code_.find(delim, open + 1);
    if (end == std::string::npos) end = code_.size();
    for (std::size_t j = i_; j < end && j < code_.size(); ++j) {
      if (code_[j] == '\n') ++line_;
    }
    i_ = end == code_.size() ? end : end + delim.size();
    emit(TokenKind::kString, "\"\"", line);
  }

  void punct() {
    const std::size_t line = line_;
    // "::" and "->" matter to the passes (qualified names, member calls);
    // everything else is a single-character token.
    if (i_ + 1 < code_.size()) {
      const char a = code_[i_];
      const char b = code_[i_ + 1];
      if ((a == ':' && b == ':') || (a == '-' && b == '>')) {
        emit(TokenKind::kPunct, std::string{a, b}, line);
        i_ += 2;
        return;
      }
    }
    emit(TokenKind::kPunct, std::string(1, code_[i_]), line);
    ++i_;
  }

  const std::string& code_;
  LexedFile* out_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

LexedFile lex_string(const std::string& path, const std::string& source) {
  LexedFile out;
  out.path = path;
  const std::string code = strip_comments(source, &out.comments);
  Tokenizer(code, &out).run();
  return out;
}

bool lex_file(const std::string& path, LexedFile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = lex_string(path, buffer.str());
  return true;
}

}  // namespace flotilla::analyze
