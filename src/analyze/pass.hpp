// Pass registry for the static-analysis framework.
//
// A Pass sees the whole lexed tree at once (cross-file analyses like
// include-graph layering and lock-order pairing need global state) and
// appends Findings. The driver (analyze/driver.hpp) owns file collection,
// waiver filtering, baseline suppression, and output formatting; passes
// only detect.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/facts.hpp"
#include "analyze/lexer.hpp"
#include "analyze/scopes.hpp"

namespace flotilla::analyze {

struct ProgramModel;  // analyze/callgraph.hpp

struct Finding {
  std::string file;     // display path (repo-relative when scanned via driver)
  std::size_t line = 0;
  std::string rule;     // stable rule id, e.g. "arch-layering"
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule &&
           a.message == b.message;
  }
};

struct SourceFile {
  std::string display;        // diagnostic path ('/'-separated)
  LexedFile lex;
  BodyIndex bodies;
  // True when the file is simulation code subject to determinism rules
  // (see analyze/determinism.hpp for the scope definition).
  bool determinism_scope = false;
  // Paired header lexed alongside a .cpp (declarations referenced by
  // heuristic passes live there); nullptr when none exists.
  std::shared_ptr<LexedFile> paired_header;
  // Per-file facts for the interprocedural layer (analyze/facts.hpp),
  // filled by load_source alongside the body index.
  FileFacts facts;
};

struct ConfinedAnnotation;  // analyze/ipc.hpp

struct AnalysisInput {
  std::vector<SourceFile> files;  // sorted by display path
  // Whole-program model (analyze/callgraph.hpp), built by the driver
  // after every file is loaded; null in single-file front-ends that never
  // run interprocedural passes.
  std::shared_ptr<const ProgramModel> program;
  // Confinement claims loaded from --confined (analyze/ipc.hpp); null
  // when none were given. The shared-state report marks matching
  // inventory entries with them, and the confinement pass (conf-*)
  // verifies every claim whose status column says "verified".
  const std::vector<ConfinedAnnotation>* confined = nullptr;
  // Display path of the claims file, for conf-stale-claim diagnostics.
  std::string confined_path;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  // Stable rule ids this pass can emit (for --list-rules and SARIF rule
  // metadata). Sorted.
  virtual std::vector<std::string> rules() const = 0;
  virtual void run(const AnalysisInput& input,
                   std::vector<Finding>* findings) const = 0;
};

class PassRegistry {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }
  const Pass* find(std::string_view pass_name) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// True when `comment_line`'s comment carries a well-formed waiver for
// `rule`: FLOTILLA_LINT_ALLOW(<rule>|*): <mandatory reason>.
bool waived(const LexedFile& lex, std::size_t line, const std::string& rule);

}  // namespace flotilla::analyze
