#include "analyze/sarif.hpp"

#include <ostream>

#include "analyze/rules.hpp"

namespace flotilla::analyze {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_sarif(std::ostream& os, const std::string& tool_name,
                 const std::vector<std::string>& rule_ids,
                 const std::vector<SarifResult>& results) {
  os << "{\n";
  os << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  os << "  \"version\": \"2.1.0\",\n";
  os << "  \"runs\": [\n";
  os << "    {\n";
  os << "      \"tool\": {\n";
  os << "        \"driver\": {\n";
  os << "          \"name\": \"" << json_escape(tool_name) << "\",\n";
  os << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    const char* tail = i + 1 < rule_ids.size() ? "," : "";
    const RuleMeta* meta = find_rule_meta(rule_ids[i]);
    if (meta == nullptr) {
      os << "            {\"id\": \"" << json_escape(rule_ids[i]) << "\"}"
         << tail << "\n";
      continue;
    }
    os << "            {\n";
    os << "              \"id\": \"" << json_escape(rule_ids[i]) << "\",\n";
    os << "              \"fullDescription\": {\"text\": \""
       << json_escape(meta->summary) << "\"},\n";
    os << "              \"helpUri\": \"docs/correctness.md#"
       << json_escape(meta->anchor) << "\",\n";
    os << "              \"defaultConfiguration\": {\"level\": \""
       << severity_name(meta->severity) << "\"}\n";
    os << "            }" << tail << "\n";
  }
  os << "          ]\n";
  os << "        }\n";
  os << "      },\n";
  os << "      \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Finding& f = results[i].finding;
    os << "        {\n";
    os << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n";
    os << "          \"level\": \"" << severity_name(rule_severity(f.rule))
       << "\",\n";
    os << "          \"message\": {\"text\": \"" << json_escape(f.message)
       << "\"},\n";
    os << "          \"locations\": [\n";
    os << "            {\n";
    os << "              \"physicalLocation\": {\n";
    os << "                \"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"},\n";
    os << "                \"region\": {\"startLine\": " << f.line << "}\n";
    os << "              }\n";
    os << "            }\n";
    os << "          ]";
    if (results[i].suppressed) {
      os << ",\n          \"suppressions\": [{\"kind\": \"external\"}]\n";
    } else {
      os << "\n";
    }
    os << "        }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "      ]\n";
  os << "    }\n";
  os << "  ]\n";
  os << "}\n";
}

void write_text(std::ostream& os, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": error: [" << f.rule << "] "
       << f.message << "\n";
  }
}

}  // namespace flotilla::analyze
