#include "analyze/guards.hpp"

namespace flotilla::analyze {

namespace {

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_lock_tag(const std::string& t) {
  return t == "adopt_lock" || t == "defer_lock" || t == "try_to_lock";
}

}  // namespace

std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || !is_punct(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], "<")) ++depth;
    if (is_punct(toks[j], ">") && --depth == 0) return j + 1;
    if (is_punct(toks[j], ";")) break;  // malformed; bail out
  }
  return i;
}

void parse_guard_args(const std::vector<Token>& toks, std::size_t open,
                      std::vector<std::string>* mutexes, bool* deferred) {
  const char* close_text = is_punct(toks[open], "{") ? "}" : ")";
  int depth = 0;
  std::string last_ident;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
      --depth;
      if (depth == 0 && t.text == std::string(close_text)) {
        if (!last_ident.empty()) mutexes->push_back(last_ident);
        return;
      }
    }
    if (depth == 1 && is_punct(t, ",")) {
      if (!last_ident.empty()) mutexes->push_back(last_ident);
      last_ident.clear();
      continue;
    }
    if (is_ident(t)) {
      if (is_lock_tag(t.text)) {
        if (t.text == "defer_lock") *deferred = true;
        last_ident.clear();
      } else if (t.text != "std") {
        last_ident = t.text;
      }
    }
  }
}

bool GuardWalker::step(std::size_t* index) {
  const std::size_t i = *index;
  const Token& tok = toks_[i];
  if (is_punct(tok, "{")) {
    ++depth_;
    return true;
  }
  if (is_punct(tok, "}")) {
    --depth_;
    for (Guard& g : guards_) {
      if (g.depth > depth_) g.active = false;
    }
    return true;
  }
  if (!is_ident(tok)) return false;

  // Guard declaration: [std ::] lock_guard|unique_lock|scoped_lock
  // [<...>] name ( args ) ;
  if (tok.text == "lock_guard" || tok.text == "unique_lock" ||
      tok.text == "scoped_lock") {
    std::size_t j = skip_angles(toks_, i + 1);
    if (j < toks_.size() && is_ident(toks_[j])) {
      const std::string guard_name = toks_[j].text;
      if (j + 1 < toks_.size() &&
          (is_punct(toks_[j + 1], "(") || is_punct(toks_[j + 1], "{"))) {
        Guard guard;
        guard.name = guard_name;
        guard.depth = depth_;
        bool deferred = false;
        parse_guard_args(toks_, j + 1, &guard.mutexes, &deferred);
        guard.active = !deferred;
        if (guard.active && !guard.mutexes.empty() && on_acquire) {
          on_acquire(guard, tok.line);
        }
        guards_.push_back(std::move(guard));
        *index = j + 1;  // caller continues; its ++i lands on the first arg
        return true;
      }
    }
  }

  // guard.unlock() / guard.lock() toggles.
  if ((tok.text == "unlock" || tok.text == "lock") && i >= 2 &&
      is_punct(toks_[i - 1], ".") && is_ident(toks_[i - 2]) &&
      i + 1 < toks_.size() && is_punct(toks_[i + 1], "(")) {
    for (Guard& g : guards_) {
      if (g.name != toks_[i - 2].text) continue;
      const bool activate = tok.text == "lock";
      if (activate && !g.active && !g.mutexes.empty() && on_acquire) {
        on_acquire(g, tok.line);
      }
      g.active = activate;
    }
    return true;
  }
  return false;
}

bool GuardWalker::any_active() const {
  for (const Guard& g : guards_) {
    if (g.active) return true;
  }
  return false;
}

std::string GuardWalker::held_list() const {
  std::string out;
  for (const Guard& g : guards_) {
    if (!g.active) continue;
    for (const std::string& m : g.mutexes) {
      if (!out.empty()) out += ", ";
      out += "'" + m + "'";
    }
  }
  return out;
}

std::vector<std::string> GuardWalker::active_mutexes() const {
  std::vector<std::string> out;
  for (const Guard& g : guards_) {
    if (!g.active) continue;
    for (const std::string& m : g.mutexes) out.push_back(m);
  }
  return out;
}

}  // namespace flotilla::analyze
