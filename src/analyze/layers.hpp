// Architecture conformance: declared layer DAG + include-graph checks.
//
// analyze/layers.conf declares the repo's layering as data:
//
//   # comment
//   layer <name> <path-prefix> [<path-prefix>...]
//   allow <name> <dep-layer> [<dep-layer>...]
//
// A file belongs to the layer whose prefix matches it longest (so
// `src/analytics/session_report` can sit in a different layer than the
// rest of `src/analytics/`, mirroring the flotilla_analytics /
// flotilla_report CMake split). `allow` edges are transitive: a layer may
// include anything reachable through the DAG, plus itself. The pass
// reports:
//
//   arch-layering   an #include crossing the DAG against the grain
//   arch-cycle      any include cycle among repo files (layer-independent)
//   arch-unmapped   an analyzed file no declared prefix covers
//   arch-config     a malformed or cyclic layers.conf
//
// DESIGN.md links layers.conf as the authoritative architecture statement.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/pass.hpp"

namespace flotilla::analyze {

struct LayersConfig {
  struct Layer {
    std::string name;
    std::vector<std::string> prefixes;
  };
  std::string path;  // for diagnostics
  std::vector<Layer> layers;
  std::map<std::string, std::set<std::string>> allow;  // direct edges

  // Layer of a repo-relative path, or "" when unmapped.
  std::string layer_of(const std::string& file) const;
  // True when `from` may depend on `to` (reflexive-transitive closure).
  bool allowed(const std::string& from, const std::string& to) const;
  // "" when the declared DAG is acyclic, else one cycle rendered
  // "a -> b -> a".
  std::string dag_cycle() const;
};

// Parses layers.conf text. Returns false and sets *error on malformed
// input (unknown directive, allow for undeclared layer, ...).
bool parse_layers(const std::string& path, const std::string& text,
                  LayersConfig* out, std::string* error);
bool load_layers(const std::string& path, LayersConfig* out,
                 std::string* error);

class ArchitecturePass : public Pass {
 public:
  // `config_error` non-empty turns every run into a single arch-config
  // finding (the tool still runs the other passes).
  ArchitecturePass(LayersConfig config, std::string config_error)
      : config_(std::move(config)), config_error_(std::move(config_error)) {}

  std::string_view name() const override { return "architecture"; }
  std::vector<std::string> rules() const override {
    return {"arch-config", "arch-cycle", "arch-layering", "arch-unmapped"};
  }
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;

 private:
  LayersConfig config_;
  std::string config_error_;
};

}  // namespace flotilla::analyze
