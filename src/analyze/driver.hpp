// Shared driver for the analysis tools.
//
// Both tools/flotilla_analyze.cpp and the flotilla-lint compatibility
// front-end are thin argument parsers over this: file collection, lexing,
// body indexing, waiver filtering, baseline suppression, and output
// formatting all live here so the two binaries cannot drift.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/pass.hpp"

namespace flotilla::analyze {

// Collects analyzable sources (.cpp .cc .cxx .hpp .h .hh .ipp) under each
// root (file roots are taken verbatim, directory roots are walked
// recursively). Results are '/'-normalized, sorted, deduped. False (with
// *error) when a root does not exist.
bool collect_sources(const std::vector<std::string>& roots,
                     std::vector<std::string>* paths, std::string* error);

// Loads one file: lex, body index, determinism scope, paired header (for
// x.cpp, a sibling x.hpp or x.h). `display` is the path used in
// diagnostics. False (with *error) when the file cannot be read.
bool load_source(const std::string& path, const std::string& display,
                 SourceFile* out, std::string* error);

// Drops findings whose line (or the line above) carries a well-formed
// FLOTILLA_LINT_ALLOW waiver for the rule. `input` must contain the files
// the findings refer to (matched by display path).
void filter_waived(const AnalysisInput& input, std::vector<Finding>* findings);

struct DriverOptions {
  std::vector<std::string> roots;  // files or directories to scan
  // Prefix stripped from collected paths to form display paths (""
  // leaves paths as collected). Display paths are what the baseline and
  // SARIF record, so scans from the repo root are machine-independent.
  std::string strip_prefix;
  std::string baseline_path;    // "" = no baseline
  bool write_baseline = false;  // regenerate baseline_path and exit 0
  bool sarif = false;           // SARIF 2.1.0 instead of text findings
  std::string output_path;      // "" = stdout
  // File-loading worker threads; 0 = one per hardware thread. Output is
  // byte-identical for every value: loads land in per-path slots and all
  // analysis runs after the pool joins.
  unsigned jobs = 0;
  // When set, the shared-state inventory (analyze/ipc.hpp) is written
  // here in addition to the normal report.
  std::string shared_state_report_path;
  // Confined-annotation file (analyze/confined.txt); "" = no
  // annotations. When set, the annotations mark shared-state report
  // entries AND arm the confinement pass: claims with status "verified"
  // become proof obligations, and stale claims are hard errors.
  std::string confined_path;
  // When set, the per-claim confinement-proof report (analyze/confine.hpp)
  // is written here.
  std::string confinement_report_path;
};

// Runs every registered pass and reports. Returns the process exit code:
// 0 clean (all findings baselined), 1 fresh findings, 2 usage/IO error.
// Text findings / SARIF go to `out` (or options.output_path); the
// one-line summary and errors go to `err`.
int run_driver(const DriverOptions& options, const PassRegistry& registry,
               std::ostream& out, std::ostream& err);

}  // namespace flotilla::analyze
