#include "analyze/driver.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <thread>

#include "analyze/baseline.hpp"
#include "analyze/callgraph.hpp"
#include "analyze/confine.hpp"
#include "analyze/determinism.hpp"
#include "analyze/ipc.hpp"
#include "analyze/rules.hpp"
#include "analyze/sarif.hpp"

namespace fs = std::filesystem;

namespace flotilla::analyze {

namespace {

bool analyzable_extension(const std::string& path) {
  static const char* const kExts[] = {".cpp", ".cc", ".cxx", ".hpp",
                                      ".h",   ".hh", ".ipp"};
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  for (const char* e : kExts) {
    if (ext == e) return true;
  }
  return false;
}

std::string normalize(const std::string& path) {
  std::string out = fs::path(path).lexically_normal().generic_string();
  if (out.size() > 2 && out.compare(0, 2, "./") == 0) out = out.substr(2);
  return out;
}

}  // namespace

bool collect_sources(const std::vector<std::string>& roots,
                     std::vector<std::string>* paths, std::string* error) {
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::file_status st = fs::status(root, ec);
    if (ec || st.type() == fs::file_type::not_found) {
      *error = root + ": no such file or directory";
      return false;
    }
    if (fs::is_directory(st)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const std::string p = it->path().generic_string();
        if (analyzable_extension(p)) paths->push_back(normalize(p));
      }
      if (ec) {
        *error = root + ": " + ec.message();
        return false;
      }
    } else {
      // Explicit files are taken verbatim, extension or not: naming a
      // file is an instruction to check it.
      paths->push_back(normalize(root));
    }
  }
  std::sort(paths->begin(), paths->end());
  paths->erase(std::unique(paths->begin(), paths->end()), paths->end());
  return true;
}

bool load_source(const std::string& path, const std::string& display,
                 SourceFile* out, std::string* error) {
  out->display = display;
  if (!lex_file(path, &out->lex)) {
    *error = path + ": cannot read file";
    return false;
  }
  out->bodies = build_bodies(out->lex);
  out->determinism_scope =
      determinism_in_scope(display) && !determinism_allowlisted(display);
  const std::size_t dot = path.rfind('.');
  if (dot != std::string::npos) {
    const std::string ext = path.substr(dot);
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
      for (const char* hdr : {".hpp", ".h", ".hh"}) {
        const std::string header = path.substr(0, dot) + hdr;
        auto lexed = std::make_shared<LexedFile>();
        if (lex_file(header, lexed.get())) {
          out->paired_header = std::move(lexed);
          break;
        }
      }
    }
  }
  out->facts = collect_facts(out->lex, out->bodies, out->paired_header.get());
  return true;
}

void filter_waived(const AnalysisInput& input,
                   std::vector<Finding>* findings) {
  std::map<std::string, const LexedFile*> by_display;
  for (const SourceFile& file : input.files) {
    by_display[file.display] = &file.lex;
  }
  findings->erase(
      std::remove_if(findings->begin(), findings->end(),
                     [&](const Finding& f) {
                       const auto it = by_display.find(f.file);
                       return it != by_display.end() &&
                              waived(*it->second, f.line, f.rule);
                     }),
      findings->end());
}

int run_driver(const DriverOptions& options, const PassRegistry& registry,
               std::ostream& out, std::ostream& err) {
  std::string error;
  std::vector<std::string> paths;
  if (!collect_sources(options.roots, &paths, &error)) {
    err << "flotilla-analyze: error: " << error << "\n";
    return 2;
  }

  // Phase one: load every file (lex + bodies + facts). Each load is
  // independent, so a --jobs pool splits the list; results land in
  // pre-sized slots by index, making the output identical for any job
  // count.
  unsigned jobs = options.jobs;
  if (jobs == 0) {
    // Host tooling, not simulation code: the job count cannot affect output.
    jobs = std::thread::
        hardware_concurrency();  // FLOTILLA_LINT_ALLOW(hardware-concurrency): host tooling, output is jobs-invariant
  }
  if (jobs == 0) jobs = 1;
  if (paths.size() < jobs) jobs = paths.empty() ? 1 : paths.size();

  std::vector<SourceFile> files(paths.size());
  std::vector<std::string> errors(paths.size());
  std::atomic<std::size_t> next{0};
  auto load_worker = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < paths.size();) {
      std::string display = paths[i];
      if (!options.strip_prefix.empty() &&
          display.compare(0, options.strip_prefix.size(),
                          options.strip_prefix) == 0) {
        display = display.substr(options.strip_prefix.size());
      }
      load_source(paths[i], display, &files[i], &errors[i]);
    }
  };
  if (jobs <= 1) {
    load_worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(load_worker);
    for (std::thread& t : pool) t.join();
  }
  for (const std::string& load_error : errors) {
    if (!load_error.empty()) {
      err << "flotilla-analyze: error: " << load_error << "\n";
      return 2;
    }
  }

  AnalysisInput input;
  input.files = std::move(files);
  std::sort(input.files.begin(), input.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.display < b.display;
            });

  // Phase two: link the per-file facts into the whole-program model the
  // interprocedural passes consume.
  input.program = std::make_shared<const ProgramModel>(build_program(input));

  // Confined annotations load before the passes run: the confinement
  // pass consumes them, and a malformed claims file is a usage error no
  // matter which reports were requested.
  std::vector<ConfinedAnnotation> confined;
  if (!options.confined_path.empty()) {
    if (!load_confined_annotations(options.confined_path, &confined,
                                   &error)) {
      err << "flotilla-analyze: error: " << error << "\n";
      return 2;
    }
    input.confined = &confined;
    input.confined_path = options.confined_path;
  }

  std::vector<Finding> all;
  for (const auto& pass : registry.passes()) {
    pass->run(input, &all);
  }
  filter_waived(input, &all);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  // Severity split: kError findings gate the run and live in the
  // baseline; kNote findings (the shared-state inventory) only appear in
  // SARIF and reports.
  std::vector<Finding> findings;
  std::size_t notes = 0;
  for (const Finding& f : all) {
    if (rule_severity(f.rule) == Severity::kError) {
      findings.push_back(f);
    } else {
      ++notes;
    }
  }

  if (!options.shared_state_report_path.empty()) {
    std::ofstream report(options.shared_state_report_path,
                         std::ios::binary | std::ios::trunc);
    if (!report) {
      err << "flotilla-analyze: error: "
          << options.shared_state_report_path
          << ": cannot open for writing\n";
      return 2;
    }
    write_shared_state_report(
        collect_shared_state(input,
                             confined.empty() ? nullptr : &confined),
        report);
    if (!report.flush()) {
      err << "flotilla-analyze: error: "
          << options.shared_state_report_path << ": write failed\n";
      return 2;
    }
  }

  if (!options.confinement_report_path.empty()) {
    std::ofstream report(options.confinement_report_path,
                         std::ios::binary | std::ios::trunc);
    if (!report) {
      err << "flotilla-analyze: error: "
          << options.confinement_report_path
          << ": cannot open for writing\n";
      return 2;
    }
    write_confinement_report(analyze_confinement(input).claims, report);
    if (!report.flush()) {
      err << "flotilla-analyze: error: "
          << options.confinement_report_path << ": write failed\n";
      return 2;
    }
  }

  if (options.write_baseline) {
    if (options.baseline_path.empty()) {
      err << "flotilla-analyze: error: --write-baseline requires "
             "--baseline <path>\n";
      return 2;
    }
    if (!save_baseline(options.baseline_path, findings, &error)) {
      err << "flotilla-analyze: error: " << error << "\n";
      return 2;
    }
    err << "flotilla-analyze: wrote " << findings.size()
        << " finding(s) to " << options.baseline_path << "\n";
    return 0;
  }

  std::set<Finding> baseline;
  if (!options.baseline_path.empty() &&
      !load_baseline(options.baseline_path, &baseline, &error)) {
    err << "flotilla-analyze: error: " << error << "\n";
    return 2;
  }

  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    if (baseline.count(f) == 0) fresh.push_back(f);
  }

  std::ofstream file_out;
  std::ostream* sink = &out;
  if (!options.output_path.empty()) {
    file_out.open(options.output_path, std::ios::binary | std::ios::trunc);
    if (!file_out) {
      err << "flotilla-analyze: error: " << options.output_path
          << ": cannot open for writing\n";
      return 2;
    }
    sink = &file_out;
  }

  if (options.sarif) {
    std::vector<std::string> rule_ids;
    for (const auto& pass : registry.passes()) {
      for (std::string& rule : pass->rules()) {
        rule_ids.push_back(std::move(rule));
      }
    }
    std::sort(rule_ids.begin(), rule_ids.end());
    rule_ids.erase(std::unique(rule_ids.begin(), rule_ids.end()),
                   rule_ids.end());
    // SARIF carries every finding, notes included; only kError results
    // can be baseline-suppressed (notes never enter the baseline).
    std::vector<SarifResult> results;
    results.reserve(all.size());
    for (const Finding& f : all) {
      results.push_back({f, baseline.count(f) > 0});
    }
    write_sarif(*sink, "flotilla-analyze", rule_ids, results);
  } else {
    write_text(*sink, fresh);
  }
  if (sink == &file_out) {
    file_out.flush();
    if (!file_out) {
      err << "flotilla-analyze: error: " << options.output_path
          << ": write failed\n";
      return 2;
    }
  }

  err << "flotilla-analyze: " << input.files.size() << " file(s) checked, "
      << fresh.size() << " finding(s)";
  if (!baseline.empty()) {
    err << " (" << findings.size() - fresh.size() << " baselined)";
  }
  if (notes > 0) {
    err << ", " << notes << " note(s)";
  }
  err << "\n";
  return fresh.empty() ? 0 : 1;
}

}  // namespace flotilla::analyze
