// Token model for the static-analysis framework (docs/correctness.md,
// "Static analysis").
//
// The lexer (analyze/lexer.hpp) turns a C++ translation unit into a flat
// token stream with comments and string/char literal *contents* removed
// but their positions preserved: every token knows its line, so passes
// report real source locations without re-reading the file. Preprocessor
// directives are not part of the stream — they are surfaced separately as
// structured IncludeDirective / ConditionalDirective records, which is
// what the architecture pass consumes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace flotilla::analyze {

enum class TokenKind : unsigned char {
  kIdentifier,  // identifiers and keywords (passes match on text)
  kNumber,      // numeric literal (digit separators folded in)
  kString,      // a string literal (text is "", contents stripped)
  kChar,        // a char literal (text is '', contents stripped)
  kPunct,       // operator / punctuation; "::" and "->" are single tokens
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based source line
};

// #include "..." or #include <...>.
struct IncludeDirective {
  std::string path;      // include path as written
  std::size_t line = 0;
  bool system = false;   // <...> form
};

// #if / #ifdef / #ifndef / #elif / #else / #endif, surfaced so passes can
// tell when a region is conditionally compiled.
struct ConditionalDirective {
  std::string kind;       // "if", "ifdef", "ifndef", "elif", "else", "endif"
  std::string condition;  // the raw condition text ("" for else/endif)
  std::size_t line = 0;
};

// True for identifier characters ([A-Za-z0-9_]).
bool is_ident_char(char c);

}  // namespace flotilla::analyze
