// Determinism rules, ported from the original line/regex flotilla-lint
// onto the token stream (docs/correctness.md).
//
// Rules (unchanged ids and messages, so existing waivers keep working):
//   wall-clock            host clocks in simulation code
//   unseeded-random       rand()/random_device/drand48()/...
//   hardware-concurrency  std::thread::hardware_concurrency()
//   real-sleep            sleep_for/usleep/nanosleep/...
//   unordered-iteration   range-for over a hash container declared in the
//                         file or its paired header
//
// Token-stream matching removes the residual false-positive classes of the
// regex scanner: identifiers are matched whole (never inside a longer
// name), and the call-form rules look at real neighbor tokens instead of
// guessing at whitespace.
#pragma once

#include <string>

#include "analyze/pass.hpp"

namespace flotilla::analyze {

// Simulation-code scope: which files the determinism rules apply to when
// scanning a tree. src/{sim,core,slurm,flux,prrte,platform,workloads,
// sched,check,obs,analyze}/ plus the simulated dragon backend files.
// Paths are matched '/'-normalized.
bool determinism_in_scope(const std::string& path);

// Real-threaded execution layer, exempt even when named explicitly.
bool determinism_allowlisted(const std::string& path);

// Classifies toks[i] as an interprocedural taint source: returns
// "wall-clock" or "unseeded-random" when the token (with the same
// call-form requirements the rules above apply) reads host time or
// unseeded entropy, nullptr otherwise. Used by the facts collector
// (analyze/facts.hpp) so ipc-determinism shares one source table with
// this pass.
const char* nondet_source_rule(const std::vector<Token>& toks,
                               std::size_t i);

class DeterminismPass : public Pass {
 public:
  std::string_view name() const override { return "determinism"; }
  std::vector<std::string> rules() const override;
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;

  // Checks one file (used by the flotilla-lint compatibility driver,
  // which does its own scope filtering).
  static void check_file(const SourceFile& file,
                         std::vector<Finding>* findings);
};

}  // namespace flotilla::analyze
