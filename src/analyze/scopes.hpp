// Function/lambda body extraction over the token stream.
//
// Passes that reason about control flow (lock discipline, span balance)
// need to know which tokens belong to which callable body — and, crucially,
// that a lambda nested inside a function is a *different* body: code in a
// deferred callback does not execute under the locks (or spans) lexically
// surrounding its definition. This module classifies every brace pair as
// function body, lambda body, type/namespace scope, control-flow block, or
// braced initializer, and assigns each token to its innermost enclosing
// callable body.
//
// Heuristic (token-level, no semantic analysis), tuned for this codebase's
// style; the known blind spots are documented in docs/correctness.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace flotilla::analyze {

struct Body {
  int id = -1;
  int parent = -1;          // enclosing body id, -1 for top-level functions
  bool lambda = false;
  std::string name;         // best-effort function name; "<lambda>" for lambdas
  std::size_t line = 0;     // line of the opening brace
  std::size_t open = 0;     // token index of '{'
  std::size_t close = 0;    // token index of matching '}'
};

struct BodyIndex {
  std::vector<Body> bodies;
  // body_of[i] = id of the innermost callable body owning token i, or -1
  // when token i is outside any function (namespace scope, class member
  // declarations, ...).
  std::vector<int> body_of;
};

BodyIndex build_bodies(const LexedFile& file);

// Token index of the brace matching tokens[open] (an '{' or '(' or '[');
// returns tokens.size() when unbalanced.
std::size_t matching_close(const std::vector<Token>& tokens, std::size_t open);

// Index of the '(' matching a ')' at `close`, scanning backwards; returns
// npos when unbalanced.
std::size_t matching_open(const std::vector<Token>& tokens, std::size_t close);

}  // namespace flotilla::analyze
