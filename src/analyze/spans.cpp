#include "analyze/spans.hpp"

#include <vector>

namespace flotilla::analyze {

namespace {

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

struct Event {
  enum class Kind { kBegin, kEnd, kReturn } kind;
  std::string type;  // SpanType constant name (empty for returns)
  std::size_t line = 0;
  bool consumed = false;  // an end already matched to an earlier begin
};

// Parses `begin`/`end` `(` [obs ::] SpanType :: kX at token i (i is the
// begin/end identifier). Returns the constant name or "".
std::string span_type_at(const std::vector<Token>& toks, std::size_t i) {
  std::size_t j = i + 1;
  if (j >= toks.size() || !is_punct(toks[j], "(")) return "";
  ++j;
  if (j + 1 < toks.size() && is_ident(toks[j]) && toks[j].text == "obs" &&
      is_punct(toks[j + 1], "::")) {
    j += 2;
  }
  if (j + 2 < toks.size() && is_ident(toks[j]) &&
      toks[j].text == "SpanType" && is_punct(toks[j + 1], "::") &&
      is_ident(toks[j + 2])) {
    return toks[j + 2].text;
  }
  return "";
}

void analyze_body(const SourceFile& file, const Body& body,
                  std::vector<Finding>* findings) {
  const auto& toks = file.lex.tokens;
  std::vector<Event> events;
  for (std::size_t i = body.open; i <= body.close && i < toks.size(); ++i) {
    if (file.bodies.body_of[i] != body.id) continue;
    const Token& tok = toks[i];
    if (!is_ident(tok)) continue;
    if (tok.text == "return" || tok.text == "co_return") {
      events.push_back({Event::Kind::kReturn, "", tok.line, false});
      continue;
    }
    if (tok.text != "begin" && tok.text != "end") continue;
    const std::string type = span_type_at(toks, i);
    if (type.empty()) continue;
    events.push_back({tok.text == "begin" ? Event::Kind::kBegin
                                          : Event::Kind::kEnd,
                      type, tok.line, false});
  }

  // Greedy pairing per span type; report returns inside a matched pair.
  for (std::size_t b = 0; b < events.size(); ++b) {
    if (events[b].kind != Event::Kind::kBegin) continue;
    // Find the first unconsumed end of the same type after this begin.
    std::size_t match = events.size();
    for (std::size_t e = b + 1; e < events.size(); ++e) {
      if (events[e].kind == Event::Kind::kEnd && !events[e].consumed &&
          events[e].type == events[b].type) {
        match = e;
        break;
      }
      // An intervening begin of the same type claims the next end.
      if (events[e].kind == Event::Kind::kBegin &&
          events[e].type == events[b].type) {
        break;
      }
    }
    if (match == events.size()) continue;  // event-driven span: no lexical end
    events[match].consumed = true;
    const std::size_t end_line = events[match].line;
    for (std::size_t r = b + 1; r < match; ++r) {
      if (events[r].kind != Event::Kind::kReturn) continue;
      findings->push_back(
          {file.display, events[r].line, "span-balance",
           "early return leaks span '" + events[b].type + "' begun at line " +
               std::to_string(events[b].line) + " in '" + body.name +
               "' (closed at line " + std::to_string(end_line) +
               "); close the span before returning"});
    }
  }
}

}  // namespace

void SpanBalancePass::run(const AnalysisInput& input,
                          std::vector<Finding>* findings) const {
  for (const SourceFile& file : input.files) {
    for (const Body& body : file.bodies.bodies) {
      analyze_body(file, body, findings);
    }
  }
}

}  // namespace flotilla::analyze
