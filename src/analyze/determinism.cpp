#include "analyze/determinism.hpp"

#include <algorithm>
#include <set>
#include <string_view>

namespace flotilla::analyze {

namespace {

struct TokenRule {
  const char* rule;
  const char* token;
  bool call_only;  // require '(' after, and reject member calls
  const char* message;
};

constexpr const char* kWallClockMsg =
    "wall-clock time in simulation code breaks determinism; use "
    "sim::Engine::now()";
constexpr const char* kRandomMsg =
    "nondeterministic randomness in simulation code; draw from a seeded "
    "sim::RngStream";
constexpr const char* kSleepMsg =
    "real sleeping in simulation code; model delays as simulated events";

const TokenRule kTokenRules[] = {
    {"wall-clock", "system_clock", false, kWallClockMsg},
    {"wall-clock", "steady_clock", false, kWallClockMsg},
    {"wall-clock", "high_resolution_clock", false, kWallClockMsg},
    {"wall-clock", "gettimeofday", true, kWallClockMsg},
    {"wall-clock", "clock_gettime", true, kWallClockMsg},
    {"wall-clock", "timespec_get", true, kWallClockMsg},
    {"wall-clock", "time", true, kWallClockMsg},
    {"wall-clock", "localtime", true, kWallClockMsg},
    {"wall-clock", "gmtime", true, kWallClockMsg},
    {"unseeded-random", "random_device", false, kRandomMsg},
    {"unseeded-random", "rand", true, kRandomMsg},
    {"unseeded-random", "srand", true, kRandomMsg},
    {"unseeded-random", "drand48", true, kRandomMsg},
    {"unseeded-random", "lrand48", true, kRandomMsg},
    {"unseeded-random", "srandom", true, kRandomMsg},
    {"hardware-concurrency", "hardware_concurrency", false,
     "host-dependent concurrency breaks reproducibility; take worker "
     "counts from configuration"},
    {"real-sleep", "sleep_for", true, kSleepMsg},
    {"real-sleep", "sleep_until", true, kSleepMsg},
    {"real-sleep", "usleep", true, kSleepMsg},
    {"real-sleep", "nanosleep", true, kSleepMsg},
};

const char* const kScopedDirs[] = {
    "src/sim/",    "src/core/",      "src/slurm/", "src/flux/",
    "src/prrte/",  "src/platform/",  "src/workloads/", "src/sched/",
    "src/check/",  "src/obs/",       "src/analyze/",   "src/journal/",
};

const char* const kAllowlist[] = {
    "dragon/function_executor",
    "local/process_pool",
    "util/logging",
};

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

// Token-level reimplementation of the legacy call-form check: reject
// member calls (x.time(), x->time()), require a following '('.
bool call_form_ok(const std::vector<Token>& toks, std::size_t i) {
  if (i > 0 && toks[i - 1].kind == TokenKind::kPunct &&
      (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
    return false;
  }
  return i + 1 < toks.size() && toks[i + 1].kind == TokenKind::kPunct &&
         toks[i + 1].text == "(";
}

void run_token_rules(const SourceFile& file, std::vector<Finding>* out) {
  const auto& toks = file.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    for (const TokenRule& rule : kTokenRules) {
      if (toks[i].text != rule.token) continue;
      if (rule.call_only && !call_form_ok(toks, i)) continue;
      out->push_back(
          {file.display, toks[i].line, rule.rule, rule.message});
    }
  }
}

// Collects names declared with std::unordered_{map,set,multimap,multiset}
// from a token stream (file body or paired header).
void collect_unordered_decls(const std::vector<Token>& toks,
                             std::set<std::string>* names) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set" &&
        t != "unordered_multimap" && t != "unordered_multiset") {
      continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].text != "<") continue;
    // Balance the template argument list.
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != TokenKind::kPunct) continue;
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">" && --depth == 0) break;
    }
    if (j >= toks.size()) continue;
    ++j;  // past '>'
    if (j < toks.size() && toks[j].text == "::") continue;  // ::iterator etc.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j >= toks.size() || !is_ident(toks[j])) continue;
    const std::string name = toks[j].text;
    ++j;
    // Declarator endings: member/local (;, =, {), parameter (,, )).
    if (j < toks.size() && toks[j].kind == TokenKind::kPunct &&
        (toks[j].text == ";" || toks[j].text == "=" ||
         toks[j].text == "{" || toks[j].text == "," ||
         toks[j].text == ")")) {
      names->insert(name);
    }
  }
}

void check_unordered_iteration(const SourceFile& file,
                               const std::set<std::string>& unordered_names,
                               std::vector<Finding>* out) {
  const auto& toks = file.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || toks[i].text != "for") continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Find the matching ')' and the depth-1 ':' (range-for separator);
    // a depth-1 ';' means a classic for.
    int depth = 0;
    std::size_t colon = 0, close = 0;
    bool classic_for = false, found = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokenKind::kPunct) continue;
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") {
        if (--depth == 0) {
          close = j;
          found = true;
          break;
        }
      }
      if (depth == 1 && colon == 0) {
        if (t == ";") {
          classic_for = true;
          break;
        }
        if (t == ":") colon = j;  // "::" is a single distinct token
      }
    }
    if (classic_for || !found || colon == 0) continue;
    // Range expression tokens: (colon, close).
    std::string victim;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (is_ident(toks[j]) &&
          toks[j].text.find("unordered_") != std::string::npos) {
        victim = "<unordered container expression>";
        break;
      }
    }
    if (victim.empty() && close > colon + 1 && is_ident(toks[close - 1]) &&
        unordered_names.count(toks[close - 1].text) > 0) {
      victim = toks[close - 1].text;
    }
    if (!victim.empty()) {
      out->push_back(
          {file.display, toks[i].line, "unordered-iteration",
           "iteration over unordered container '" + victim +
               "' can feed event ordering; iterate util::sorted_keys() or "
               "use an ordered container"});
    }
  }
}

}  // namespace

const char* nondet_source_rule(const std::vector<Token>& toks,
                               std::size_t i) {
  if (!is_ident(toks[i])) return nullptr;
  for (const TokenRule& rule : kTokenRules) {
    if (toks[i].text != rule.token) continue;
    const bool wall = std::string_view(rule.rule) == "wall-clock";
    const bool random = std::string_view(rule.rule) == "unseeded-random";
    if (!wall && !random) continue;
    if (rule.call_only && !call_form_ok(toks, i)) continue;
    return rule.rule;
  }
  return nullptr;
}

bool determinism_in_scope(const std::string& path) {
  for (const char* dir : kScopedDirs) {
    if (path.find(dir) != std::string::npos) return true;
  }
  // Dragon is split: the simulated backend is scoped, the threaded
  // executor/queue/channel layer is not.
  if (path.find("src/dragon/") != std::string::npos) {
    const auto slash = path.rfind('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return base.find("_backend.") != std::string::npos;
  }
  return false;
}

bool determinism_allowlisted(const std::string& path) {
  for (const char* entry : kAllowlist) {
    if (path.find(entry) != std::string::npos) return true;
  }
  return false;
}

std::vector<std::string> DeterminismPass::rules() const {
  return {"hardware-concurrency", "real-sleep", "unordered-iteration",
          "unseeded-random", "wall-clock"};
}

void DeterminismPass::check_file(const SourceFile& file,
                                 std::vector<Finding>* findings) {
  run_token_rules(file, findings);
  std::set<std::string> unordered_names;
  collect_unordered_decls(file.lex.tokens, &unordered_names);
  if (file.paired_header) {
    collect_unordered_decls(file.paired_header->tokens, &unordered_names);
  }
  check_unordered_iteration(file, unordered_names, findings);
}

void DeterminismPass::run(const AnalysisInput& input,
                          std::vector<Finding>* findings) const {
  for (const SourceFile& file : input.files) {
    if (!file.determinism_scope) continue;
    check_file(file, findings);
  }
}

}  // namespace flotilla::analyze
