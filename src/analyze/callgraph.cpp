#include "analyze/callgraph.hpp"

#include <algorithm>
#include <set>

namespace flotilla::analyze {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// True when `qualified` ends with the explicit A::B::name written at a
// call site — matched component-wise ("B::f" matches "ns::B::f" but not
// "ClubB::f").
bool qualifier_matches(const std::string& qualified,
                       const std::vector<std::string>& qualifier,
                       const std::string& name) {
  std::string suffix;
  for (const std::string& part : qualifier) suffix += part + "::";
  suffix += name;
  if (!ends_with(qualified, suffix)) return false;
  const std::size_t at = qualified.size() - suffix.size();
  if (at == 0) return true;
  return at >= 2 && qualified.compare(at - 2, 2, "::") == 0;
}

void merge_entry(std::map<std::string, Origin>* into, const std::string& key,
                 const Origin& origin, bool* changed) {
  if (into->emplace(key, origin).second) *changed = true;
}

// Member calls with these names are near-always STL container /
// smart-pointer / sync-primitive operations (`items_.size()`,
// `lines_.clear()`, `pending_.pop_front()`); resolving them to
// same-named repo methods manufactures edges into unrelated classes —
// the dominant false-positive source in early runs. A genuine same-class
// re-entry through one of these names is invisible to the analysis;
// docs/correctness.md lists this blind spot.
bool stl_member_name(const std::string& name) {
  static const char* const kNames[] = {
      "append",    "assign",   "at",          "back",     "begin",
      "c_str",     "clear",    "contains",    "count",    "data",
      "detach",    "emplace",  "emplace_back", "emplace_front", "empty",
      "end",       "erase",    "exchange",    "find",     "front",
      "get",       "has_value", "insert",     "join",     "joinable",
      "length",    "load",     "lock",        "notify_all", "notify_one",
      "pop",       "pop_back", "pop_front",   "push",     "push_back",
      "push_front", "rbegin",  "release",     "rend",     "reserve",
      "reset",     "resize",   "size",        "store",    "str",
      "substr",    "swap",     "top",         "try_lock", "unlock",
      "value",     "value_or", "wait",        "wait_for", "wait_until",
  };
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

}  // namespace

std::string qualify_mutex(const std::string& raw,
                          const std::string& class_ctx) {
  if (!class_ctx.empty() && !raw.empty() && raw.back() == '_') {
    return class_ctx + "::" + raw;
  }
  return raw;
}

const std::vector<int>* ProgramModel::by_name(const std::string& name) const {
  const auto it = name_index.find(name);
  return it == name_index.end() ? nullptr : &it->second;
}

std::string ProgramModel::trail(
    int fn, std::map<std::string, Origin> FunctionSummary::*pick,
    const std::string& key) const {
  std::string out;
  int cur = fn;
  for (int depth = 0; depth < 16; ++depth) {
    const auto& map = summaries[cur].*pick;
    const auto it = map.find(key);
    if (it == map.end() || it->second.via < 0) break;
    cur = it->second.via;
    out += out.empty() ? " (via '" : "' -> '";
    out += functions[cur].def.name;
  }
  if (!out.empty()) out += "')";
  return out;
}

ProgramModel build_program(const AnalysisInput& input) {
  ProgramModel model;

  // Nodes, name index, merged declaration harvest, callback targets.
  std::set<std::string> address_taken;
  for (std::size_t fi = 0; fi < input.files.size(); ++fi) {
    const SourceFile& file = input.files[fi];
    const DeclHarvest& d = file.facts.decls;
    model.merged.callback_types.insert(d.callback_types.begin(),
                                       d.callback_types.end());
    model.merged.callback_vars.insert(d.callback_vars.begin(),
                                      d.callback_vars.end());
    model.merged.virtual_methods.insert(d.virtual_methods.begin(),
                                        d.virtual_methods.end());
    address_taken.insert(file.facts.address_taken.begin(),
                         file.facts.address_taken.end());
    for (const FunctionDef& def : file.facts.functions) {
      FunctionNode node;
      node.id = static_cast<int>(model.functions.size());
      node.file_index = static_cast<int>(fi);
      node.def = def;
      node.display_file = file.display;
      model.name_index[def.name].push_back(node.id);
      model.functions.push_back(std::move(node));
    }
  }
  model.summaries.resize(model.functions.size());
  model.callees.resize(model.functions.size());
  for (const FunctionNode& node : model.functions) {
    if (node.def.lambda || address_taken.count(node.def.name) > 0) {
      model.callback_targets.push_back(node.id);
    }
  }

  // Per-file body-id -> function-id maps, then direct summary entries.
  std::vector<std::map<int, int>> fn_of_body(input.files.size());
  for (const FunctionNode& node : model.functions) {
    fn_of_body[node.file_index][node.def.body_id] = node.id;
  }
  auto function_at = [&](int file_index, int body_id) {
    const auto& map = fn_of_body[file_index];
    const auto it = map.find(body_id);
    return it == map.end() ? -1 : it->second;
  };

  for (std::size_t fi = 0; fi < input.files.size(); ++fi) {
    const FileFacts& facts = input.files[fi].facts;
    const int file_index = static_cast<int>(fi);
    for (const AcquireFact& a : facts.acquires) {
      const int fn = function_at(file_index, a.body_id);
      if (fn < 0) continue;
      const std::string key =
          qualify_mutex(a.mutex, model.functions[fn].def.class_ctx);
      model.summaries[fn].mutexes.emplace(key, Origin{-1, a.line});
    }
    for (const BlockingFact& b : facts.blocking) {
      const int fn = function_at(file_index, b.body_id);
      if (fn < 0) continue;
      model.summaries[fn].blocking.emplace(b.name, Origin{-1, b.line});
    }
    for (const NondetFact& n : facts.nondet) {
      const int fn = function_at(file_index, n.body_id);
      if (fn < 0) continue;
      model.summaries[fn].nondet.emplace(n.rule, Origin{-1, n.line});
    }
    for (const WriteFact& w : facts.writes) {
      const int fn = function_at(file_index, w.body_id);
      if (fn < 0) continue;
      model.summaries[fn].writes.push_back(w);
    }
  }

  // Resolve call sites.
  for (std::size_t fi = 0; fi < input.files.size(); ++fi) {
    const SourceFile& file = input.files[fi];
    const int file_index = static_cast<int>(fi);
    for (const CallSiteFact& site : file.facts.calls) {
      ResolvedCall call;
      call.caller = function_at(file_index, site.body_id);
      call.file_index = file_index;
      call.token = site.token;
      call.line = site.line;
      call.name = site.name;
      call.member = site.member;
      call.on_this = site.on_this;
      call.receiver = site.receiver;
      const std::string class_ctx =
          call.caller >= 0 ? model.functions[call.caller].def.class_ctx
                           : std::string();
      for (const std::string& m : site.held_mutexes) {
        call.held.push_back(qualify_mutex(m, class_ctx));
      }

      // Callback variables shadow any same-named function.
      if (site.moved || model.merged.callback_vars.count(site.name) > 0) {
        call.callback = true;
        model.calls.push_back(std::move(call));
        continue;
      }

      std::set<int> targets;
      const std::vector<int>* named =
          site.member && stl_member_name(site.name)
              ? nullptr
              : model.by_name(site.name);
      if (named != nullptr) {
        if (!site.qualifier.empty()) {
          for (int id : *named) {
            if (qualifier_matches(model.functions[id].def.qualified,
                                  site.qualifier, site.name)) {
              targets.insert(id);
            }
          }
        } else if (site.member) {
          // x.f() / this->f(): any method named f; `this` narrows to the
          // caller's class when it has matching methods.
          std::set<int> same_class;
          for (int id : *named) {
            const FunctionDef& def = model.functions[id].def;
            if (def.class_ctx.empty()) continue;
            targets.insert(id);
            if (site.on_this && !class_ctx.empty() &&
                def.class_ctx == class_ctx) {
              same_class.insert(id);
            }
          }
          if (!same_class.empty()) targets = std::move(same_class);
        } else {
          // Unqualified free-call form. Methods of the caller's own class
          // (implicit this->) win, then free functions in this file, then
          // any definition of that name.
          for (int id : *named) {
            if (!class_ctx.empty() &&
                model.functions[id].def.class_ctx == class_ctx) {
              targets.insert(id);
            }
          }
          if (targets.empty()) {
            for (int id : *named) {
              if (model.functions[id].file_index == file_index &&
                  model.functions[id].def.class_ctx.empty()) {
                targets.insert(id);
              }
            }
          }
          if (targets.empty()) {
            targets.insert(named->begin(), named->end());
          }
        }
        // Dynamic dispatch: every override is a possible target.
        if (model.merged.virtual_methods.count(site.name) > 0) {
          for (int id : *named) {
            if (!model.functions[id].def.class_ctx.empty()) {
              targets.insert(id);
            }
          }
        }
      }
      call.callees.assign(targets.begin(), targets.end());
      if (call.caller >= 0) {
        auto& edges = model.callees[call.caller];
        for (int id : call.callees) {
          if (std::find(edges.begin(), edges.end(), id) == edges.end()) {
            edges.push_back(id);
          }
        }
      }
      model.calls.push_back(std::move(call));
    }
  }
  for (auto& edges : model.callees) std::sort(edges.begin(), edges.end());

  // Bottom-up propagation to a fixpoint. Merging only ever inserts keys,
  // so the iteration is monotone; ties keep the first origin seen, which
  // is deterministic because calls are visited in file/token order.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ResolvedCall& call : model.calls) {
      if (call.caller < 0) continue;
      FunctionSummary& caller = model.summaries[call.caller];
      if (call.callback && !caller.invokes_callback) {
        caller.invokes_callback = true;
        changed = true;
      }
      for (int callee : call.callees) {
        if (callee == call.caller) continue;
        const FunctionSummary& sub = model.summaries[callee];
        for (const auto& [key, origin] : sub.mutexes) {
          (void)origin;
          merge_entry(&caller.mutexes, key, Origin{callee, call.line},
                      &changed);
        }
        for (const auto& [key, origin] : sub.blocking) {
          (void)origin;
          merge_entry(&caller.blocking, key, Origin{callee, call.line},
                      &changed);
        }
        for (const auto& [key, origin] : sub.nondet) {
          (void)origin;
          merge_entry(&caller.nondet, key, Origin{callee, call.line},
                      &changed);
        }
        if (sub.invokes_callback && !caller.invokes_callback) {
          caller.invokes_callback = true;
          changed = true;
        }
      }
    }
  }

  return model;
}

}  // namespace flotilla::analyze
