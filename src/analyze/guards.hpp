// Shared lock-guard tracking over the token stream.
//
// Extracted from the lock-discipline pass (analyze/locks.cpp) when the
// interprocedural layer landed: the per-function summary collector
// (analyze/facts.cpp) needs the exact same model of which mutexes are
// held at a given token — guard declarations, brace-depth deactivation,
// unlock()/lock() toggles, std::defer_lock — so both consumers walk one
// implementation and cannot drift.
//
// Usage: one GuardWalker per callable body; feed it every token the body
// owns, in order: `if (walker.step(&i)) continue;` at the top of the
// token loop, mirroring the original locks.cpp scan.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"

namespace flotilla::analyze {

struct Guard {
  std::string name;                  // guard variable name
  std::vector<std::string> mutexes;  // raw mutex names from the declaration
  int depth = 0;   // brace depth (within the body) of the declaration
  bool active = false;
};

// Skips a balanced <...> starting at toks[i] == "<"; returns the index
// past the closing ">", or i when not an angle list.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i);

// Parses the argument list starting at toks[open] == '(' (or '{');
// returns mutex names (last identifier of each top-level argument) and
// whether std::defer_lock appeared.
void parse_guard_args(const std::vector<Token>& toks, std::size_t open,
                      std::vector<std::string>* mutexes, bool* deferred);

class GuardWalker {
 public:
  explicit GuardWalker(const std::vector<Token>& toks) : toks_(toks) {}

  // Fired on every real acquisition: a non-deferred guard declaration or
  // a .lock() toggle on an inactive guard. Set before walking.
  std::function<void(const Guard&, std::size_t line)> on_acquire;

  // Processes the token at *i. Returns true when the token was guard
  // bookkeeping (brace, guard declaration, unlock()/lock() toggle) — the
  // caller should `continue` without inspecting it further. A consumed
  // guard declaration advances *i to its '(' so the enclosing loop's ++i
  // lands on the first argument token, matching the historical locks.cpp
  // scan which re-reads guard arguments as ordinary tokens.
  bool step(std::size_t* i);

  bool any_active() const;
  // "'a', 'b'" — the active mutex list, formatted for diagnostics.
  std::string held_list() const;
  // Raw names of every active mutex, in acquisition order.
  std::vector<std::string> active_mutexes() const;
  const std::vector<Guard>& guards() const { return guards_; }

 private:
  const std::vector<Token>& toks_;
  std::vector<Guard> guards_;
  int depth_ = 0;
};

}  // namespace flotilla::analyze
