#include "analyze/rules.hpp"

namespace flotilla::analyze {

namespace {

constexpr const char* kPasses = "pass-catalogue";
constexpr const char* kDeterminism = "determinism-rules";
constexpr const char* kIpc = "interprocedural-analysis";
constexpr const char* kConfinement = "confinement-proofs";

const RuleMeta kRules[] = {
    {"arch-config", Severity::kError,
     "analyze/layers.conf is missing, unreadable, or malformed; the layer "
     "DAG cannot be checked without it.",
     kPasses},
    {"arch-cycle", Severity::kError,
     "Two headers include each other (directly or transitively); include "
     "cycles make layering meaningless and break incremental builds.",
     kPasses},
    {"arch-layering", Severity::kError,
     "An include crosses the layer DAG declared in analyze/layers.conf in "
     "a forbidden direction.",
     kPasses},
    {"arch-unmapped", Severity::kError,
     "A source file is not covered by any layer prefix in "
     "analyze/layers.conf, so no layering rule applies to it.",
     kPasses},
    {"conf-cross-shard-write", Severity::kError,
     "Writers covered by one shard-confined claim are dispatched to "
     "different shard keys; the state has no single home shard and races "
     "once the engine runs threads > 1.",
     kConfinement},
    {"conf-stale-claim", Severity::kError,
     "A confinement claim's function pattern matches nothing in the "
     "scanned tree; dead claims silently re-cover code if the name ever "
     "returns, so they are hard errors.",
     kConfinement},
    {"conf-unproven", Severity::kError,
     "A claim marked 'verified' in the confined-annotation file could "
     "not be mechanically proved against the dispatch model; fix the "
     "code, the claim, or downgrade it to 'assume' with review.",
     kConfinement},
    {"hardware-concurrency", Severity::kError,
     "std::thread::hardware_concurrency() makes behavior depend on the "
     "host machine; worker counts must come from configuration.",
     kDeterminism},
    {"ipc-blocking-under-lock", Severity::kError,
     "A call made while holding a mutex reaches code that blocks (a "
     "condition-variable wait, join, or sleep) at some call depth; the "
     "lock stays held for the whole blocking period.",
     kIpc},
    {"ipc-determinism", Severity::kError,
     "A trace span, counter, or fingerprint takes a value from a function "
     "that transitively reads wall-clock time or unseeded randomness, so "
     "trace content differs run to run.",
     kIpc},
    {"ipc-self-deadlock", Severity::kError,
     "A call made while holding a mutex reaches code that re-acquires the "
     "same mutex at some call depth; with a non-recursive mutex this "
     "deadlocks the calling thread against itself.",
     kIpc},
    {"lock-callback", Severity::kError,
     "A user callback is invoked while a lock is held; the callback can "
     "re-enter the component and deadlock.",
     kPasses},
    {"lock-order", Severity::kError,
     "Two mutexes are acquired in opposite orders at different sites "
     "(ABBA); pick one global order.",
     kPasses},
    {"lock-virtual", Severity::kError,
     "A virtual method is called while a lock is held; dynamic dispatch "
     "can land in user code that re-enters the component.",
     kPasses},
    {"real-sleep", Severity::kError,
     "Simulation code sleeps in real time; delays must be modeled as "
     "simulated events.",
     kDeterminism},
    {"shared-state", Severity::kNote,
     "A member field or global is written without a guard by code "
     "reachable from sim::Engine::run. Inventory for the engine-sharding "
     "refactor (ROADMAP 1), not a defect today: the engine is currently "
     "single-threaded.",
     kIpc},
    {"span-balance", Severity::kError,
     "A trace span begun in a function is not closed on every path "
     "through it (early return leaks the span).",
     kPasses},
    {"unordered-iteration", Severity::kError,
     "Iteration order of a hash container can feed event ordering; "
     "iterate util::sorted_keys() or use an ordered container.",
     kDeterminism},
    {"unseeded-random", Severity::kError,
     "Nondeterministic randomness in simulation code; draw from a seeded "
     "sim::RngStream.",
     kDeterminism},
    {"wall-clock", Severity::kError,
     "Wall-clock time in simulation code breaks determinism; use "
     "sim::Engine::now().",
     kDeterminism},
};

}  // namespace

const RuleMeta* find_rule_meta(const std::string& id) {
  for (const RuleMeta& meta : kRules) {
    if (id == meta.id) return &meta;
  }
  return nullptr;
}

Severity rule_severity(const std::string& id) {
  const RuleMeta* meta = find_rule_meta(id);
  return meta == nullptr ? Severity::kError : meta->severity;
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

}  // namespace flotilla::analyze
