// Interprocedural passes over the whole-program model
// (docs/correctness.md, "Interprocedural analysis").
//
//   ipc-locks         self-deadlock: a call made while holding a mutex
//                     whose callee (at any depth) re-acquires the same
//                     mutex; and blocking-under-lock: a call made under a
//                     lock whose callee transitively blocks (cv waits,
//                     joins, sleeps). Depth-0 blocking names (join,
//                     wait_all, the sleep family) fire too; cv wait
//                     members do not at depth 0, since `cv.wait(lk)`
//                     releases the lock it is handed.
//   ipc-determinism   taint: a trace sink (Tracer span/counter, FNV
//                     fingerprint) whose arguments call a function that
//                     transitively reads wall-clock time or unseeded
//                     randomness.
//   shared-state      concurrency-readiness audit for the engine-sharding
//                     refactor (ROADMAP item 1): every member field and
//                     global/static written without a guard by code
//                     reachable from sim::Engine::run. Reported at
//                     severity "note" — an inventory, not a gate — and
//                     dumped in full by --shared-state-report.
#pragma once

#include <iosfwd>

#include "analyze/callgraph.hpp"
#include "analyze/pass.hpp"

namespace flotilla::analyze {

class IpcLocksPass : public Pass {
 public:
  std::string_view name() const override { return "ipc-locks"; }
  std::vector<std::string> rules() const override;
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;
};

class IpcDeterminismPass : public Pass {
 public:
  std::string_view name() const override { return "ipc-determinism"; }
  std::vector<std::string> rules() const override;
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;
};

// One unguarded write location, aggregated per (file, function, target).
struct SharedStateEntry {
  WriteFact::Kind kind = WriteFact::Kind::kMember;
  std::string target;
  std::string file;       // display path
  std::size_t line = 0;   // first write site
  std::string function;   // qualified writer
  int sites = 0;          // number of write sites aggregated
  // Reason from the matching confined annotation; empty = unannotated.
  std::string confinement;
};

// One line of analyze/confined.txt: a claim that writes to `target` from
// `function` are safe without a guard (owner-confined to one shard,
// published at a round barrier, shard-confined by dispatch, or pinned
// away from the threaded roots — docs/sharding.md). `function` is
// matched as a qualified-name component suffix; a trailing "::*"
// annotates every member of a component. `target` may be "*" to cover
// all of the function's writes. `status` is "verified" (the confinement
// pass must mechanically prove it — a proof failure is a conf-* finding)
// or "assume" (reviewed claim, staleness-checked only). `kind` is the
// reason's leading word: owner-confined, shard-confined, threads-pinned,
// or host-tooling.
struct ConfinedAnnotation {
  std::string target;
  std::string function;
  std::string status;  // "verified" | "assume"
  std::string kind;
  std::string reason;  // starts with kind, e.g. "shard-confined: ..."
  std::size_t line = 0;
};

// Parses the tab/space-separated annotation file (`target function
// status reason...` per line, '#' comments; the reason must open with a
// recognized kind). False (with *error) on IO or parse failure.
bool load_confined_annotations(const std::string& path,
                               std::vector<ConfinedAnnotation>* out,
                               std::string* error);

// True when `qualified` is `suffix` or ends with "::" + suffix.
bool component_suffix(const std::string& qualified,
                      const std::string& suffix);

// True when the annotation's function pattern covers `qualified`. A plain
// pattern matches as a component suffix ("Engine::step" matches
// "sim::Engine::step"); "X::*" matches every member of component X,
// including lambdas defined inside its methods.
bool function_matches(const std::string& qualified,
                      const std::string& pattern);

// First annotation whose target and function pattern cover the write, or
// nullptr. First match wins — order the claims file specific-first.
const ConfinedAnnotation* match_annotation(
    const std::vector<ConfinedAnnotation>* confined,
    const std::string& target, const std::string& function);

// Unguarded writes reachable from sim::Engine::run (empty when the
// program model is missing or no root matches). Sorted by (file, line,
// target). When `confined` is given, matching entries carry the
// annotation's reason in SharedStateEntry::confinement.
std::vector<SharedStateEntry> collect_shared_state(
    const AnalysisInput& input,
    const std::vector<ConfinedAnnotation>* confined = nullptr);

// Tab-separated inventory with a header line plus a summary line
// splitting confined-by-annotation from unannotated entries; consumed by
// the sharding work as its to-guard checklist and uploaded as a CI
// artifact.
void write_shared_state_report(const std::vector<SharedStateEntry>& entries,
                               std::ostream& out);

class SharedStatePass : public Pass {
 public:
  std::string_view name() const override { return "shared-state"; }
  std::vector<std::string> rules() const override;
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;
};

}  // namespace flotilla::analyze
