#include "analyze/locks.hpp"

#include <map>
#include <vector>

#include "analyze/facts.hpp"
#include "analyze/guards.hpp"

namespace flotilla::analyze {

namespace {

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------------
// Per-body lock tracking
// ---------------------------------------------------------------------------
// Guard bookkeeping (declarations, unlock/lock toggles, scope exits) lives
// in GuardWalker (analyze/guards.hpp), shared with the facts collector;
// the declaration harvest (callback vars, virtual methods) lives in
// analyze/facts.hpp. This pass keeps only its own detection logic.

struct OrderSite {
  std::string file;
  std::size_t line = 0;
};

using OrderMap = std::map<std::pair<std::string, std::string>,
                          std::vector<OrderSite>>;

void analyze_body(const SourceFile& file, const Body& body,
                  const DeclHarvest& decls, OrderMap* orders,
                  std::vector<Finding>* findings) {
  const auto& toks = file.lex.tokens;
  GuardWalker walker(toks);
  walker.on_acquire = [&](const Guard& incoming, std::size_t line) {
    for (const Guard& held : walker.guards()) {
      if (!held.active) continue;
      for (const std::string& m : held.mutexes) {
        for (const std::string& n : incoming.mutexes) {
          if (m == n) continue;
          (*orders)[{m, n}].push_back({file.display, line});
        }
      }
    }
  };

  for (std::size_t i = body.open; i <= body.close && i < toks.size(); ++i) {
    if (file.bodies.body_of[i] != body.id) continue;  // nested lambda/fn
    if (walker.step(&i)) continue;
    const Token& tok = toks[i];
    if (!is_ident(tok)) continue;
    if (!walker.any_active()) continue;

    // Direct or member call of a callback: `cb(...)`, `x.done(...)`.
    const bool called =
        i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const bool declaration_like =
        i > 0 && (is_ident(toks[i - 1]) || is_punct(toks[i - 1], ">") ||
                  is_punct(toks[i - 1], "&") || is_punct(toks[i - 1], "*"));
    if (called && !declaration_like &&
        decls.callback_vars.count(tok.text) > 0) {
      findings->push_back(
          {file.display, tok.line, "lock-callback",
           "user callback '" + tok.text + "' invoked while holding " +
               walker.held_list() +
               " in '" + body.name +
               "'; run callbacks outside the lock (hand them to the "
               "caller), or they can re-enter and deadlock"});
      continue;
    }
    // std::move(cb)(...) invocation.
    if (tok.text == "move" && i + 4 < toks.size() &&
        is_punct(toks[i + 1], "(") && is_ident(toks[i + 2]) &&
        is_punct(toks[i + 3], ")") && is_punct(toks[i + 4], "(") &&
        decls.callback_vars.count(toks[i + 2].text) > 0) {
      findings->push_back(
          {file.display, tok.line, "lock-callback",
           "user callback '" + toks[i + 2].text +
               "' invoked while holding " + walker.held_list() + " in '" +
               body.name +
               "'; run callbacks outside the lock (hand them to the "
               "caller), or they can re-enter and deadlock"});
      continue;
    }
    if (called && !declaration_like &&
        decls.virtual_methods.count(tok.text) > 0) {
      findings->push_back(
          {file.display, tok.line, "lock-virtual",
           "virtual method '" + tok.text + "' called while holding " +
               walker.held_list() + " in '" + body.name +
               "'; dynamic dispatch under a lock can land in user code "
               "that re-enters this component"});
      continue;
    }
  }
}

}  // namespace

void LockDisciplinePass::run(const AnalysisInput& input,
                             std::vector<Finding>* findings) const {
  OrderMap orders;
  for (const SourceFile& file : input.files) {
    for (const Body& body : file.bodies.bodies) {
      analyze_body(file, body, file.facts.decls, &orders, findings);
    }
  }
  // Inconsistent acquisition-order pairs: (A, B) and (B, A) both seen.
  for (const auto& [pair, sites] : orders) {
    const auto reverse = orders.find({pair.second, pair.first});
    if (reverse == orders.end()) continue;
    if (pair.first > pair.second) continue;  // report each pair once
    for (const OrderSite& site : sites) {
      const OrderSite& other = reverse->second.front();
      findings->push_back(
          {site.file, site.line, "lock-order",
           "mutex '" + pair.second + "' acquired while holding '" +
               pair.first + "', but the opposite order exists at " +
               other.file + ":" + std::to_string(other.line) +
               "; pick one global order to avoid ABBA deadlock"});
    }
    for (const OrderSite& site : reverse->second) {
      const OrderSite& other = sites.front();
      findings->push_back(
          {site.file, site.line, "lock-order",
           "mutex '" + pair.first + "' acquired while holding '" +
               pair.second + "', but the opposite order exists at " +
               other.file + ":" + std::to_string(other.line) +
               "; pick one global order to avoid ABBA deadlock"});
    }
  }
}

}  // namespace flotilla::analyze
