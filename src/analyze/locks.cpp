#include "analyze/locks.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace flotilla::analyze {

namespace {

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string::traits_type::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Skips a balanced <...> starting at toks[i] == "<"; returns the index
// past the closing ">", or i when not an angle list.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || !is_punct(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], "<")) ++depth;
    if (is_punct(toks[j], ">") && --depth == 0) return j + 1;
    if (is_punct(toks[j], ";")) break;  // malformed; bail out
  }
  return i;
}

// ---------------------------------------------------------------------------
// Declaration harvesting (file + paired header)
// ---------------------------------------------------------------------------

struct Decls {
  std::set<std::string> callback_types;  // aliases of std::function
  std::set<std::string> callback_vars;   // variables/members/params
  std::set<std::string> virtual_methods;
};

bool is_callback_type(const Decls& decls, const std::string& type_name) {
  return type_name == "function" || decls.callback_types.count(type_name) > 0 ||
         ends_with(type_name, "Callback") || ends_with(type_name, "Handler");
}

void harvest(const std::vector<Token>& toks, Decls* decls) {
  // Pass 1: `using X = std::function<...>` aliases.
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i]) || toks[i].text != "using") continue;
    if (!is_ident(toks[i + 1]) || !is_punct(toks[i + 2], "=")) continue;
    for (std::size_t j = i + 3; j < toks.size() && j < i + 8; ++j) {
      if (is_punct(toks[j], ";")) break;
      if (is_ident(toks[j]) && toks[j].text == "function") {
        decls->callback_types.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Pass 2: variables/members/parameters of callback type, and virtual
  // method names.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    if (toks[i].text == "virtual") {
      // Method name: the identifier right before the next '(' (stop at
      // ';' or '{'). Destructors are skipped.
      for (std::size_t j = i + 1; j + 1 < toks.size() && j < i + 24; ++j) {
        if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) break;
        if (is_punct(toks[j + 1], "(") && is_ident(toks[j]) &&
            !(j > 0 && is_punct(toks[j - 1], "~"))) {
          decls->virtual_methods.insert(toks[j].text);
          break;
        }
      }
      continue;
    }
    if (!is_callback_type(*decls, toks[i].text)) continue;
    std::size_t j = skip_angles(toks, i + 1);
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            (is_ident(toks[j]) && toks[j].text == "const"))) {
      ++j;
    }
    if (j >= toks.size() || !is_ident(toks[j])) continue;
    if (j + 1 >= toks.size()) continue;
    const Token& after = toks[j + 1];
    if (is_punct(after, ";") || is_punct(after, ",") ||
        is_punct(after, ")") || is_punct(after, "=") ||
        is_punct(after, "{")) {
      decls->callback_vars.insert(toks[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-body lock tracking
// ---------------------------------------------------------------------------

struct Guard {
  std::string name;
  std::vector<std::string> mutexes;
  int depth = 0;   // brace depth (within the body) of the declaration
  bool active = false;
};

struct OrderSite {
  std::string file;
  std::size_t line = 0;
};

using OrderMap = std::map<std::pair<std::string, std::string>,
                          std::vector<OrderSite>>;

bool is_lock_tag(const std::string& t) {
  return t == "adopt_lock" || t == "defer_lock" || t == "try_to_lock";
}

// Parses the argument list starting at toks[open] == '(' (or '{');
// returns mutex names (last identifier of each top-level argument) and
// whether std::defer_lock appeared.
void parse_guard_args(const std::vector<Token>& toks, std::size_t open,
                      std::vector<std::string>* mutexes, bool* deferred) {
  const char* close_text = is_punct(toks[open], "{") ? "}" : ")";
  int depth = 0;
  std::string last_ident;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
    if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) {
      --depth;
      if (depth == 0 && t.text == std::string(close_text)) {
        if (!last_ident.empty()) mutexes->push_back(last_ident);
        return;
      }
    }
    if (depth == 1 && is_punct(t, ",")) {
      if (!last_ident.empty()) mutexes->push_back(last_ident);
      last_ident.clear();
      continue;
    }
    if (is_ident(t)) {
      if (is_lock_tag(t.text)) {
        if (t.text == "defer_lock") *deferred = true;
        last_ident.clear();
      } else if (t.text != "std") {
        last_ident = t.text;
      }
    }
  }
}

std::string held_list(const std::vector<Guard>& guards) {
  std::string out;
  for (const Guard& g : guards) {
    if (!g.active) continue;
    for (const std::string& m : g.mutexes) {
      if (!out.empty()) out += ", ";
      out += "'" + m + "'";
    }
  }
  return out;
}

void analyze_body(const SourceFile& file, const Body& body,
                  const Decls& decls, OrderMap* orders,
                  std::vector<Finding>* findings) {
  const auto& toks = file.lex.tokens;
  std::vector<Guard> guards;
  int depth = 0;

  auto record_acquisition = [&](const Guard& incoming, std::size_t line) {
    for (const Guard& held : guards) {
      if (!held.active) continue;
      for (const std::string& m : held.mutexes) {
        for (const std::string& n : incoming.mutexes) {
          if (m == n) continue;
          (*orders)[{m, n}].push_back({file.display, line});
        }
      }
    }
  };

  for (std::size_t i = body.open; i <= body.close && i < toks.size(); ++i) {
    if (file.bodies.body_of[i] != body.id) continue;  // nested lambda/fn
    const Token& tok = toks[i];
    if (is_punct(tok, "{")) {
      ++depth;
      continue;
    }
    if (is_punct(tok, "}")) {
      --depth;
      for (Guard& g : guards) {
        if (g.depth > depth) g.active = false;
      }
      continue;
    }
    if (!is_ident(tok)) continue;

    // Guard declaration: [std ::] lock_guard|unique_lock|scoped_lock
    // [<...>] name ( args ) ;
    if (tok.text == "lock_guard" || tok.text == "unique_lock" ||
        tok.text == "scoped_lock") {
      std::size_t j = skip_angles(toks, i + 1);
      if (j < toks.size() && is_ident(toks[j])) {
        const std::string guard_name = toks[j].text;
        if (j + 1 < toks.size() &&
            (is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "{"))) {
          Guard guard;
          guard.name = guard_name;
          guard.depth = depth;
          bool deferred = false;
          parse_guard_args(toks, j + 1, &guard.mutexes, &deferred);
          guard.active = !deferred;
          if (guard.active && !guard.mutexes.empty()) {
            record_acquisition(guard, tok.line);
          }
          guards.push_back(std::move(guard));
          i = j + 1;
          continue;
        }
      }
    }

    // guard.unlock() / guard.lock() toggles.
    if ((tok.text == "unlock" || tok.text == "lock") && i >= 2 &&
        is_punct(toks[i - 1], ".") && is_ident(toks[i - 2]) &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      for (Guard& g : guards) {
        if (g.name != toks[i - 2].text) continue;
        const bool activate = tok.text == "lock";
        if (activate && !g.active && !g.mutexes.empty()) {
          record_acquisition(g, tok.line);
        }
        g.active = activate;
      }
      continue;
    }

    const bool any_active =
        std::any_of(guards.begin(), guards.end(),
                    [](const Guard& g) { return g.active; });
    if (!any_active) continue;

    // Direct or member call of a callback: `cb(...)`, `x.done(...)`.
    const bool called =
        i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const bool declaration_like =
        i > 0 && (is_ident(toks[i - 1]) || is_punct(toks[i - 1], ">") ||
                  is_punct(toks[i - 1], "&") || is_punct(toks[i - 1], "*"));
    if (called && !declaration_like &&
        decls.callback_vars.count(tok.text) > 0) {
      findings->push_back(
          {file.display, tok.line, "lock-callback",
           "user callback '" + tok.text + "' invoked while holding " +
               held_list(guards) +
               " in '" + body.name +
               "'; run callbacks outside the lock (hand them to the "
               "caller), or they can re-enter and deadlock"});
      continue;
    }
    // std::move(cb)(...) invocation.
    if (tok.text == "move" && i + 4 < toks.size() &&
        is_punct(toks[i + 1], "(") && is_ident(toks[i + 2]) &&
        is_punct(toks[i + 3], ")") && is_punct(toks[i + 4], "(") &&
        decls.callback_vars.count(toks[i + 2].text) > 0) {
      findings->push_back(
          {file.display, tok.line, "lock-callback",
           "user callback '" + toks[i + 2].text +
               "' invoked while holding " + held_list(guards) + " in '" +
               body.name +
               "'; run callbacks outside the lock (hand them to the "
               "caller), or they can re-enter and deadlock"});
      continue;
    }
    if (called && !declaration_like &&
        decls.virtual_methods.count(tok.text) > 0) {
      findings->push_back(
          {file.display, tok.line, "lock-virtual",
           "virtual method '" + tok.text + "' called while holding " +
               held_list(guards) + " in '" + body.name +
               "'; dynamic dispatch under a lock can land in user code "
               "that re-enters this component"});
      continue;
    }
  }
}

}  // namespace

void LockDisciplinePass::run(const AnalysisInput& input,
                             std::vector<Finding>* findings) const {
  OrderMap orders;
  for (const SourceFile& file : input.files) {
    Decls decls;
    harvest(file.lex.tokens, &decls);
    if (file.paired_header) harvest(file.paired_header->tokens, &decls);
    for (const Body& body : file.bodies.bodies) {
      analyze_body(file, body, decls, &orders, findings);
    }
  }
  // Inconsistent acquisition-order pairs: (A, B) and (B, A) both seen.
  for (const auto& [pair, sites] : orders) {
    const auto reverse = orders.find({pair.second, pair.first});
    if (reverse == orders.end()) continue;
    if (pair.first > pair.second) continue;  // report each pair once
    for (const OrderSite& site : sites) {
      const OrderSite& other = reverse->second.front();
      findings->push_back(
          {site.file, site.line, "lock-order",
           "mutex '" + pair.second + "' acquired while holding '" +
               pair.first + "', but the opposite order exists at " +
               other.file + ":" + std::to_string(other.line) +
               "; pick one global order to avoid ABBA deadlock"});
    }
    for (const OrderSite& site : reverse->second) {
      const OrderSite& other = sites.front();
      findings->push_back(
          {site.file, site.line, "lock-order",
           "mutex '" + pair.first + "' acquired while holding '" +
               pair.second + "', but the opposite order exists at " +
               other.file + ":" + std::to_string(other.line) +
               "; pick one global order to avoid ABBA deadlock"});
    }
  }
}

}  // namespace flotilla::analyze
