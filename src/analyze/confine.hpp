// Confinement-proof pass (docs/correctness.md#confinement-proofs,
// docs/sharding.md "Confinement proofs").
//
// The shared-state inventory (analyze/ipc.hpp) lists every unguarded
// write reachable from the event loop; analyze/confined.txt annotates
// why each is safe without a guard. This pass turns the annotations
// whose status column says "verified" into proof obligations against a
// dispatch model built from the engine's in/at/invoke_on seams:
//
//   shard-confined   every inventory writer covered by the claim is
//                    only reached from lambdas dispatched to one shard
//                    key (the class's home shard), or from no dispatch
//                    path at all (construction / host setup). Writers
//                    reached from differently-keyed dispatches fail.
//   owner-confined   writers all live inside the owning component and
//                    no global the claim covers is also written
//                    unguarded outside it. The round-barrier publication
//                    half of the argument is dynamic (TSan leg plus the
//                    fingerprint matrix), not static.
//   threads-pinned   no function the claim covers is reachable from the
//                    threaded storm roots (sim::run_storm and the storm
//                    harness sources), so the pinned code never runs on
//                    an engine worker thread.
//   host-tooling     never provable here; must use status "assume".
//
// Failures surface as conf-unproven / conf-cross-shard-write findings
// at the offending write (or at the claim line for vacuous claims), and
// any claim — verified or assumed — whose function pattern no longer
// names a function in the scanned tree is a conf-stale-claim hard
// error. All three rules are kError severity: a wrong confinement claim
// is exactly the class of bug that lets the threads > 1 full stack race.
#pragma once

#include <iosfwd>

#include "analyze/ipc.hpp"
#include "analyze/pass.hpp"

namespace flotilla::analyze {

// Verdict for one claim line of the annotation file.
struct ConfinementClaim {
  std::string verdict;   // "proved" | "assumed" | "failed"
  std::string status;    // claim status column: "verified" | "assume"
  std::string kind;      // owner-confined | shard-confined | ...
  std::string target;
  std::string function;  // claim pattern
  int entries = 0;       // matched shared-state inventory entries
  std::string detail;    // home key, failure reason, or "-"
  std::size_t line = 0;  // claim line in the annotation file
};

struct ConfinementResult {
  std::vector<Finding> findings;
  std::vector<ConfinementClaim> claims;  // one per claim, file order
};

// Checks every claim in input.confined against the dispatch model.
// Empty result when no claims or no program model were provided.
ConfinementResult analyze_confinement(const AnalysisInput& input);

// Tab-separated per-claim report with a summary line (proved / assumed /
// failed counts); written by --confinement-report and uploaded as a CI
// artifact so the proof surface is reviewable per run.
void write_confinement_report(const std::vector<ConfinementClaim>& claims,
                              std::ostream& out);

class ConfinementPass : public Pass {
 public:
  std::string_view name() const override { return "confinement"; }
  std::vector<std::string> rules() const override;
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;
};

}  // namespace flotilla::analyze
