// Per-file facts for the interprocedural layer (docs/correctness.md,
// "Interprocedural analysis").
//
// Phase one of the two-phase driver: every file is reduced — independently,
// so the scan parallelizes — to the facts the whole-program passes need:
// function definitions with best-effort qualified names, call-shaped sites
// (with the mutexes held at each), writes to member fields and
// globals/statics, blocking calls, nondeterminism sources, and the
// declaration harvests (callback aliases/variables, virtual methods) the
// lock-discipline pass has always used. Phase two (analyze/callgraph.hpp)
// links the facts into a call graph and propagates summaries bottom-up.
//
// Everything here is heuristic and token-level, tuned to this codebase's
// style (members end in '_', globals start with 'g_' or are declared
// `static`); over-approximation rules are documented in
// docs/correctness.md.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.hpp"
#include "analyze/scopes.hpp"

namespace flotilla::analyze {

// Declarations harvested from a file plus its paired header: aliases of
// std::function, variables/members/params of callback type, and virtual
// method names. Shared by the lock-discipline pass and the facts
// collector so the two cannot drift.
struct DeclHarvest {
  std::set<std::string> callback_types;  // aliases of std::function
  std::set<std::string> callback_vars;   // variables/members/params
  std::set<std::string> virtual_methods;
};

bool is_callback_type(const DeclHarvest& decls, const std::string& type_name);
void harvest_decls(const std::vector<Token>& toks, DeclHarvest* decls);

// A function or lambda definition.
struct FunctionDef {
  int body_id = -1;        // index into BodyIndex::bodies
  std::string name;        // last component; "<lambda>" for lambdas
  std::string qualified;   // namespace/class-qualified best-effort name
  std::string class_ctx;   // enclosing class qualification; "" for free fns
  std::size_t line = 0;
  bool lambda = false;
};

// A call-shaped site: `name(...)`, `x.name(...)`, `A::name(...)`, or
// `std::move(name)(...)`. Resolution to callees happens in phase two —
// a site whose name is a harvested callback variable becomes a callback
// invocation, not a direct edge.
struct CallSiteFact {
  int body_id = -1;
  std::string name;                    // callee last component
  std::vector<std::string> qualifier;  // explicit A::B:: prefix, outer first
  bool member = false;                 // invoked through '.' or '->'
  bool on_this = false;                // receiver is `this`
  bool moved = false;                  // std::move(name)(...) form
  // Receiver identifier of a member call (`recv.f()` / `recv->f()`);
  // empty when the receiver is `this`, a chained call, or any other
  // non-identifier expression. The confinement pass uses it, together
  // with the member-type harvest, to narrow name-level member dispatch.
  std::string receiver;
  std::size_t token = 0;               // index of the name token
  std::size_t line = 0;
  std::vector<std::string> held_mutexes;  // raw names active at the site
};

// A write to shared-looking state: assignment (plain, compound, or
// subscripted), increment/decrement, or a mutating container call on a
// member field ('x_', 'this->x') or a global/static.
struct WriteFact {
  enum class Kind { kMember, kGlobal };
  int body_id = -1;
  Kind kind = Kind::kMember;
  std::string target;
  std::size_t line = 0;
  bool guarded = false;  // a lock guard was active at the write
};

// A guard-based mutex acquisition (lock_guard/unique_lock/scoped_lock
// declaration, or a deferred/unlocked guard re-locking). Raw mutex.lock()
// calls are not tracked — the codebase locks through RAII guards.
struct AcquireFact {
  int body_id = -1;
  std::string mutex;  // raw name; qualified with the class in phase two
  std::size_t line = 0;
};

// A potentially blocking call: cv/future .wait*/join member calls, the
// sleep family, ProcessPool-style wait_all.
struct BlockingFact {
  int body_id = -1;
  std::string name;
  std::size_t line = 0;
};

// A nondeterminism source read: wall-clock or unseeded-random token (the
// determinism pass's own tables, applied without the per-file scope so
// taint can originate anywhere and flow into scoped code).
struct NondetFact {
  int body_id = -1;
  std::string rule;  // "wall-clock" | "unseeded-random"
  std::string token;
  std::size_t line = 0;
};

// An engine dispatch site: a member call to `in`/`at`/`invoke_on` whose
// argument list carries at least one inline lambda — the unit of work
// the sharded engine will run on some shard (docs/sharding.md).
// `targeted` records whether the call names an explicit destination
// shard: invoke_on always does; at/in only in their three-argument
// shard-targeted overloads (detected as >= 2 top-level commas).
// `shard_key` is the token text of that destination argument.
struct DispatchFact {
  int body_id = -1;
  std::string name;                // "in" | "at" | "invoke_on"
  std::string receiver;            // receiver identifier, may be empty
  bool targeted = false;
  std::string shard_key;           // first-argument tokens when targeted
  std::vector<int> lambda_bodies;  // direct-child lambda bodies in the args
  std::size_t line = 0;
};

// A trace-output sink: Tracer begin/end with a SpanType argument, a
// Tracer counter() call, or an FNV/fingerprint call. Argument tokens are
// (open, close) exclusive.
struct SinkFact {
  int body_id = -1;
  std::string what;  // for diagnostics, e.g. "trace span"
  std::size_t line = 0;
  std::size_t open = 0;   // token index of '('
  std::size_t close = 0;  // token index of matching ')'
};

struct FileFacts {
  DeclHarvest decls;
  std::vector<FunctionDef> functions;
  std::vector<CallSiteFact> calls;
  std::vector<WriteFact> writes;
  std::vector<AcquireFact> acquires;
  std::vector<BlockingFact> blocking;
  std::vector<NondetFact> nondet;
  std::vector<SinkFact> sinks;
  std::vector<DispatchFact> dispatches;
  std::set<std::string> globals;        // mutable static/global names
  std::set<std::string> atomics;        // atomic-typed names (writes exempt)
  std::set<std::string> address_taken;  // &name / &A::name, not a call
  // Declared-variable types, `name -> CamelCase type last components`:
  // `sim::Engine engine_;` records engine_ -> {Engine}. Best-effort and
  // file-local; the confinement pass merges the maps program-wide to
  // narrow member-call dispatch by receiver.
  std::map<std::string, std::set<std::string>> member_types;
};

// Collects every fact for one file. Pure function of its inputs — safe to
// run concurrently across files.
FileFacts collect_facts(const LexedFile& lex, const BodyIndex& bodies,
                        const LexedFile* paired_header);

}  // namespace flotilla::analyze
