// Lock discipline: the PR 1 ProcessPool deadlock class, as a static pass.
//
// Tracks std::lock_guard / std::unique_lock / std::scoped_lock scopes per
// callable body (lambda bodies are independent — a deferred callback does
// not run under the locks around its definition) and reports:
//
//   lock-callback  a user-callback invocation (a variable/member/parameter
//                  of std::function type, a `using X = std::function`
//                  alias, or a *Callback / *Handler type) while a lock is
//                  held. Callbacks may re-enter the locking component —
//                  the exact shape of the PR 1 ProcessPool deadlock.
//   lock-virtual   a virtual-method call while a lock is held (dynamic
//                  dispatch can land in user code the component cannot
//                  audit). Virtual methods are recognized from `virtual`
//                  declarations in the file or its paired header.
//   lock-order     two mutexes acquired in both (A, B) and (B, A) nesting
//                  order anywhere in the analyzed tree.
//
// unique_lock .unlock()/.lock() toggles and std::defer_lock are honored;
// guards deactivate when their enclosing brace scope closes.
#pragma once

#include "analyze/pass.hpp"

namespace flotilla::analyze {

class LockDisciplinePass : public Pass {
 public:
  std::string_view name() const override { return "locks"; }
  std::vector<std::string> rules() const override {
    return {"lock-callback", "lock-order", "lock-virtual"};
  }
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;
};

}  // namespace flotilla::analyze
