// Committed-findings baseline.
//
// The analyzer is adopted on an existing tree, so day-one findings that
// are judged acceptable (or too risky to churn) are grandfathered in a
// checked-in baseline file instead of waived in source. CI fails only on
// findings *not* in the baseline; removing an entry is a one-line diff
// that ratchets the tree forward.
//
// Format: one finding per line, `rule|file|line|message`, with `#`
// comment lines and blank lines ignored. The file is written sorted so
// regeneration is a stable diff.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyze/pass.hpp"

namespace flotilla::analyze {

// Parses baseline text. Malformed lines are reported through *error
// (first offender) and the function returns false.
bool parse_baseline(const std::string& text, std::set<Finding>* out,
                    std::string* error);

// Loads `path`. A missing file is NOT an error: it yields an empty
// baseline (first run before anything is committed).
bool load_baseline(const std::string& path, std::set<Finding>* out,
                   std::string* error);

// Serializes findings (assumed sorted) in the baseline format.
std::string format_baseline(const std::vector<Finding>& findings);

// Writes `format_baseline` to `path`; false on I/O failure.
bool save_baseline(const std::string& path,
                   const std::vector<Finding>& findings, std::string* error);

}  // namespace flotilla::analyze
