#include "analyze/scopes.hpp"

#include <array>

namespace flotilla::analyze {

namespace {

bool is_open(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
bool is_close(const std::string& t) {
  return t == ")" || t == "]" || t == "}";
}

bool any_of(const std::string& t, std::initializer_list<const char*> set) {
  for (const char* s : set) {
    if (t == s) return true;
  }
  return false;
}

enum class BraceKind { kFunction, kLambda, kType, kControl, kInit };

}  // namespace

std::size_t matching_close(const std::vector<Token>& tokens,
                           std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (is_open(tokens[i].text)) ++depth;
    if (is_close(tokens[i].text) && --depth == 0) return i;
  }
  return tokens.size();
}

std::size_t matching_open(const std::vector<Token>& tokens,
                          std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (is_close(tokens[i].text)) ++depth;
    if (is_open(tokens[i].text) && --depth == 0) return i;
  }
  return static_cast<std::size_t>(-1);
}

namespace {

// Classifies the '{' at token index i. `name` receives the best-effort
// function name for kFunction braces.
BraceKind classify_brace(const std::vector<Token>& tokens, std::size_t i,
                         std::string* name) {
  if (i == 0) return BraceKind::kControl;
  std::size_t p = i - 1;

  // Skip back over trailing function decoration: `) const noexcept {`,
  // `) -> std::vector<int> {`, `] (x) mutable {`. Stop at a structural
  // token; remember whether a class-like keyword was crossed.
  bool saw_type_keyword = false;
  int walked = 0;
  while (walked++ < 64) {
    const Token& t = tokens[p];
    if (t.kind == TokenKind::kIdentifier) {
      if (any_of(t.text,
                 {"class", "struct", "union", "enum", "namespace"})) {
        saw_type_keyword = true;
      }
      if (any_of(t.text, {"else", "do", "try"})) return BraceKind::kControl;
    } else if (t.kind == TokenKind::kPunct) {
      if (t.text == ")" || t.text == "]" || t.text == ";" || t.text == "{" ||
          t.text == "}" || t.text == "(" || t.text == "=") {
        break;
      }
      if (!any_of(t.text, {"::", "<", ">", ",", ":", "->", "*", "&"})) {
        return BraceKind::kInit;  // operators: a braced expression
      }
    } else if (t.kind == TokenKind::kNumber || t.kind == TokenKind::kChar) {
      return BraceKind::kInit;
    }
    // kString (e.g. extern "C") and everything skippable: keep walking.
    if (p == 0) return saw_type_keyword ? BraceKind::kType : BraceKind::kInit;
    --p;
  }
  if (walked >= 64) return BraceKind::kInit;

  const Token& stop = tokens[p];
  if (saw_type_keyword) return BraceKind::kType;
  if (stop.text == ")") {
    const std::size_t open = matching_open(tokens, p);
    if (open == static_cast<std::size_t>(-1) || open == 0) {
      return BraceKind::kFunction;
    }
    std::size_t r = open - 1;
    // `if constexpr (...)` puts constexpr between the keyword and '('.
    if (tokens[r].kind == TokenKind::kIdentifier &&
        tokens[r].text == "constexpr" && r > 0) {
      --r;
    }
    const Token& before = tokens[r];
    if (before.kind == TokenKind::kIdentifier &&
        any_of(before.text, {"if", "for", "while", "switch", "catch"})) {
      return BraceKind::kControl;
    }
    if (before.kind == TokenKind::kPunct && before.text == "]") {
      return BraceKind::kLambda;
    }
    if (before.kind == TokenKind::kIdentifier) {
      *name = before.text;
      return BraceKind::kFunction;
    }
    return BraceKind::kFunction;
  }
  if (stop.text == "]") return BraceKind::kLambda;
  if (stop.text == ";" || stop.text == "{" || stop.text == "}") {
    // A brace opening a statement: `{ ... }` block scope.
    return BraceKind::kControl;
  }
  return BraceKind::kInit;  // '=', '(' , ...: braced initializer/argument
}

}  // namespace

BodyIndex build_bodies(const LexedFile& file) {
  const std::vector<Token>& tokens = file.tokens;
  BodyIndex index;
  index.body_of.assign(tokens.size(), -1);

  struct Frame {
    int owner = -1;    // body id governing tokens inside this brace
    int body = -1;     // body opened by this brace, -1 if none
    std::size_t open = 0;
  };
  std::vector<Frame> stack;
  int current_owner = -1;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == TokenKind::kPunct && tok.text == "{") {
      std::string name;
      const BraceKind kind = classify_brace(tokens, i, &name);
      Frame frame;
      frame.open = i;
      frame.owner = current_owner;
      if (kind == BraceKind::kFunction || kind == BraceKind::kLambda) {
        Body body;
        body.id = static_cast<int>(index.bodies.size());
        body.parent = current_owner;
        body.lambda = kind == BraceKind::kLambda;
        body.name = kind == BraceKind::kLambda
                        ? "<lambda>"
                        : (name.empty() ? "<fn>" : name);
        body.line = tok.line;
        body.open = i;
        index.bodies.push_back(body);
        frame.body = body.id;
        current_owner = body.id;
      } else if (kind == BraceKind::kType) {
        current_owner = -1;
      }
      index.body_of[i] = current_owner;
      stack.push_back(frame);
      continue;
    }
    if (tok.kind == TokenKind::kPunct && tok.text == "}") {
      if (!stack.empty()) {
        const Frame frame = stack.back();
        stack.pop_back();
        index.body_of[i] = current_owner;
        if (frame.body >= 0) {
          index.bodies[static_cast<std::size_t>(frame.body)].close = i;
        }
        current_owner = frame.owner;
      } else {
        index.body_of[i] = current_owner;
      }
      continue;
    }
    index.body_of[i] = current_owner;
  }
  // Unterminated bodies (unbalanced braces): close at EOF.
  for (Body& body : index.bodies) {
    if (body.close == 0) body.close = tokens.empty() ? 0 : tokens.size() - 1;
  }
  return index;
}

}  // namespace flotilla::analyze
