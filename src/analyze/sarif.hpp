// SARIF 2.1.0 emission (github.com/oasis-tcs/sarif-spec; the subset GitHub
// code scanning ingests) plus the plain-text diagnostic format shared with
// flotilla-lint.
//
// Output is deterministic by construction: findings are emitted in sorted
// order with a fixed field layout and no timestamps/absolute paths, so the
// same tree and baseline produce a byte-identical document on any machine
// — which is what lets CI diff the artifact at all.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/pass.hpp"

namespace flotilla::analyze {

struct SarifResult {
  Finding finding;
  bool suppressed = false;  // present in the committed baseline
};

// Writes a complete SARIF 2.1.0 document. `rule_ids` become
// tool.driver.rules (sorted, deduped by the caller); suppressed results
// carry an external suppression so code scanning closes them out.
void write_sarif(std::ostream& os, const std::string& tool_name,
                 const std::vector<std::string>& rule_ids,
                 const std::vector<SarifResult>& results);

// One "file:line: error: [rule] message" line per finding.
void write_text(std::ostream& os, const std::vector<Finding>& findings);

// JSON string escaping (also used by tests to build expected documents).
std::string json_escape(const std::string& s);

}  // namespace flotilla::analyze
