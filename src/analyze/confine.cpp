#include "analyze/confine.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "analyze/callgraph.hpp"

namespace flotilla::analyze {

namespace {

// Shard context of a function: the set of distinct home-shard keys whose
// dispatch paths reach it. Empty = Bottom (no traced dispatch path —
// construction or host-driven setup), one key = Home, two or more =
// Multi (reached from differently-targeted dispatches).
using ShardCtx = std::set<std::string>;

struct Edge {
  int src = -1;
  int dst = -1;
};

std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

std::string drop_last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? std::string() : qualified.substr(0, pos);
}

// Constructors and destructors run before the object is published to the
// event loop (and after it is withdrawn); their writes are excluded from
// the shard-context obligation.
bool ctor_or_dtor(const std::string& qualified) {
  const std::string name = last_component(qualified);
  if (!name.empty() && name[0] == '~') return true;
  const std::string cls = last_component(drop_last_component(qualified));
  return !cls.empty() && name == cls;
}

bool plain_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (const char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

// Canonical form of a dispatch destination expression. kControlShard
// (however qualified) is one global key; a member field like `shard_` is
// scoped to the dispatching class, so every dispatch in flux::Instance
// through `shard_` agrees on one key while slurm's `shard_` stays
// distinct; anything else is an opaque expression scoped the same way —
// two textually identical expressions in one class are (heuristically)
// the same destination, textually different ones are not.
std::string normalize_key(const std::string& raw, const std::string& scope) {
  if (raw.find("kControlShard") != std::string::npos) return "control";
  if (plain_identifier(raw) && raw.back() == '_') return scope + "::" + raw;
  return scope + "::<" + raw + ">";
}

std::string quoted_keys(const ShardCtx& keys) {
  std::string out;
  for (const std::string& k : keys) {
    if (!out.empty()) out += ", ";
    out += "'" + k + "'";
  }
  return out;
}

}  // namespace

ConfinementResult analyze_confinement(const AnalysisInput& input) {
  ConfinementResult result;
  if (input.confined == nullptr || input.confined->empty() ||
      input.program == nullptr) {
    return result;
  }
  const ProgramModel& model = *input.program;

  // Per-file body-id -> function-id maps (same construction as
  // build_program's).
  std::vector<std::map<int, int>> fn_of_body(input.files.size());
  for (const FunctionNode& node : model.functions) {
    fn_of_body[node.file_index][node.def.body_id] = node.id;
  }
  auto function_at = [&](int file_index, int body_id) {
    const auto& map = fn_of_body[file_index];
    const auto it = map.find(body_id);
    return it == map.end() ? -1 : it->second;
  };

  // Program-wide receiver-type harvest: variable name -> declared
  // CamelCase type last components.
  std::map<std::string, std::set<std::string>> member_types;
  for (const SourceFile& file : input.files) {
    for (const auto& [var, types] : file.facts.member_types) {
      member_types[var].insert(types.begin(), types.end());
    }
  }

  // Context-carrying call edges. Name-level resolution smears contexts
  // across unrelated same-named methods, so a member call only transfers
  // the caller's shard context when the receiver is credibly the
  // callee's class: `this`, a receiver whose harvested declared type
  // matches, a call that resolves into a single class, or a same-class
  // candidate. Free-call form always transfers — it runs inline.
  std::vector<Edge> ctx_edges;
  for (const ResolvedCall& call : model.calls) {
    if (call.caller < 0 || call.callback || call.callees.empty()) continue;
    if (!call.member || call.on_this) {
      for (const int callee : call.callees) {
        ctx_edges.push_back({call.caller, callee});
      }
      continue;
    }
    const std::set<std::string>* receiver_types = nullptr;
    if (!call.receiver.empty()) {
      const auto it = member_types.find(call.receiver);
      if (it != member_types.end()) receiver_types = &it->second;
    }
    if (receiver_types != nullptr) {
      std::vector<int> matched;
      for (const int callee : call.callees) {
        const std::string cls =
            last_component(model.functions[callee].def.class_ctx);
        if (!cls.empty() && receiver_types->count(cls) > 0) {
          matched.push_back(callee);
        }
      }
      if (matched.empty()) {
        // Base-pointer / alias dispatch the harvest cannot see: keep
        // every candidate rather than dropping the edge, so the storm
        // closure stays an over-approximation.
        matched = call.callees;
      }
      for (const int callee : matched) {
        ctx_edges.push_back({call.caller, callee});
      }
      continue;
    }
    std::set<std::string> classes;
    for (const int callee : call.callees) {
      classes.insert(model.functions[callee].def.class_ctx);
    }
    const std::string& caller_class =
        model.functions[call.caller].def.class_ctx;
    for (const int callee : call.callees) {
      const std::string& cls = model.functions[callee].def.class_ctx;
      if (classes.size() == 1 || (!caller_class.empty() &&
                                  cls == caller_class)) {
        ctx_edges.push_back({call.caller, callee});
      }
    }
  }

  // Dispatch seams. A targeted dispatch seeds the lambda's context with
  // the normalized destination key — deliberately NOT joined with the
  // dispatcher's own context, since the engine runs the lambda on the
  // named shard no matter where the dispatch executed. An untargeted
  // in/at inherits the calling event's shard, so the lambda inherits the
  // dispatcher's context like any nested lambda.
  std::map<int, ShardCtx> seeds;
  std::set<int> targeted_lambdas;
  std::vector<Edge> dispatch_edges;  // reachability only (storm closure)
  for (std::size_t fi = 0; fi < input.files.size(); ++fi) {
    const int file_index = static_cast<int>(fi);
    for (const DispatchFact& d : input.files[fi].facts.dispatches) {
      const int dispatcher = function_at(file_index, d.body_id);
      if (dispatcher < 0) continue;
      const FunctionDef& def = model.functions[dispatcher].def;
      const std::string scope = def.class_ctx.empty()
                                    ? drop_last_component(def.qualified)
                                    : def.class_ctx;
      for (const int body : d.lambda_bodies) {
        const int lambda = function_at(file_index, body);
        if (lambda < 0) continue;
        dispatch_edges.push_back({dispatcher, lambda});
        if (d.targeted) {
          seeds[lambda].insert(normalize_key(d.shard_key, scope));
          targeted_lambdas.insert(lambda);
        } else {
          ctx_edges.push_back({dispatcher, lambda});
        }
      }
    }
  }

  // Lambdas not used as dispatch arguments (stored callbacks,
  // comparators, immediately-invoked blocks) run wherever their
  // enclosing function runs.
  for (const FunctionNode& node : model.functions) {
    if (!node.def.lambda || targeted_lambdas.count(node.id) > 0) continue;
    const BodyIndex& bodies = input.files[node.file_index].bodies;
    int parent = node.def.body_id >= 0
                     ? bodies.bodies[node.def.body_id].parent
                     : -1;
    while (parent >= 0) {
      const int enclosing = function_at(node.file_index, parent);
      if (enclosing >= 0) {
        ctx_edges.push_back({enclosing, node.id});
        break;
      }
      parent = bodies.bodies[parent].parent;
    }
  }

  // Propagate shard contexts to a fixpoint. Monotone: joins only ever
  // add keys.
  std::vector<ShardCtx> ctx(model.functions.size());
  for (const auto& [fn, keys] : seeds) {
    ctx[fn].insert(keys.begin(), keys.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : ctx_edges) {
      for (const std::string& key : ctx[e.src]) {
        if (ctx[e.dst].insert(key).second) changed = true;
      }
    }
  }

  // Storm closure: everything reachable from the threaded storm roots
  // along credible call edges plus every dispatch/nested-lambda edge.
  // No callback-hub expansion here — the hub models "anything scheduled
  // can run from the event loop", which is the full-stack loop, not the
  // storm harness; threads-pinned is a claim about the storm roots
  // specifically.
  std::vector<std::vector<int>> adjacency(model.functions.size());
  for (const Edge& e : ctx_edges) adjacency[e.src].push_back(e.dst);
  for (const Edge& e : dispatch_edges) adjacency[e.src].push_back(e.dst);
  std::vector<int> storm_parent(model.functions.size(), -2);  // -2 unreached
  std::vector<int> stack;
  for (const FunctionNode& node : model.functions) {
    const bool root =
        component_suffix(node.def.qualified, "sim::run_storm") ||
        node.display_file.find("sim/storm") != std::string::npos;
    if (root && storm_parent[node.id] == -2) {
      storm_parent[node.id] = -1;
      stack.push_back(node.id);
    }
  }
  while (!stack.empty()) {
    const int fn = stack.back();
    stack.pop_back();
    for (const int to : adjacency[fn]) {
      if (storm_parent[to] == -2) {
        storm_parent[to] = fn;
        stack.push_back(to);
      }
    }
  }
  auto storm_trail = [&](int fn) {
    std::vector<std::string> path;
    for (int cur = fn; cur >= 0 && path.size() < 24; cur = storm_parent[cur]) {
      path.push_back(model.functions[cur].def.name);
    }
    std::string out;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      out += out.empty() ? "'" : "' -> '";
      out += *it;
    }
    return out + "'";
  };

  // Inventory entries grouped by the claim that covers them, plus
  // function ids per (file, qualified writer) for context lookups.
  const std::vector<SharedStateEntry> entries = collect_shared_state(input);
  std::map<const ConfinedAnnotation*, std::vector<const SharedStateEntry*>>
      by_claim;
  for (const SharedStateEntry& e : entries) {
    const ConfinedAnnotation* a =
        match_annotation(input.confined, e.target, e.function);
    if (a != nullptr) by_claim[a].push_back(&e);
  }
  std::map<std::string, std::vector<int>> fns_by_site;
  for (const FunctionNode& node : model.functions) {
    fns_by_site[node.display_file + "|" + node.def.qualified].push_back(
        node.id);
  }
  auto entry_ctx = [&](const SharedStateEntry& e) {
    ShardCtx merged;
    const auto it = fns_by_site.find(e.file + "|" + e.function);
    if (it != fns_by_site.end()) {
      for (const int fn : it->second) {
        merged.insert(ctx[fn].begin(), ctx[fn].end());
      }
    }
    return merged;
  };

  const std::vector<const SharedStateEntry*> kNoEntries;
  for (const ConfinedAnnotation& a : *input.confined) {
    ConfinementClaim row;
    row.status = a.status;
    row.kind = a.kind;
    row.target = a.target;
    row.function = a.function;
    row.line = a.line;
    const std::string claim_at =
        " (claim at " + input.confined_path + ":" +
        std::to_string(a.line) + ")";
    const auto matched_it = by_claim.find(&a);
    const auto& matched =
        matched_it == by_claim.end() ? kNoEntries : matched_it->second;
    row.entries = static_cast<int>(matched.size());
    auto fail = [&](const std::string& rule, const std::string& file,
                    std::size_t line, const std::string& message) {
      result.findings.push_back({file, line, rule, message});
      row.verdict = "failed";
      if (row.detail.empty()) row.detail = message;
    };

    // Staleness gates everything: a claim naming nothing is dead weight
    // that would silently re-cover code if the name ever came back.
    bool names_function = false;
    for (const FunctionNode& node : model.functions) {
      if (function_matches(node.def.qualified, a.function)) {
        names_function = true;
        break;
      }
    }
    if (!names_function) {
      fail("conf-stale-claim", input.confined_path, a.line,
           "confinement claim for '" + a.target + "' in '" + a.function +
               "' matches no function in the scanned tree; delete the "
               "stale line");
      result.claims.push_back(std::move(row));
      continue;
    }

    if (a.status == "assume") {
      row.verdict = "assumed";
      row.detail = "-";
      result.claims.push_back(std::move(row));
      continue;
    }

    if (a.kind == "host-tooling") {
      fail("conf-unproven", input.confined_path, a.line,
           "host-tooling confinement cannot be mechanically verified; "
           "use status 'assume'");
    } else if (a.kind == "threads-pinned") {
      const FunctionNode* hit = nullptr;
      for (const FunctionNode& node : model.functions) {
        if (storm_parent[node.id] != -2 &&
            function_matches(node.def.qualified, a.function)) {
          hit = &node;
          break;
        }
      }
      if (hit != nullptr) {
        fail("conf-unproven", hit->display_file, hit->def.line,
             "'" + hit->def.qualified +
                 "' is claimed threads-pinned but is reachable from the "
                 "threaded storm roots: " + storm_trail(hit->id) +
                 claim_at);
      } else {
        row.verdict = "proved";
        row.detail = "unreachable from sim::run_storm closure";
      }
    } else if (matched.empty()) {
      fail("conf-unproven", input.confined_path, a.line,
           "confinement claim for '" + a.target + "' in '" + a.function +
               "' covers no unguarded-write inventory entry; downgrade "
               "to 'assume' or delete the line");
    } else if (a.kind == "shard-confined") {
      ShardCtx home_keys;
      bool any_home = false;
      bool any_multi = false;
      for (const SharedStateEntry* e : matched) {
        if (ctor_or_dtor(e->function)) continue;
        const ShardCtx keys = entry_ctx(*e);
        if (keys.size() >= 2) {
          any_multi = true;
          fail("conf-unproven", e->file, e->line,
               std::string(e->kind == WriteFact::Kind::kMember
                               ? "member '"
                               : "global '") +
                   e->target + "' in '" + e->function +
                   "' is written from dispatches targeting multiple "
                   "shard keys (" + quoted_keys(keys) + ")" + claim_at);
        } else if (keys.size() == 1) {
          any_home = true;
          home_keys.insert(*keys.begin());
        }
      }
      if (!any_multi && home_keys.size() >= 2) {
        const SharedStateEntry& first = *matched.front();
        fail("conf-cross-shard-write", first.file, first.line,
             "writers covered by the shard-confined claim for '" +
                 a.target + "' in '" + a.function +
                 "' are dispatched to different shard keys (" +
                 quoted_keys(home_keys) +
                 "); shard confinement needs one home shard" + claim_at);
      } else if (!any_multi && !any_home) {
        fail("conf-unproven", input.confined_path, a.line,
             "no dispatch-targeted path reaches any writer covered by "
             "the shard-confined claim for '" + a.target + "' in '" +
                 a.function +
                 "'; nothing ties the writes to a home shard");
      } else if (!any_multi) {
        row.verdict = "proved";
        row.detail = "home=" + *home_keys.begin();
      }
    } else {  // owner-confined
      bool escaped = false;
      for (const SharedStateEntry* e : matched) {
        if (e->kind != WriteFact::Kind::kGlobal) continue;
        for (const SharedStateEntry& other : entries) {
          if (other.kind != WriteFact::Kind::kGlobal ||
              other.target != e->target) {
            continue;
          }
          if (match_annotation(input.confined, other.target,
                               other.function) == &a) {
            continue;
          }
          escaped = true;
          fail("conf-unproven", other.file, other.line,
               "global '" + other.target +
                   "' claimed owner-confined to '" + a.function +
                   "' is also written unguarded by '" + other.function +
                   "'" + claim_at);
        }
      }
      if (!escaped) {
        row.verdict = "proved";
        row.detail = std::to_string(matched.size()) +
                     " writers inside owner; barrier publication gated "
                     "dynamically";
      }
    }
    result.claims.push_back(std::move(row));
  }

  std::sort(result.findings.begin(), result.findings.end());
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end()),
      result.findings.end());
  return result;
}

void write_confinement_report(const std::vector<ConfinementClaim>& claims,
                              std::ostream& out) {
  std::size_t proved = 0;
  std::size_t assumed = 0;
  std::size_t failed = 0;
  for (const ConfinementClaim& c : claims) {
    if (c.verdict == "proved") {
      ++proved;
    } else if (c.verdict == "assumed") {
      ++assumed;
    } else {
      ++failed;
    }
  }
  out << "# flotilla-analyze confinement-proof report: confined.txt "
         "claims checked against the dispatch model\n";
  out << "# total " << claims.size() << " claims: " << proved
      << " proved, " << assumed << " assumed, " << failed << " failed\n";
  out << "# verdict\tstatus\tkind\ttarget\tfunction\tentries\tdetail\n";
  for (const ConfinementClaim& c : claims) {
    out << c.verdict << '\t' << c.status << '\t' << c.kind << '\t'
        << c.target << '\t' << c.function << '\t' << c.entries << '\t'
        << (c.detail.empty() ? "-" : c.detail) << '\n';
  }
}

std::vector<std::string> ConfinementPass::rules() const {
  return {"conf-cross-shard-write", "conf-stale-claim", "conf-unproven"};
}

void ConfinementPass::run(const AnalysisInput& input,
                          std::vector<Finding>* findings) const {
  ConfinementResult result = analyze_confinement(input);
  findings->insert(findings->end(), result.findings.begin(),
                   result.findings.end());
}

}  // namespace flotilla::analyze
