// Preprocessor-aware C++ lexer for the static-analysis framework.
//
// Not a compiler front-end: the goal is a token stream that is *reliable*
// for pattern-level analyses (no comment or string-literal content can
// ever leak into a match) and cheap enough to run over the whole tree on
// every CI push. Handles line (//) and block comments, "..."/'...'
// literals with escapes, R"delim(...)delim" raw strings, digit
// separators (1'000'000), line continuations in directives, and the
// #include / #if-family directives, which are surfaced as structured
// records instead of tokens.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze/token.hpp"

namespace flotilla::analyze {

struct LexedFile {
  std::string path;     // as given to lex_file / lex_string
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<ConditionalDirective> conditionals;
  // Comment text per source line (concatenated when a line holds several;
  // block comments contribute to every line they span). Used for
  // FLOTILLA_LINT_ALLOW waiver lookups.
  std::map<std::size_t, std::string> comments;
};

// Lexes an in-memory buffer. `path` is only recorded for diagnostics.
LexedFile lex_string(const std::string& path, const std::string& source);

// Reads and lexes a file; returns false when the file cannot be read.
bool lex_file(const std::string& path, LexedFile* out);

}  // namespace flotilla::analyze
