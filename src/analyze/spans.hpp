// Span balance: keep the obs::Tracer begin/end instrumentation honest.
//
// The Fig 7 overhead report (src/obs/report.hpp) pairs begin/end records;
// a span opened but never closed silently skews a whole category. Most
// spans in this codebase are *event-driven* — begin() in one function,
// end() in the callback that observes completion — and those are fine by
// construction. What is statically checkable, and what this pass checks,
// is the lexical case: when one callable body contains both the begin and
// the end of a span type, an early `return` between them leaks the span.
//
// Per body (lambdas are independent bodies): begin(SpanType::kX, ...) and
// end(SpanType::kX, ...) calls are paired greedily in token order; a
// `return` strictly between a begin and its matched end is reported as
// rule `span-balance`. Begins with no end in the same body are assumed
// event-driven and skipped; ends with no begin close a span opened
// elsewhere and are likewise skipped. Calls whose span type is not a
// literal SpanType constant (e.g. a ternary) are ignored.
#pragma once

#include "analyze/pass.hpp"

namespace flotilla::analyze {

class SpanBalancePass : public Pass {
 public:
  std::string_view name() const override { return "spans"; }
  std::vector<std::string> rules() const override {
    return {"span-balance"};
  }
  void run(const AnalysisInput& input,
           std::vector<Finding>* findings) const override;
};

}  // namespace flotilla::analyze
