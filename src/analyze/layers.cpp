#include "analyze/layers.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

namespace flotilla::analyze {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

}  // namespace

std::string LayersConfig::layer_of(const std::string& file) const {
  std::string best;
  std::size_t best_len = 0;
  for (const Layer& layer : layers) {
    for (const std::string& prefix : layer.prefixes) {
      if (prefix.size() >= best_len &&
          file.compare(0, prefix.size(), prefix) == 0) {
        best = layer.name;
        best_len = prefix.size();
      }
    }
  }
  return best;
}

bool LayersConfig::allowed(const std::string& from,
                           const std::string& to) const {
  if (from == to) return true;
  // BFS over direct allow edges.
  std::set<std::string> seen{from};
  std::vector<std::string> queue{from};
  while (!queue.empty()) {
    const std::string cur = queue.back();
    queue.pop_back();
    const auto it = allow.find(cur);
    if (it == allow.end()) continue;
    for (const std::string& next : it->second) {
      if (next == to) return true;
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

std::string LayersConfig::dag_cycle() const {
  // DFS with a gray set; renders the first cycle found (deterministic:
  // layers and edges iterate in declaration/sorted order).
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const Layer& layer : layers) color[layer.name] = Color::kWhite;
  std::vector<std::string> stack;
  std::string cycle;
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& node) -> bool {
    color[node] = Color::kGray;
    stack.push_back(node);
    const auto it = allow.find(node);
    if (it != allow.end()) {
      for (const std::string& next : it->second) {
        const auto c = color.find(next);
        if (c == color.end()) continue;
        if (c->second == Color::kGray) {
          const auto at = std::find(stack.begin(), stack.end(), next);
          std::string text;
          for (auto s = at; s != stack.end(); ++s) text += *s + " -> ";
          cycle = text + next;
          return true;
        }
        if (c->second == Color::kWhite && dfs(next)) return true;
      }
    }
    stack.pop_back();
    color[node] = Color::kBlack;
    return false;
  };
  for (const Layer& layer : layers) {
    if (color[layer.name] == Color::kWhite && dfs(layer.name)) return cycle;
  }
  return "";
}

bool parse_layers(const std::string& path, const std::string& text,
                  LayersConfig* out, std::string* error) {
  out->path = path;
  out->layers.clear();
  out->allow.clear();
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  std::set<std::string> names;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> words = split_ws(line);
    if (words.empty()) continue;
    const std::string where = path + ":" + std::to_string(lineno) + ": ";
    if (words[0] == "layer") {
      if (words.size() < 3) {
        *error = where + "layer needs a name and at least one path prefix";
        return false;
      }
      if (!names.insert(words[1]).second) {
        *error = where + "duplicate layer '" + words[1] + "'";
        return false;
      }
      LayersConfig::Layer layer;
      layer.name = words[1];
      layer.prefixes.assign(words.begin() + 2, words.end());
      out->layers.push_back(std::move(layer));
    } else if (words[0] == "allow") {
      if (words.size() < 3) {
        *error = where + "allow needs a layer and at least one dependency";
        return false;
      }
      for (std::size_t i = 1; i < words.size(); ++i) {
        if (names.count(words[i]) == 0) {
          *error = where + "unknown layer '" + words[i] +
                   "' (declare layers before allow lines)";
          return false;
        }
      }
      auto& deps = out->allow[words[1]];
      deps.insert(words.begin() + 2, words.end());
    } else {
      *error = where + "unknown directive '" + words[0] + "'";
      return false;
    }
  }
  const std::string cycle = out->dag_cycle();
  if (!cycle.empty()) {
    *error = path + ": declared layer graph is not a DAG: " + cycle;
    return false;
  }
  return true;
}

bool load_layers(const std::string& path, LayersConfig* out,
                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = path + ": cannot read layers config";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_layers(path, buffer.str(), out, error);
}

namespace {

// Resolves an include path to the display path of an analyzed file, or ""
// for system/external includes. Tries the path as written, under src/,
// and relative to the including file's directory.
std::string resolve_include(const std::set<std::string>& known,
                            const std::string& includer,
                            const std::string& path) {
  if (known.count(path) > 0) return path;
  const std::string under_src = "src/" + path;
  if (known.count(under_src) > 0) return under_src;
  const std::size_t slash = includer.rfind('/');
  if (slash != std::string::npos) {
    const std::string sibling = includer.substr(0, slash + 1) + path;
    if (known.count(sibling) > 0) return sibling;
  }
  return "";
}

}  // namespace

void ArchitecturePass::run(const AnalysisInput& input,
                           std::vector<Finding>* findings) const {
  if (!config_error_.empty()) {
    findings->push_back({config_.path.empty() ? "analyze/layers.conf"
                                              : config_.path,
                         1, "arch-config", config_error_});
    return;
  }

  std::set<std::string> known;
  for (const SourceFile& file : input.files) known.insert(file.display);

  // Resolved repo-internal include edges: includer -> (resolved, line).
  std::map<std::string, std::vector<std::pair<std::string, std::size_t>>>
      edges;
  for (const SourceFile& file : input.files) {
    const std::string from_layer = config_.layer_of(file.display);
    if (from_layer.empty()) {
      findings->push_back(
          {file.display, 1, "arch-unmapped",
           "file is not covered by any layer prefix in " + config_.path +
               "; add it to a layer"});
    }
    for (const IncludeDirective& inc : file.lex.includes) {
      if (inc.system) continue;
      const std::string target =
          resolve_include(known, file.display, inc.path);
      if (target.empty()) continue;
      edges[file.display].push_back({target, inc.line});
      if (from_layer.empty()) continue;
      const std::string to_layer = config_.layer_of(target);
      if (to_layer.empty()) continue;  // reported once as arch-unmapped
      if (!config_.allowed(from_layer, to_layer)) {
        findings->push_back(
            {file.display, inc.line, "arch-layering",
             "include of \"" + inc.path + "\" makes layer '" + from_layer +
                 "' depend on layer '" + to_layer +
                 "', which the declared DAG in " + config_.path +
                 " forbids"});
      }
    }
  }

  // Include cycles among repo files (Tarjan SCC; deterministic order).
  std::map<std::string, int> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  int counter = 0;
  std::vector<std::vector<std::string>> cycles;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack.insert(v);
        const auto it = edges.find(v);
        if (it != edges.end()) {
          for (const auto& [w, line] : it->second) {
            (void)line;
            if (index.find(w) == index.end()) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack.count(w) > 0) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          bool self_loop = false;
          const auto self = edges.find(v);
          if (scc.size() == 1 && self != edges.end()) {
            for (const auto& [w, line] : self->second) {
              (void)line;
              if (w == v) self_loop = true;
            }
          }
          if (scc.size() > 1 || self_loop) {
            std::sort(scc.begin(), scc.end());
            cycles.push_back(std::move(scc));
          }
        }
      };
  for (const SourceFile& file : input.files) {
    if (index.find(file.display) == index.end()) {
      strongconnect(file.display);
    }
  }
  std::sort(cycles.begin(), cycles.end());
  for (const auto& scc : cycles) {
    // Anchor the finding at the first member's include into the SCC.
    const std::string& anchor = scc.front();
    std::size_t line = 1;
    const auto it = edges.find(anchor);
    if (it != edges.end()) {
      for (const auto& [w, inc_line] : it->second) {
        if (std::find(scc.begin(), scc.end(), w) != scc.end()) {
          line = inc_line;
          break;
        }
      }
    }
    std::string members;
    for (const std::string& m : scc) {
      if (!members.empty()) members += " <-> ";
      members += m;
    }
    findings->push_back({anchor, line, "arch-cycle",
                         "include cycle between: " + members});
  }
}

}  // namespace flotilla::analyze
