#include "analyze/facts.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "analyze/determinism.hpp"
#include "analyze/guards.hpp"

namespace flotilla::analyze {

namespace {

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string::traits_type::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool starts_with(const std::string& s, const char* prefix) {
  const std::size_t n = std::string::traits_type::length(prefix);
  return s.size() >= n && s.compare(0, n, prefix) == 0;
}

bool any_of(const std::string& t, std::initializer_list<const char*> set) {
  for (const char* s : set) {
    if (t == s) return true;
  }
  return false;
}

// Control-flow and operator keywords that look like calls but are not.
bool never_a_call(const std::string& t) {
  return any_of(t, {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "alignof", "alignas", "decltype", "typeid",
                    "noexcept", "static_assert", "throw", "assert",
                    "defined", "this"});
}

// Keywords after which an identifier-'(' sequence is still a call, not a
// declaration (`return helper()`, `case f():` ...).
bool call_position_keyword(const std::string& t) {
  return any_of(t, {"return", "throw", "else", "do", "case", "new",
                    "delete", "co_return", "co_await", "co_yield", "and",
                    "or", "not", "goto"});
}

bool member_blocking_name(const std::string& t) {
  return any_of(t, {"wait", "wait_for", "wait_until", "wait_all", "join"});
}

bool free_blocking_name(const std::string& t) {
  return any_of(t, {"sleep_for", "sleep_until", "usleep", "nanosleep"});
}

bool mutating_member_call(const std::string& t) {
  return any_of(t, {"push_back", "emplace_back", "emplace", "insert",
                    "erase", "clear", "push", "pop", "pop_back",
                    "pop_front", "resize", "assign", "store", "reset",
                    "swap", "append"});
}

// ---------------------------------------------------------------------------
// Declaration harvesting (moved verbatim from locks.cpp so the lock pass
// and the facts collector share one implementation)
// ---------------------------------------------------------------------------

}  // namespace

bool is_callback_type(const DeclHarvest& decls, const std::string& type_name) {
  return type_name == "function" ||
         decls.callback_types.count(type_name) > 0 ||
         ends_with(type_name, "Callback") || ends_with(type_name, "Handler");
}

void harvest_decls(const std::vector<Token>& toks, DeclHarvest* decls) {
  // Pass 1: `using X = std::function<...>` aliases.
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i]) || toks[i].text != "using") continue;
    if (!is_ident(toks[i + 1]) || !is_punct(toks[i + 2], "=")) continue;
    for (std::size_t j = i + 3; j < toks.size() && j < i + 8; ++j) {
      if (is_punct(toks[j], ";")) break;
      if (is_ident(toks[j]) && toks[j].text == "function") {
        decls->callback_types.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Pass 2: variables/members/parameters of callback type, and virtual
  // method names.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    if (toks[i].text == "virtual") {
      // Method name: the identifier right before the next '(' (stop at
      // ';' or '{'). Destructors are skipped.
      for (std::size_t j = i + 1; j + 1 < toks.size() && j < i + 24; ++j) {
        if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) break;
        if (is_punct(toks[j + 1], "(") && is_ident(toks[j]) &&
            !(j > 0 && is_punct(toks[j - 1], "~"))) {
          decls->virtual_methods.insert(toks[j].text);
          break;
        }
      }
      continue;
    }
    if (!is_callback_type(*decls, toks[i].text)) continue;
    std::size_t j = skip_angles(toks, i + 1);
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            (is_ident(toks[j]) && toks[j].text == "const"))) {
      ++j;
    }
    if (j >= toks.size() || !is_ident(toks[j])) continue;
    if (j + 1 >= toks.size()) continue;
    const Token& after = toks[j + 1];
    if (is_punct(after, ";") || is_punct(after, ",") ||
        is_punct(after, ")") || is_punct(after, "=") ||
        is_punct(after, "{")) {
      decls->callback_vars.insert(toks[j].text);
    }
  }
}

namespace {

// ---------------------------------------------------------------------------
// Globals / atomics harvesting
// ---------------------------------------------------------------------------

// `static` declarations of mutable data (namespace scope, class scope, or
// function-local — all of them are shared state once the engine shards),
// plus atomic-typed names, whose lock-free writes are exempt.
void harvest_globals(const std::vector<Token>& toks,
                     std::set<std::string>* globals,
                     std::set<std::string>* atomics) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const std::string& t = toks[i].text;
    if (t == "static") {
      bool immutable = false;
      for (std::size_t j = i + 1; j < toks.size() && j < i + 16; ++j) {
        if (is_punct(toks[j], ";") || is_punct(toks[j], "(")) break;
        if (is_ident(toks[j]) &&
            (toks[j].text == "const" || toks[j].text == "constexpr")) {
          immutable = true;
        }
        if (is_ident(toks[j]) && j + 1 < toks.size() &&
            (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], "=") ||
             is_punct(toks[j + 1], "{") || is_punct(toks[j + 1], "["))) {
          if (!immutable) globals->insert(toks[j].text);
          break;
        }
      }
      continue;
    }
    if (t == "atomic" || starts_with(t, "atomic_")) {
      std::size_t j = skip_angles(toks, i + 1);
      if (j == i + 1 && t == "atomic") continue;  // atomic without <...>
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*"))) {
        ++j;
      }
      if (j < toks.size() && is_ident(toks[j])) atomics->insert(toks[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Declared-variable types (receiver narrowing for the confinement pass)
// ---------------------------------------------------------------------------

// `Type name;` / `Type name_ = ...;` / `Ns::Type& param,` declarations:
// records name -> Type's last CamelCase component. Template wrappers
// resolve to the innermost-rightmost identifier (`std::unique_ptr<obs::
// Tracer> t_` records t_ -> Tracer), which is what a `t_->method()`
// receiver dispatches into. Lowercase type candidates (builtins,
// keywords, expression false-positives like `return x;`) are dropped.
void harvest_member_types(
    const std::vector<Token>& toks,
    std::map<std::string, std::set<std::string>>* types) {
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i])) continue;
    const Token& next = toks[i + 1];
    if (next.kind != TokenKind::kPunct ||
        !any_of(next.text, {";", "=", "{", ",", ")"})) {
      continue;
    }
    // Walk back over declarator decoration to the type's last token.
    std::size_t j = i;
    while (j > 0 && (is_punct(toks[j - 1], "&") ||
                     is_punct(toks[j - 1], "*") ||
                     (is_ident(toks[j - 1]) &&
                      toks[j - 1].text == "const"))) {
      --j;
    }
    if (j == 0) continue;
    std::string type;
    if (is_ident(toks[j - 1])) {
      type = toks[j - 1].text;
    } else if (is_punct(toks[j - 1], ">")) {
      // Template wrapper: innermost-rightmost identifier.
      for (std::size_t k = j - 1; k-- > 0;) {
        if (is_ident(toks[k])) {
          type = toks[k].text;
          break;
        }
        if (toks[k].kind == TokenKind::kPunct &&
            (toks[k].text == ";" || toks[k].text == "{" ||
             toks[k].text == "}")) {
          break;
        }
      }
    }
    if (type.empty() || std::isupper(static_cast<unsigned char>(type[0])) == 0) {
      continue;
    }
    (*types)[toks[i].text].insert(type);
  }
}

// ---------------------------------------------------------------------------
// Function definitions with qualified names
// ---------------------------------------------------------------------------

// Explicit qualified-id parts of the function whose body opens at
// toks[open_brace]: `void A::B::f(...) ... {` yields {A, B, f}. Empty when
// unparseable (operators, heavily decorated declarations). Constructor
// member-init lists (`Foo::Foo() : x_(0), y_{1} {`) are walked through.
std::vector<std::string> function_name_parts(const std::vector<Token>& toks,
                                             std::size_t open_brace) {
  std::size_t p = open_brace;
  for (int round = 0; round < 16; ++round) {
    // Walk back over decoration to the parameter list's ')'.
    std::size_t close = std::string::npos;
    int walked = 0;
    while (p-- > 0 && walked++ < 64) {
      const Token& t = toks[p];
      if (is_punct(t, ")")) {
        close = p;
        break;
      }
      if (t.kind == TokenKind::kPunct &&
          (t.text == ";" || t.text == "{" || t.text == "}" ||
           t.text == "(")) {
        return {};
      }
    }
    if (close == std::string::npos) return {};
    const std::size_t open = matching_open(toks, close);
    if (open == static_cast<std::size_t>(-1) || open == 0) return {};
    // Qualified id: ident (:: ident)* immediately before '('.
    std::vector<std::string> parts;
    std::size_t q = open - 1;
    while (is_ident(toks[q])) {
      parts.insert(parts.begin(), toks[q].text);
      if (q >= 2 && is_punct(toks[q - 1], "::") && is_ident(toks[q - 2])) {
        q -= 2;
        continue;
      }
      break;
    }
    if (parts.empty()) return {};
    // `: name(...)` or `, name(...)` — a constructor member-init entry,
    // not the parameter list. Retry from before it.
    if (q >= 1 &&
        (is_punct(toks[q - 1], ":") || is_punct(toks[q - 1], ","))) {
      p = q;  // continue the backward walk from the separator
      continue;
    }
    return parts;
  }
  return {};
}

std::string join_parts(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += "::";
    out += part;
  }
  return out;
}

struct ScopeFrame {
  std::vector<std::string> names;  // namespace/class components ("" = anon)
  bool type = false;               // class/struct/union/enum scope
  int body_id = -1;                // function/lambda body, -1 otherwise
};

// Name(s) carried by a non-body '{' at token i: namespace components, a
// class-like name, or nothing. `slice_begin` is the token after the
// previous structural boundary.
void scope_brace_names(const std::vector<Token>& toks, std::size_t i,
                       ScopeFrame* frame) {
  // Find the statement slice: back to the previous ';', '{', or '}'.
  std::size_t begin = i;
  while (begin > 0) {
    const Token& t = toks[begin - 1];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      break;
    }
    --begin;
    if (i - begin > 64) break;  // give up on pathological slices
  }
  // Last scope keyword in the slice wins (`template<class T> struct X`).
  std::size_t kw = std::string::npos;
  bool is_namespace = false;
  for (std::size_t j = begin; j < i; ++j) {
    if (!is_ident(toks[j])) continue;
    if (toks[j].text == "namespace") {
      kw = j;
      is_namespace = true;
    } else if (any_of(toks[j].text, {"class", "struct", "union", "enum"})) {
      // `enum class` keeps kw at the later keyword; both name the type.
      kw = j;
      is_namespace = false;
    }
  }
  if (kw == std::string::npos) return;
  if (is_namespace) {
    // namespace A::B { ... } or namespace { ... }
    std::vector<std::string> names;
    for (std::size_t j = kw + 1; j < i; ++j) {
      if (is_ident(toks[j])) {
        names.push_back(toks[j].text);
      } else if (!is_punct(toks[j], "::")) {
        break;
      }
    }
    if (names.empty()) names.push_back("");  // anonymous
    frame->names = std::move(names);
    return;
  }
  frame->type = true;
  // Type name: last identifier before the base-clause ':' or the '{',
  // skipping `final` and the `class` of `enum class`.
  std::string name;
  for (std::size_t j = kw + 1; j < i; ++j) {
    if (is_punct(toks[j], ":")) break;
    if (!is_ident(toks[j])) continue;
    if (any_of(toks[j].text, {"final", "class", "struct", "alignas"})) {
      continue;
    }
    name = toks[j].text;
  }
  if (!name.empty()) frame->names = {name};
}

void collect_functions(const LexedFile& lex, const BodyIndex& bodies,
                       FileFacts* facts) {
  const auto& toks = lex.tokens;
  std::map<std::size_t, const Body*> body_at;
  for (const Body& b : bodies.bodies) body_at[b.open] = &b;

  std::vector<ScopeFrame> stack;
  std::map<int, std::size_t> def_of_body;  // body id -> facts->functions idx

  auto scope_prefix = [&]() {
    std::string out;
    for (const ScopeFrame& frame : stack) {
      for (const std::string& n : frame.names) {
        if (n.empty()) continue;  // anonymous namespace
        if (!out.empty()) out += "::";
        out += n;
      }
    }
    return out;
  };
  auto innermost_is_type = [&]() {
    for (std::size_t k = stack.size(); k-- > 0;) {
      if (stack[k].body_id >= 0) return false;
      if (!stack[k].names.empty()) return stack[k].type;
    }
    return false;
  };
  auto enclosing_function = [&]() -> const FunctionDef* {
    for (std::size_t k = stack.size(); k-- > 0;) {
      if (stack[k].body_id < 0) continue;
      const auto it = def_of_body.find(stack[k].body_id);
      if (it != def_of_body.end()) return &facts->functions[it->second];
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_punct(toks[i], "}")) {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (!is_punct(toks[i], "{")) continue;

    ScopeFrame frame;
    const auto at = body_at.find(i);
    if (at != body_at.end()) {
      const Body* body = at->second;
      frame.body_id = body->id;
      FunctionDef def;
      def.body_id = body->id;
      def.line = body->line;
      def.lambda = body->lambda;
      if (body->lambda) {
        const FunctionDef* outer = enclosing_function();
        def.name = "<lambda>";
        def.qualified =
            (outer != nullptr ? outer->qualified : scope_prefix()) +
            "::<lambda:" + std::to_string(body->line) + ">";
        def.class_ctx = outer != nullptr ? outer->class_ctx : "";
      } else {
        std::vector<std::string> parts = function_name_parts(toks, i);
        const std::string prefix = scope_prefix();
        if (parts.empty()) {
          def.name = body->name;
          def.qualified =
              prefix.empty() ? def.name : prefix + "::" + def.name;
          def.class_ctx = innermost_is_type() ? prefix : "";
        } else {
          def.name = parts.back();
          const std::string joined = join_parts(parts);
          def.qualified = prefix.empty() ? joined : prefix + "::" + joined;
          if (parts.size() > 1) {
            // Out-of-line definition: everything before the last part
            // qualifies the class (or, occasionally, a namespace — an
            // acceptable over-approximation).
            def.class_ctx =
                def.qualified.substr(0, def.qualified.rfind("::"));
          } else {
            def.class_ctx = innermost_is_type() ? prefix : "";
          }
        }
      }
      def_of_body[body->id] = facts->functions.size();
      facts->functions.push_back(std::move(def));
    } else {
      scope_brace_names(toks, i, &frame);
    }
    stack.push_back(std::move(frame));
  }
}

// ---------------------------------------------------------------------------
// Per-body facts
// ---------------------------------------------------------------------------

// True when toks[i] names a member/global write target.
bool write_target(const std::vector<Token>& toks, std::size_t i,
                  const FileFacts& facts, WriteFact::Kind* kind) {
  const std::string& name = toks[i].text;
  if (facts.atomics.count(name) > 0) return false;
  const bool via_this = i >= 2 && is_punct(toks[i - 1], "->") &&
                        is_ident(toks[i - 2]) && toks[i - 2].text == "this";
  if (via_this || (ends_with(name, "_") && name.size() > 1 &&
                   !ends_with(name, "__"))) {
    *kind = WriteFact::Kind::kMember;
    return true;
  }
  if (facts.globals.count(name) > 0 || starts_with(name, "g_")) {
    *kind = WriteFact::Kind::kGlobal;
    return true;
  }
  return false;
}

// Write shape immediately around toks[i] (the target identifier):
// assignment, compound assignment, ++/--, subscripted assignment, or a
// mutating container member call.
bool is_write_shape(const std::vector<Token>& toks, std::size_t i) {
  const auto punct_at = [&](std::size_t j, const char* t) {
    return j < toks.size() && is_punct(toks[j], t);
  };
  const auto assign_at = [&](std::size_t j) {
    // `=` that is not `==` (the lexer emits one '=' per character).
    if (!punct_at(j, "=")) return false;
    if (punct_at(j + 1, "=")) return false;
    if (j > 0 && (punct_at(j - 1, "=") || punct_at(j - 1, "!") ||
                  punct_at(j - 1, "<") || punct_at(j - 1, ">"))) {
      return false;
    }
    return true;
  };
  // ++x / --x / x++ / x--
  if (i >= 2 && ((punct_at(i - 1, "+") && punct_at(i - 2, "+")) ||
                 (punct_at(i - 1, "-") && punct_at(i - 2, "-")))) {
    return true;
  }
  if ((punct_at(i + 1, "+") && punct_at(i + 2, "+")) ||
      (punct_at(i + 1, "-") && punct_at(i + 2, "-"))) {
    return true;
  }
  std::size_t j = i + 1;
  // x[...]... — subscript, then look at what follows.
  if (punct_at(j, "[")) {
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != TokenKind::kPunct) continue;
      if (toks[j].text == "[") ++depth;
      if (toks[j].text == "]" && --depth == 0) {
        ++j;
        break;
      }
    }
  }
  if (assign_at(j)) return true;
  // Compound: x += / -= / *= / ... / <<= / >>=
  static const char* const kCompound = "+-*/%&|^";
  if (j < toks.size() && toks[j].kind == TokenKind::kPunct &&
      toks[j].text.size() == 1 &&
      std::string(kCompound).find(toks[j].text[0]) != std::string::npos &&
      assign_at(j + 1)) {
    return true;
  }
  if ((punct_at(j, "<") && punct_at(j + 1, "<") && assign_at(j + 2)) ||
      (punct_at(j, ">") && punct_at(j + 1, ">") && assign_at(j + 2))) {
    return true;
  }
  // x.push_back(...) and friends.
  if ((punct_at(j, ".") || punct_at(j, "->")) && j + 2 < toks.size() &&
      is_ident(toks[j + 1]) && mutating_member_call(toks[j + 1].text) &&
      punct_at(j + 2, "(")) {
    return true;
  }
  return false;
}

void collect_body_facts(const LexedFile& lex, const BodyIndex& bodies,
                        const Body& body, FileFacts* facts) {
  const auto& toks = lex.tokens;
  GuardWalker walker(toks);
  walker.on_acquire = [&](const Guard& guard, std::size_t line) {
    for (const std::string& m : guard.mutexes) {
      facts->acquires.push_back({body.id, m, line});
    }
  };
  for (std::size_t i = body.open;
       i <= body.close && i < toks.size(); ++i) {
    if (bodies.body_of[i] != body.id) continue;  // nested lambda/fn
    if (walker.step(&i)) continue;
    const Token& tok = toks[i];

    // Address-taken functions: `&name` / `&A::name` in argument or
    // assignment position, not immediately invoked.
    if (is_punct(tok, "&") && i + 1 < toks.size() &&
        is_ident(toks[i + 1]) && i > 0 &&
        (toks[i - 1].kind == TokenKind::kPunct
             ? any_of(toks[i - 1].text, {"(", ",", "=", "{", "<"})
             : toks[i - 1].text == "return")) {
      std::size_t j = i + 1;
      while (j + 2 < toks.size() && is_punct(toks[j + 1], "::") &&
             is_ident(toks[j + 2])) {
        j += 2;
      }
      if (j + 1 >= toks.size() || !is_punct(toks[j + 1], "(")) {
        facts->address_taken.insert(toks[j].text);
      }
      continue;
    }
    if (!is_ident(tok)) continue;

    // Nondeterminism sources (taint origins — no file scope here).
    if (const char* rule = nondet_source_rule(toks, i)) {
      facts->nondet.push_back({body.id, rule, tok.text, tok.line});
    }

    const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const bool member = i > 0 && (is_punct(toks[i - 1], ".") ||
                                  is_punct(toks[i - 1], "->"));

    // Blocking calls.
    if (called && ((member && member_blocking_name(tok.text)) ||
                   (!member && free_blocking_name(tok.text)))) {
      facts->blocking.push_back({body.id, tok.text, tok.line});
    }

    // Trace-output sinks: Tracer begin/end with a SpanType argument,
    // counter(), or FNV/fingerprint helpers.
    if (called) {
      bool sink = false;
      std::string what;
      if (member && (tok.text == "begin" || tok.text == "end")) {
        const std::size_t close = matching_close(toks, i + 1);
        for (std::size_t j = i + 2; j < close && j < toks.size(); ++j) {
          if (is_ident(toks[j]) && toks[j].text == "SpanType") {
            sink = true;
            what = "trace span";
            break;
          }
        }
      } else if (member && tok.text == "counter") {
        sink = true;
        what = "trace counter";
      } else if (starts_with(tok.text, "fnv") ||
                 tok.text.find("fingerprint") != std::string::npos) {
        sink = true;
        what = "trace fingerprint";
      }
      if (sink) {
        const std::size_t close = matching_close(toks, i + 1);
        facts->sinks.push_back(
            {body.id, what, tok.line, i + 1, close});
      }
    }

    // Call-shaped sites. `std::move(x)(...)` is recorded as a call of x.
    if (called && tok.text == "move" && i + 4 < toks.size() &&
        is_ident(toks[i + 2]) && is_punct(toks[i + 3], ")") &&
        is_punct(toks[i + 4], "(")) {
      CallSiteFact call;
      call.body_id = body.id;
      call.name = toks[i + 2].text;
      call.moved = true;
      call.token = i + 2;
      call.line = toks[i + 2].line;
      call.held_mutexes = walker.active_mutexes();
      facts->calls.push_back(std::move(call));
      continue;
    }
    if (called && !never_a_call(tok.text)) {
      // Skip declarations: `Type name(...)`, `vector<int> name(...)`.
      bool declaration_like = false;
      if (i > 0) {
        const Token& prev = toks[i - 1];
        if (prev.kind == TokenKind::kIdentifier &&
            !call_position_keyword(prev.text)) {
          declaration_like = true;
        } else if (prev.kind == TokenKind::kPunct &&
                   (prev.text == ">" || prev.text == "&" ||
                    prev.text == "*" || prev.text == "~")) {
          declaration_like = true;
        }
      }
      if (!declaration_like) {
        CallSiteFact call;
        call.body_id = body.id;
        call.name = tok.text;
        call.member = member;
        call.token = i;
        call.line = tok.line;
        if (member && i >= 2 && is_ident(toks[i - 2])) {
          if (toks[i - 2].text == "this") {
            call.on_this = true;
          } else {
            call.receiver = toks[i - 2].text;
          }
        }
        if (i >= 2 && is_punct(toks[i - 1], "::")) {
          // Explicit qualification: A::B::name(...).
          std::size_t q = i;
          while (q >= 2 && is_punct(toks[q - 1], "::") &&
                 is_ident(toks[q - 2])) {
            call.qualifier.insert(call.qualifier.begin(),
                                  toks[q - 2].text);
            q -= 2;
          }
        }
        call.held_mutexes = walker.active_mutexes();
        facts->calls.push_back(std::move(call));
      }
    }

    // Engine dispatch sites: member calls to in/at/invoke_on carrying an
    // inline lambda. The lambda bodies are the units of work the sharded
    // engine runs; the confinement pass seeds its shard-context analysis
    // from them (docs/sharding.md, "Confinement proofs").
    if (called && member &&
        any_of(tok.text, {"in", "at", "invoke_on"})) {
      const std::size_t open = i + 1;
      const std::size_t close = matching_close(toks, open);
      DispatchFact dispatch;
      dispatch.body_id = body.id;
      dispatch.name = tok.text;
      dispatch.line = tok.line;
      if (i >= 2 && is_ident(toks[i - 2]) && toks[i - 2].text != "this") {
        dispatch.receiver = toks[i - 2].text;
      }
      // Top-level commas split the arguments; the first argument's token
      // text is the shard key of the targeted overloads.
      int depth = 0;
      int commas = 0;
      std::string first_arg;
      for (std::size_t j = open + 1; j < close && j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
          if (t.text == "," && depth == 0) {
            ++commas;
            continue;
          }
        }
        if (commas == 0) first_arg += t.text;
      }
      dispatch.targeted = tok.text == "invoke_on" || commas >= 2;
      if (dispatch.targeted) dispatch.shard_key = first_arg;
      for (const Body& b : bodies.bodies) {
        if (b.lambda && b.parent == body.id && b.open > open &&
            b.open < close) {
          dispatch.lambda_bodies.push_back(b.id);
        }
      }
      if (!dispatch.lambda_bodies.empty()) {
        facts->dispatches.push_back(std::move(dispatch));
      }
    }

    // Writes to shared-looking state.
    WriteFact::Kind kind;
    if (!called && write_target(toks, i, *facts, &kind) &&
        is_write_shape(toks, i)) {
      facts->writes.push_back(
          {body.id, kind, tok.text, tok.line, walker.any_active()});
    }
  }
}

}  // namespace

FileFacts collect_facts(const LexedFile& lex, const BodyIndex& bodies,
                        const LexedFile* paired_header) {
  FileFacts facts;
  harvest_decls(lex.tokens, &facts.decls);
  if (paired_header != nullptr) {
    harvest_decls(paired_header->tokens, &facts.decls);
    harvest_globals(paired_header->tokens, &facts.globals, &facts.atomics);
  }
  harvest_globals(lex.tokens, &facts.globals, &facts.atomics);
  if (paired_header != nullptr) {
    harvest_member_types(paired_header->tokens, &facts.member_types);
  }
  harvest_member_types(lex.tokens, &facts.member_types);
  collect_functions(lex, bodies, &facts);
  for (const Body& body : bodies.bodies) {
    collect_body_facts(lex, bodies, body, &facts);
  }
  return facts;
}

}  // namespace flotilla::analyze
