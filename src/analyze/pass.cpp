#include "analyze/pass.hpp"

#include <cctype>

namespace flotilla::analyze {

const Pass* PassRegistry::find(std::string_view pass_name) const {
  for (const auto& pass : passes_) {
    if (pass->name() == pass_name) return pass.get();
  }
  return nullptr;
}

bool waived(const LexedFile& lex, std::size_t line, const std::string& rule) {
  const auto it = lex.comments.find(line);
  if (it == lex.comments.end()) return false;
  const std::string& text = it->second;
  const std::string tag = "FLOTILLA_LINT_ALLOW(";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return false;
  const std::size_t close = text.find(')', at);
  if (close == std::string::npos) return false;
  const std::string id = text.substr(at + tag.size(), close - at - tag.size());
  if (id != rule && id != "*") return false;
  // The reason is mandatory: require ": <text>" after the closing paren.
  std::size_t reason = close + 1;
  if (reason >= text.size() || text[reason] != ':') return false;
  ++reason;
  while (reason < text.size() &&
         std::isspace(static_cast<unsigned char>(text[reason])) != 0) {
    ++reason;
  }
  return reason < text.size();
}

}  // namespace flotilla::analyze
