// Rule metadata catalog: severity, one-line description, and the
// docs/correctness.md anchor every rule is documented under. Consumed by
// the SARIF writer (per-rule fullDescription/helpUri/defaultConfiguration
// and per-result level) and by the driver's severity gating: kError
// findings fail the run and enter the baseline; kNote findings are an
// inventory — they appear in SARIF (and reports) but never gate.
#pragma once

#include <string>

namespace flotilla::analyze {

enum class Severity { kNote, kWarning, kError };

struct RuleMeta {
  const char* id;
  Severity severity;
  const char* summary;  // SARIF fullDescription.text
  const char* anchor;   // docs/correctness.md#<anchor>
};

// Catalog entry for `id`, nullptr for unknown rules.
const RuleMeta* find_rule_meta(const std::string& id);

// Severity for `id`; unknown rules default to kError (fail closed).
Severity rule_severity(const std::string& id);

// SARIF level string: "note" | "warning" | "error".
const char* severity_name(Severity severity);

}  // namespace flotilla::analyze
