// PRRTE DVM backend (§5 of the paper, and the RP+PRRTE study it cites).
//
// The PMIx Reference RunTime Environment runs a persistent Distributed
// Virtual Machine: one prte daemon per node, started once, after which
// tasks launch with minimal per-task overhead. Crucially, "PRRTE does not
// include an internal scheduler but instead delegates coordination and
// scheduling to external systems" — so this backend reports
// self_scheduling() == false and only accepts *preplaced* requests: the RP
// agent's scheduler decides placement, and the DVM merely spawns.
//
// This is the design point where "RP assumes full control over scheduling
// and coordination" (the paper's description of the Dragon pairing, which
// PRRTE pioneered); it exercises the agent-side scheduling path that the
// self-scheduling backends bypass.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/tracer.hpp"
#include "platform/backend.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"

namespace flotilla::prrte {

class DvmBackend : public platform::TaskBackend {
 public:
  DvmBackend(sim::Engine& engine, platform::Cluster& cluster,
             platform::NodeRange span, const platform::PrrteCalibration& cal,
             std::uint64_t seed);
  ~DvmBackend() override;

  const std::string& name() const override { return name_; }
  bool accepts(platform::TaskModality modality) const override {
    return modality == platform::TaskModality::kExecutable;
  }
  bool self_scheduling() const override { return false; }
  platform::NodeRange span() const override { return span_; }
  void bootstrap(ReadyHandler ready) override;
  void submit(platform::LaunchRequest request) override;
  void on_task_start(StartHandler handler) override {
    start_handler_ = std::move(handler);
  }
  void on_task_complete(CompletionHandler handler) override {
    completion_handler_ = std::move(handler);
  }
  void shutdown() override;
  bool healthy() const override { return healthy_; }
  std::size_t inflight() const override { return inflight_; }
  // Quiesce includes the active-task table (the agent holds the
  // placements, the DVM the spawned processes; both must drain together).
  bool quiescent() const override { return inflight_ == 0 && active_.empty(); }

  sim::Time bootstrap_duration() const { return bootstrap_duration_; }
  std::uint64_t completed() const { return completed_; }

  // Adds the spawn counter and active-task table size: the restored DVM
  // must have spawned exactly the journaled amount of work.
  std::string restore_summary() const override {
    return TaskBackend::restore_summary() +
           "|completed=" + std::to_string(completed_) +
           "|active=" + std::to_string(active_.size());
  }

  // Fault injection: the DVM head daemon dies.
  void crash(const std::string& reason = "dvm lost");

  // Attaches structured tracing: the DVM wireup bootstrap span. Placement
  // is traced agent-side (self_scheduling() == false).
  void set_trace(obs::TraceHandle handle) override { obs_trace_ = handle; }

 private:
  struct Task;
  void accept(platform::LaunchRequest request);  // shard-local submit half
  void crash_on_shard(const std::string& reason);
  void launch(std::shared_ptr<Task> task);
  void finish(std::shared_ptr<Task> task, bool success, std::string error);

  sim::Engine& engine_;
  // Engine shard the head daemon and per-node prted chains run on
  // (docs/sharding.md).
  sim::ShardId shard_ = sim::kControlShard;
  platform::Cluster& cluster_;
  platform::NodeRange span_;
  platform::PrrteCalibration cal_;
  sim::RngStream rng_;
  sim::Server head_;  // head daemon: serialized spawn-request handling
  std::vector<std::unique_ptr<sim::Server>> daemons_;  // per-node prted
  std::unordered_map<std::string, std::shared_ptr<Task>> active_;
  obs::TraceHandle obs_trace_;
  std::string name_ = "prrte";
  bool ready_ = false;
  bool healthy_ = false;
  std::size_t inflight_ = 0;
  std::uint64_t completed_ = 0;
  sim::Time bootstrap_requested_ = 0.0;
  sim::Time bootstrap_duration_ = 0.0;
  StartHandler start_handler_;
  CompletionHandler completion_handler_;
};

}  // namespace flotilla::prrte
