#include "prrte/dvm_backend.hpp"

#include "util/error.hpp"
#include "util/ordered.hpp"

namespace flotilla::prrte {

struct DvmBackend::Task {
  platform::LaunchRequest request;
  sim::Time started = 0.0;
};

DvmBackend::DvmBackend(sim::Engine& engine, platform::Cluster& cluster,
                       platform::NodeRange span,
                       const platform::PrrteCalibration& cal,
                       std::uint64_t seed)
    : engine_(engine),
      cluster_(cluster),
      span_(span),
      cal_(cal),
      rng_(seed, "prrte"),
      head_(engine, 1) {
  FLOT_CHECK(span.count >= 1, "dvm needs at least one node");
  shard_ = engine.affinity(name_);
  daemons_.reserve(static_cast<std::size_t>(span.count));
  for (int i = 0; i < span.count; ++i) {
    daemons_.push_back(std::make_unique<sim::Server>(engine, 1));
  }
}

DvmBackend::~DvmBackend() = default;

void DvmBackend::bootstrap(ReadyHandler ready) {
  FLOT_CHECK(!ready_, "dvm bootstrapped twice");
  bootstrap_requested_ = engine_.now();
  obs_trace_.begin(obs::SpanType::kBootstrap, name_, "",
                   static_cast<double>(span_.count));
  // DVM startup: the prte daemons wire up once; afterwards per-task launch
  // is cheap (the DVM's whole point).
  const double duration = rng_.lognormal_mean_cv(
      cal_.dvm_startup_base + cal_.dvm_startup_per_node * span_.count,
      cal_.jitter_cv / 2);
  // Targeted at this backend's shard so the head-daemon relay and the
  // per-node spawn chains all stay shard-local.
  engine_.in(shard_, duration, [this, ready = std::move(ready)] {
    ready_ = true;
    healthy_ = true;
    bootstrap_duration_ = engine_.now() - bootstrap_requested_;
    obs_trace_.end(obs::SpanType::kBootstrap, name_, "");
    ready(true, "");
  });
}

void DvmBackend::submit(platform::LaunchRequest request) {
  // Submissions arrive on the agent's control shard; the head daemon and
  // rank spawns run on this backend's shard. Direct call when single-shard.
  engine_.invoke_on(shard_, [this, request = std::move(request)]() mutable {
    accept(std::move(request));
  });
}

void DvmBackend::accept(platform::LaunchRequest request) {
  FLOT_CHECK(ready_, "submit to dvm before bootstrap");
  FLOT_CHECK(request.preplaced,
             "prrte has no scheduler: requests must be preplaced by the "
             "agent (task ",
             request.id, ")");
  ++inflight_;
  auto task = std::make_shared<Task>();
  task->request = std::move(request);
  if (!healthy_) {
    finish(std::move(task), false, "dvm down");
    return;
  }
  // The head daemon relays the spawn request (cheap, serialized), then the
  // per-node daemons fork the ranks in parallel.
  head_.submit(rng_.lognormal_mean_cv(cal_.head_relay_cost, cal_.jitter_cv),
               [this, task = std::move(task)]() mutable {
                 if (!healthy_) {
                   finish(std::move(task), false, "dvm down");
                   return;
                 }
                 launch(std::move(task));
               });
}

void DvmBackend::launch(std::shared_ptr<Task> task) {
  const auto& placement = task->request.placement;
  auto remaining = std::make_shared<int>(static_cast<int>(
      placement.slices.empty() ? 1 : placement.slices.size()));
  double wireup = 0.0;
  if (placement.slices.size() > 1) {
    wireup = rng_.lognormal_mean_cv(
        cal_.mpi_wireup_base +
            cal_.mpi_wireup_per_node *
                static_cast<double>(placement.slices.size()),
        cal_.jitter_cv);
  }
  auto on_rank_up = [this, task, wireup, remaining] {
    if (--*remaining > 0) return;
    engine_.in(wireup, [this, task] {
      if (active_.count(task->request.id) == 0) return;  // crashed
      task->started = engine_.now();
      if (start_handler_) start_handler_(task->request.id);
      const sim::Time duration = task->request.duration;
      engine_.in(duration, [this, task] {
        if (active_.erase(task->request.id) == 0) return;
        const bool failed =
            task->request.fail_probability > 0.0 &&
            rng_.bernoulli(task->request.fail_probability);
        finish(task, !failed, failed ? "task exited non-zero" : "");
      });
    });
  };
  active_.emplace(task->request.id, task);
  if (placement.slices.empty()) {
    daemons_.front()->submit(
        rng_.lognormal_mean_cv(cal_.daemon_spawn_cost, cal_.jitter_cv),
        on_rank_up);
    return;
  }
  for (const auto& slice : placement.slices) {
    const auto local = static_cast<std::size_t>(slice.node - span_.first);
    FLOT_CHECK(local < daemons_.size(), "slice outside dvm span: node ",
               slice.node);
    daemons_[local]->submit(
        rng_.lognormal_mean_cv(cal_.daemon_spawn_cost, cal_.jitter_cv),
        on_rank_up);
  }
}

void DvmBackend::finish(std::shared_ptr<Task> task, bool success,
                        std::string error) {
  FLOT_CHECK(inflight_ > 0, "finish without inflight task");
  --inflight_;
  if (success) ++completed_;
  platform::LaunchOutcome outcome;
  outcome.id = task->request.id;
  outcome.success = success;
  outcome.error = std::move(error);
  outcome.started = task->started;
  outcome.finished = engine_.now();
  if (completion_handler_) completion_handler_(outcome);
}

void DvmBackend::crash(const std::string& reason) {
  engine_.invoke_on(shard_, [this, reason] { crash_on_shard(reason); });
}

void DvmBackend::crash_on_shard(const std::string& reason) {
  if (!healthy_) return;
  healthy_ = false;
  auto victims = std::move(active_);
  active_.clear();
  // Sorted so the failure-event sequence is reproducible across runs.
  for (const auto& id : util::sorted_keys(victims)) {
    finish(victims.at(id), false, reason);
  }
}

void DvmBackend::shutdown() {
  if (healthy_) crash("backend shut down");
  ready_ = false;
}

}  // namespace flotilla::prrte
