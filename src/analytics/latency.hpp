// Latency histogram with percentile queries.
//
// Log-spaced buckets over [10 us, ~30 h] of virtual time — constant memory
// regardless of sample count, ~2.3% relative bucket resolution. Backs the
// streaming/inference latency characterization (§2's "bursts of
// high-throughput, concurrent inference tasks" need turnaround latency,
// not just throughput).
#pragma once

#include <array>
#include <cstdint>

namespace flotilla::analytics {

class LatencyHistogram {
 public:
  void record(double seconds);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Value at quantile q in [0, 1], interpolated within the bucket.
  // Returns 0 for an empty histogram.
  double percentile(double q) const;

 private:
  static constexpr double kFloor = 1e-5;   // bucket 0 lower bound [s]
  static constexpr double kGrowth = 1.1;   // per-bucket growth factor
  static constexpr int kBuckets = 220;     // 1e-5 * 1.1^220 ~ 1.3e4 s

  static int bucket_of(double seconds);
  static double bucket_lower(int bucket);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace flotilla::analytics
