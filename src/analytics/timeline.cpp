#include "analytics/timeline.hpp"

#include <ostream>

#include "util/error.hpp"

namespace flotilla::analytics {

Timeline::Timeline(sim::Engine& engine, const RunMetrics& metrics,
                   sim::Time period)
    : engine_(engine), metrics_(metrics), period_(period) {
  FLOT_CHECK(period > 0.0, "timeline period must be positive");
}

void Timeline::start(std::function<bool()> keep_going) {
  FLOT_CHECK(!started_, "timeline started twice");
  started_ = true;
  keep_going_ = std::move(keep_going);
  tick();
}

void Timeline::tick() {
  if (stopped_) return;
  TimelineSample sample;
  sample.time = engine_.now();
  sample.tasks_running = metrics_.concurrency().value();
  sample.cores_busy = metrics_.cores_busy_value();
  sample.gpus_busy = metrics_.gpus_busy_value();
  sample.launches_total = metrics_.launch_series().total();
  samples_.push_back(sample);
  if (keep_going_ && !keep_going_()) return;
  engine_.in(period_, [this] { tick(); });
}

std::vector<double> Timeline::running_series() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.tasks_running);
  return out;
}

std::vector<double> Timeline::launch_rate_series() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  std::uint64_t prev = 0;
  for (const auto& s : samples_) {
    out.push_back(static_cast<double>(s.launches_total - prev) / period_);
    prev = s.launches_total;
  }
  return out;
}

void Timeline::write_csv(std::ostream& os) const {
  os << "time,tasks_running,cores_busy,gpus_busy,launches_total\n";
  for (const auto& s : samples_) {
    os << s.time << ',' << s.tasks_running << ',' << s.cores_busy << ','
       << s.gpus_busy << ',' << s.launches_total << '\n';
  }
}

std::vector<StepStats> step_report(const Timeline& timeline,
                                   sim::Time step_duration) {
  FLOT_CHECK(step_duration > 0.0, "step duration must be positive");
  std::vector<StepStats> steps;
  const auto& samples = timeline.samples();
  if (samples.empty()) return steps;
  const sim::Time t0 = samples.front().time;
  std::uint64_t launches_before = samples.front().launches_total;
  StepStats current;
  current.begin = t0;
  current.end = t0 + step_duration;
  int n = 0;
  auto flush = [&](std::uint64_t launches_now) {
    if (n > 0) {
      current.mean_tasks_running /= n;
      current.mean_cores_busy /= n;
      current.mean_gpus_busy /= n;
    }
    current.launches = launches_now - launches_before;
    launches_before = launches_now;
    steps.push_back(current);
  };
  std::uint64_t last_total = launches_before;
  for (const auto& sample : samples) {
    while (sample.time >= current.end) {
      flush(last_total);
      ++current.step;
      current.begin = current.end;
      current.end += step_duration;
      current.mean_tasks_running = current.mean_cores_busy =
          current.mean_gpus_busy = 0.0;
      n = 0;
    }
    current.mean_tasks_running += sample.tasks_running;
    current.mean_cores_busy += sample.cores_busy;
    current.mean_gpus_busy += sample.gpus_busy;
    last_total = sample.launches_total;
    ++n;
  }
  flush(last_total);
  return steps;
}

}  // namespace flotilla::analytics
