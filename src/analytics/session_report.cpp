#include "analytics/session_report.hpp"

#include <iomanip>
#include <ostream>

namespace flotilla::analytics {

namespace {

using core::TaskState;

// Returns the first entry time of any of `states`, or false.
bool first_of(const core::Task& task,
              std::initializer_list<TaskState> states, sim::Time& out) {
  for (const auto state : states) {
    if (task.state_time(state, out)) return true;
  }
  return false;
}

}  // namespace

PhaseStats& SessionReport::phase(const std::string& name) {
  for (auto& p : phases_) {
    if (p.name == name) return p;
  }
  phases_.push_back(PhaseStats{name, {}});
  return phases_.back();
}

void SessionReport::add(const core::Task& task) {
  if (!core::is_final(task.state())) return;
  ++tasks_;
  if (task.state() != TaskState::kDone) ++failed_;

  sim::Time t_submit = 0, t_final = 0;
  if (!task.state_time(TaskState::kTmgrScheduling, t_submit)) return;
  if (!first_of(task,
                {TaskState::kDone, TaskState::kFailed, TaskState::kCanceled},
                t_final)) {
    return;
  }

  struct Edge {
    const char* name;
    TaskState from;
    std::initializer_list<TaskState> to;
  };
  const Edge edges[] = {
      {"tmgr_intake",
       TaskState::kTmgrScheduling,
       {TaskState::kStagingInput, TaskState::kAgentScheduling}},
      {"staging_input",
       TaskState::kStagingInput,
       {TaskState::kAgentScheduling}},
      {"agent_scheduling",
       TaskState::kAgentScheduling,
       {TaskState::kExecutorPending}},
      {"executor_submit",
       TaskState::kExecutorPending,
       {TaskState::kRunning}},
      {"execution",
       TaskState::kRunning,
       {TaskState::kStagingOutput, TaskState::kDone, TaskState::kFailed,
        TaskState::kCanceled}},
      {"staging_output", TaskState::kStagingOutput, {TaskState::kDone}},
  };

  double exec_time = 0.0;
  double accounted = 0.0;
  for (const auto& edge : edges) {
    sim::Time t_from = 0, t_to = 0;
    if (!task.state_time(edge.from, t_from)) continue;
    if (!first_of(task, edge.to, t_to)) continue;
    if (t_to < t_from) continue;  // retries can reorder first-entry times
    phase(edge.name).dwell.add(t_to - t_from);
    accounted += t_to - t_from;
    if (std::string_view(edge.name) == "execution") exec_time = t_to - t_from;
  }
  execution_.add(exec_time);
  overhead_.add(std::max(0.0, (t_final - t_submit) - exec_time));
  (void)accounted;
}

double SessionReport::mean_overhead() const { return overhead_.mean(); }
double SessionReport::mean_execution() const { return execution_.mean(); }

double SessionReport::overhead_fraction() const {
  const double total = overhead_.mean() + execution_.mean();
  return total > 0.0 ? overhead_.mean() / total : 0.0;
}

void SessionReport::print(std::ostream& os) const {
  os << "session report: " << tasks_ << " tasks (" << failed_
     << " failed)\n";
  os << "  " << std::left << std::setw(18) << "phase" << std::right
     << std::setw(12) << "mean [s]" << std::setw(12) << "max [s]"
     << std::setw(10) << "samples" << "\n";
  for (const auto& p : phases_) {
    os << "  " << std::left << std::setw(18) << p.name << std::right
       << std::fixed << std::setprecision(4) << std::setw(12)
       << p.dwell.mean() << std::setw(12) << p.dwell.max() << std::setw(10)
       << p.dwell.count() << "\n";
  }
  os << "  mean middleware overhead per task: " << std::setprecision(4)
     << mean_overhead() << " s (" << std::setprecision(2)
     << 100.0 * overhead_fraction() << "% of task lifetime)\n";
}

void SessionReport::write_csv(std::ostream& os) const {
  os << "phase,mean_s,max_s,samples\n";
  for (const auto& p : phases_) {
    os << p.name << ',' << p.dwell.mean() << ',' << p.dwell.max() << ','
       << p.dwell.count() << '\n';
  }
}

}  // namespace flotilla::analytics
