#include "analytics/metrics.hpp"

#include <algorithm>

namespace flotilla::analytics {

void RunMetrics::on_submit(sim::Time t) {
  first_submit_ = std::min(first_submit_, t);
}

void RunMetrics::on_launch(sim::Time t, std::int64_t cores,
                           std::int64_t gpus) {
  if (first_launch_ == sim::kInfiniteTime) {
    // Anchor the busy integrals at the first launch so idle bootstrap time
    // does not dilute utilization (matches the paper's measurement span).
    cores_busy_.set(t, 0.0);
    gpus_busy_.set(t, 0.0);
    tasks_running_.set(t, 0.0);
  }
  first_launch_ = std::min(first_launch_, t);
  launches_.record(t);
  cores_busy_.add(t, static_cast<double>(cores));
  gpus_busy_.add(t, static_cast<double>(gpus));
  tasks_running_.add(t, 1.0);
}

void RunMetrics::on_attempt_end(sim::Time t, std::int64_t cores,
                                std::int64_t gpus) {
  last_completion_ = std::max(last_completion_, t);
  completions_.record(t);
  cores_busy_.add(t, -static_cast<double>(cores));
  gpus_busy_.add(t, -static_cast<double>(gpus));
  tasks_running_.add(t, -1.0);
}

void RunMetrics::on_final(sim::Time t, bool success) {
  last_completion_ = std::max(last_completion_, t);
  success ? ++done_ : ++failed_;
}

double RunMetrics::core_utilization(std::int64_t total_cores) const {
  if (first_launch_ == sim::kInfiniteTime ||
      last_completion_ <= first_launch_ || total_cores <= 0) {
    return 0.0;
  }
  const double span = last_completion_ - first_launch_;
  return cores_busy_.integral(last_completion_) /
         (static_cast<double>(total_cores) * span);
}

double RunMetrics::gpu_utilization(std::int64_t total_gpus) const {
  if (first_launch_ == sim::kInfiniteTime ||
      last_completion_ <= first_launch_ || total_gpus <= 0) {
    return 0.0;
  }
  const double span = last_completion_ - first_launch_;
  return gpus_busy_.integral(last_completion_) /
         (static_cast<double>(total_gpus) * span);
}

double RunMetrics::makespan() const {
  if (first_submit_ == sim::kInfiniteTime) return 0.0;
  return std::max(0.0, last_completion_ - first_submit_);
}

}  // namespace flotilla::analytics
