// Session report: RADICAL-Analytics-style post-mortem breakdown.
//
// §3.2.1: "Through the RADICAL-Analytics profiling capabilities, events
// such as task submission timestamps ... are recorded, supporting the
// fine-grained characterization of workflow performance." This module
// turns the recorded task lifecycles into the classic RA breakdown: time
// per pipeline phase, middleware overhead vs payload execution, and a
// formatted report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "sim/stats.hpp"

namespace flotilla::analytics {

// Dwell-time statistics for one pipeline phase, aggregated over tasks.
struct PhaseStats {
  std::string name;
  sim::Tally dwell;  // seconds spent in the phase (first-entry based)
};

class SessionReport {
 public:
  // Ingests one finished task's lifecycle. Tasks that never reached a
  // final state are skipped.
  void add(const core::Task& task);

  const std::vector<PhaseStats>& phases() const { return phases_; }

  std::size_t tasks() const { return tasks_; }
  std::size_t failed() const { return failed_; }

  // Mean middleware overhead per task: everything before/after the payload
  // (intake, staging, scheduling, executor submission, collection).
  double mean_overhead() const;
  // Mean payload execution time per task.
  double mean_execution() const;
  // overhead / (overhead + execution); the paper's "runtime overhead"
  // metric normalized per task.
  double overhead_fraction() const;

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  PhaseStats& phase(const std::string& name);

  std::vector<PhaseStats> phases_;
  sim::Tally overhead_;
  sim::Tally execution_;
  std::size_t tasks_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace flotilla::analytics
