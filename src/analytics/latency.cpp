#include "analytics/latency.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace flotilla::analytics {

int LatencyHistogram::bucket_of(double seconds) {
  if (seconds <= kFloor) return 0;
  const int bucket =
      static_cast<int>(std::log(seconds / kFloor) / std::log(kGrowth));
  return std::clamp(bucket, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_lower(int bucket) {
  return kFloor * std::pow(kGrowth, bucket);
}

void LatencyHistogram::record(double seconds) {
  FLOT_CHECK(seconds >= 0.0, "negative latency ", seconds);
  ++buckets_[static_cast<std::size_t>(bucket_of(seconds))];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

double LatencyHistogram::percentile(double q) const {
  FLOT_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const auto in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Linear interpolation within the bucket.
      const double frac =
          in_bucket ? (target - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket)
                    : 0.0;
      const double lo = bucket_lower(b);
      const double hi = bucket_lower(b + 1);
      const double value = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      return std::clamp(value, min_, max_);
    }
    seen += in_bucket;
  }
  return max_;
}

}  // namespace flotilla::analytics
