// Run-level metrics, maintained online as the profiler observes task state
// transitions. These implement the paper's three core metrics (§4):
//
//  - throughput: task launch events per second. `peak` = max 1 s bin,
//    `average` = mean over nonzero bins (the paper's avg-bars convention),
//    `window` = total / (last launch - first launch).
//  - resource utilization: busy core(GPU)-seconds over allocated capacity
//    across the span from first launch to last completion.
//  - makespan: first submission to last completion.
#pragma once

#include <cstdint>

#include "sim/stats.hpp"

namespace flotilla::analytics {

class RunMetrics {
 public:
  explicit RunMetrics(sim::Time bin_width = 1.0)
      : launches_(bin_width), completions_(bin_width) {}

  void on_submit(sim::Time t);
  // An execution attempt started on `cores`/`gpus`.
  void on_launch(sim::Time t, std::int64_t cores, std::int64_t gpus);
  // A *launched* attempt ended (successfully or not); releases the busy
  // accounting taken by on_launch. Retried tasks get multiple
  // launch/attempt-end pairs.
  void on_attempt_end(sim::Time t, std::int64_t cores, std::int64_t gpus);
  // The task reached a final state.
  void on_final(sim::Time t, bool success);
  void on_retry() { ++retried_; }

  // --- throughput ---
  double peak_throughput() const { return launches_.peak_rate(); }
  double avg_throughput() const { return launches_.mean_nonzero_rate(); }
  double window_throughput() const { return launches_.window_rate(); }
  const sim::RateSeries& launch_series() const { return launches_; }
  const sim::RateSeries& completion_series() const { return completions_; }

  // --- utilization ---
  // Fraction of `total` capacity busy between first launch and last
  // completion.
  double core_utilization(std::int64_t total_cores) const;
  double gpu_utilization(std::int64_t total_gpus) const;

  // --- concurrency ---
  double peak_concurrency() const { return tasks_running_.max_value(); }
  const sim::TimeWeighted& concurrency() const { return tasks_running_; }
  double cores_busy_value() const { return cores_busy_.value(); }
  double gpus_busy_value() const { return gpus_busy_.value(); }

  // --- counters / spans ---
  std::uint64_t tasks_done() const { return done_; }
  std::uint64_t tasks_failed() const { return failed_; }
  std::uint64_t tasks_retried() const { return retried_; }
  sim::Time first_submit() const { return first_submit_; }
  sim::Time first_launch() const { return first_launch_; }
  sim::Time last_completion() const { return last_completion_; }
  double makespan() const;

 private:
  sim::RateSeries launches_;
  sim::RateSeries completions_;
  sim::TimeWeighted cores_busy_;
  sim::TimeWeighted gpus_busy_;
  sim::TimeWeighted tasks_running_;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retried_ = 0;
  sim::Time first_submit_ = sim::kInfiniteTime;
  sim::Time first_launch_ = sim::kInfiniteTime;
  sim::Time last_completion_ = 0.0;
};

}  // namespace flotilla::analytics
