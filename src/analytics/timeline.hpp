// Timeline sampler: periodic snapshots of run metrics over virtual time.
//
// Backs the Fig 4/Fig 8-style time-series plots (tasks running, cores
// busy, launch rate) without per-task tracing: a self-rescheduling sampler
// reads the live RunMetrics every `period` until stopped or idle.
#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "analytics/metrics.hpp"
#include "sim/engine.hpp"

namespace flotilla::analytics {

struct TimelineSample {
  sim::Time time = 0.0;
  double tasks_running = 0.0;
  double cores_busy = 0.0;
  double gpus_busy = 0.0;
  std::uint64_t launches_total = 0;
};

class Timeline {
 public:
  // Samples `metrics` every `period` virtual seconds, starting now.
  // `keep_going` stops the sampler when it returns false (e.g.
  // [&]{ return !tmgr.idle(); }); without one the sampler keeps the
  // engine alive until stop() is called.
  Timeline(sim::Engine& engine, const RunMetrics& metrics,
           sim::Time period = 60.0);

  void start(std::function<bool()> keep_going = {});
  void stop() { stopped_ = true; }

  const std::vector<TimelineSample>& samples() const { return samples_; }

  // Convenience extractors for plotting.
  std::vector<double> running_series() const;
  std::vector<double> launch_rate_series() const;  // per-period rates

  void write_csv(std::ostream& os) const;

 private:
  void tick();

  sim::Engine& engine_;
  const RunMetrics& metrics_;
  sim::Time period_;
  std::function<bool()> keep_going_;
  std::vector<TimelineSample> samples_;
  bool started_ = false;
  bool stopped_ = false;
};

// Windowed summary over a timeline: chunks the samples into fixed steps
// (the paper reports IMPECCABLE utilization "during the first four 12-hour
// steps") and reports per-step means.
struct StepStats {
  int step = 0;
  sim::Time begin = 0.0;
  sim::Time end = 0.0;
  double mean_tasks_running = 0.0;
  double mean_cores_busy = 0.0;
  double mean_gpus_busy = 0.0;
  std::uint64_t launches = 0;
};

std::vector<StepStats> step_report(const Timeline& timeline,
                                   sim::Time step_duration);

}  // namespace flotilla::analytics
