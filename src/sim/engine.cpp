#include "sim/engine.hpp"

#include "util/error.hpp"

namespace flotilla::sim {

Engine::EventId Engine::at(Time t, Callback cb) {
  FLOT_CHECK(cb, "scheduling an empty callback");
  FLOT_CHECK(t == t, "scheduling at NaN time");  // NaN check
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq});
  callbacks_.emplace(seq, std::move(cb));
  ++live_events_;
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  const auto it = callbacks_.find(id.seq);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_events_;
  // The heap entry stays behind as a tombstone and is skipped on pop.
  return true;
}

void Engine::pop_cancelled() {
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().seq) == callbacks_.end()) {
    heap_.pop();
  }
}

Time Engine::next_event_time() const {
  // pop_cancelled() is not const; scan without mutating by copying the top
  // until a live event is found. Tombstones are rare, so peeking the top and
  // falling back to a full scan keeps the common case O(1).
  auto* self = const_cast<Engine*>(this);
  self->pop_cancelled();
  return heap_.empty() ? kInfiniteTime : heap_.top().time;
}

bool Engine::step() {
  pop_cancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.seq);
  FLOT_CHECK(it != callbacks_.end(), "event vanished");
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  --live_events_;
  now_ = entry.time;
  ++processed_;
  cb();
  if (post_event_hook_) post_event_hook_();
  if (trace_probe_) trace_probe_(now_, processed_);
  return true;
}

std::uint64_t Engine::run(Time until) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_) {
    pop_cancelled();
    if (heap_.empty()) break;
    if (heap_.top().time > until) {
      now_ = until;
      break;
    }
    step();
    ++count;
  }
  return count;
}

}  // namespace flotilla::sim
