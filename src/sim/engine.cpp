#include "sim/engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace flotilla::sim {

thread_local Engine::ExecContext Engine::tls_ctx_;

Engine::Engine() : Engine(Config{}) {}

Engine::Engine(Config config) : config_(config) {
  FLOT_CHECK(config_.shards >= 1, "engine needs at least one shard");
  FLOT_CHECK(config_.threads >= 1, "engine needs at least one thread");
  FLOT_CHECK(config_.lookahead >= 0.0, "negative lookahead window");
  shards_.resize(static_cast<std::size_t>(config_.shards));
  for (Shard& shard : shards_) {
    shard.outbox.resize(static_cast<std::size_t>(config_.shards));
  }
}

Engine::~Engine() {
  {
    std::lock_guard lock(pool_mutex_);
    pool_shutdown_ = true;
  }
  round_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

const Engine::ExecContext* Engine::context() const {
  return tls_ctx_.engine == this ? &tls_ctx_ : nullptr;
}

Time Engine::now() const {
  const ExecContext* ctx = context();
  return ctx != nullptr ? ctx->now : now_;
}

ShardId Engine::current_shard() const {
  const ExecContext* ctx = context();
  return ctx != nullptr ? ctx->shard : kControlShard;
}

ShardId Engine::affinity(std::string_view key) const {
  if (config_.shards <= 1) return kControlShard;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return 1 + static_cast<ShardId>(
                 h % static_cast<std::uint64_t>(config_.shards - 1));
}

Engine::EventId Engine::at(Time t, Callback cb) {
  return at(current_shard(), t, std::move(cb));
}

Engine::EventId Engine::at(ShardId shard, Time t, Callback cb) {
  FLOT_CHECK(cb, "scheduling an empty callback");
  FLOT_CHECK(t == t, "scheduling at NaN time");  // NaN check
  FLOT_CHECK(shard >= 0 && shard < config_.shards, "shard ", shard,
             " out of range (", config_.shards, " shards)");
  const ExecContext* ctx = context();
  if (ctx != nullptr && ctx->shard != shard) {
    // Cross-shard from inside an event: mailbox send, merged at the
    // round barrier (an event can never fire in the sender's past).
    if (t < ctx->now) t = ctx->now;
    return enqueue_send(shard, t, std::move(cb));
  }
  const Time floor = ctx != nullptr ? ctx->now : now_;
  if (t < floor) t = floor;
  Shard& sh = shards_[static_cast<std::size_t>(shard)];
  const std::uint64_t seq = sh.next_seq++;
  sh.calendar.push(t, seq, std::move(cb));
  return EventId{seq, shard};
}

Engine::EventId Engine::enqueue_send(ShardId to, Time t, Callback cb) {
  Shard& src = shards_[static_cast<std::size_t>(tls_ctx_.shard)];
  std::uint64_t id = 0;
  {
    std::lock_guard lock(send_mutex_);
    id = kSendBit | next_send_id_++;
    live_sends_.emplace(id, 1);
  }
  src.outbox[static_cast<std::size_t>(to)].push_back(
      PendingSend{t, id, std::move(cb)});
  return EventId{id, to};
}

void Engine::invoke_on(ShardId shard, Callback cb) {
  const ExecContext* ctx = context();
  if (config_.shards == 1 || ctx == nullptr || ctx->shard == shard) {
    // Same shard, single-shard engine, or no event context to hop off:
    // the historical direct-call path, bit-identical to the unsharded
    // engine.
    cb();
    return;
  }
  enqueue_send(shard, ctx->now, std::move(cb));
}

bool Engine::cancel(EventId id) {
  if (id.shard < 0 || id.shard >= config_.shards) return false;
  Shard& sh = shards_[static_cast<std::size_t>(id.shard)];
  if ((id.seq & kSendBit) != 0) {
    {
      std::lock_guard lock(send_mutex_);
      if (live_sends_.erase(id.seq) == 1) return true;  // still in flight
    }
    const auto it = sh.delivered_sends.find(id.seq);
    if (it == sh.delivered_sends.end()) return false;
    const std::uint64_t seq = it->second;
    sh.delivered_sends.erase(it);
    return sh.calendar.cancel(seq);
  }
  return sh.calendar.cancel(id.seq);
}

void Engine::deliver_sends() {
  // Deterministic merge: destination-major, then source shard, then the
  // FIFO order the source issued the sends in. Deliveries clamp to the
  // end of the last opened window, so nothing lands inside a window a
  // shard has already drained past.
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    Shard& dsh = shards_[dst];
    for (std::size_t src = 0; src < shards_.size(); ++src) {
      auto& box = shards_[src].outbox[dst];
      for (PendingSend& send : box) {
        bool live = false;
        {
          std::lock_guard lock(send_mutex_);
          live = live_sends_.erase(send.id) == 1;
        }
        if (!live) continue;  // cancelled in flight
        const Time t = std::max(send.time, watermark_);
        const std::uint64_t seq = dsh.next_seq++;
        dsh.delivered_sends.emplace(send.id, seq);
        dsh.calendar.push(
            t, seq,
            [this, dst, id = send.id, cb = std::move(send.callback)] {
              shards_[dst].delivered_sends.erase(id);
              cb();
            });
      }
      box.clear();
    }
  }
}

Time Engine::min_next_time() {
  Time t = kInfiniteTime;
  for (Shard& shard : shards_) {
    t = std::min(t, shard.calendar.next_time());
  }
  return t;
}

Time Engine::next_event_time() { return min_next_time(); }

bool Engine::empty() const {
  for (const Shard& shard : shards_) {
    if (!shard.calendar.empty()) return false;
  }
  std::lock_guard lock(send_mutex_);
  return live_sends_.empty();
}

std::size_t Engine::pending() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.calendar.live();
  std::lock_guard lock(send_mutex_);
  return n + live_sends_.size();
}

std::uint64_t Engine::processed() const {
  const ExecContext* ctx = context();
  if (ctx != nullptr && config_.threads > 1) {
    // Inside a parallel drain round only the caller's own lane is
    // coherent; other shards' in-round counts commit at the barrier.
    return committed_processed_ +
           shards_[static_cast<std::size_t>(ctx->shard)].round_processed;
  }
  return committed_processed_;
}

void Engine::execute(Shard& shard, ShardId shard_id,
                     EventCalendar::Popped* event) {
  const ExecContext saved = tls_ctx_;
  tls_ctx_ = ExecContext{this, shard_id, event->time};
  shard.local_now = event->time;
  event->callback();
  if (post_event_hook_) post_event_hook_();
  if (trace_probe_) {
    trace_probe_(event->time,
                 committed_processed_ + shard.round_processed);
  }
  tls_ctx_ = saved;
}

// --- single-shard (historical) path --------------------------------------

bool Engine::step() {
  if (config_.shards == 1) {
    Shard& sh = shards_[0];
    EventCalendar::Popped event;
    if (!sh.calendar.pop(&event)) return false;
    now_ = event.time;
    ++committed_processed_;
    ++sh.processed;
    execute(sh, kControlShard, &event);
    return true;
  }
  return advance_one(kInfiniteTime, /*honor_stop=*/false);
}

std::uint64_t Engine::run_single(Time until) {
  Shard& sh = shards_[0];
  std::uint64_t count = 0;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const Time t = sh.calendar.next_time();
    if (t == kInfiniteTime) break;
    if (t > until) {
      now_ = until;
      break;
    }
    step();
    ++count;
  }
  return count;
}

// --- sharded sequential path (threads == 1, and step()) -------------------

bool Engine::advance_one(Time until, bool honor_stop) {
  while (true) {
    if (!round_active_) {
      if (honor_stop && stop_requested_.load(std::memory_order_relaxed)) {
        return false;
      }
      deliver_sends();
      const Time t = min_next_time();
      if (t == kInfiniteTime) return false;
      if (t > until) {
        now_ = until;
        return false;
      }
      round_window_ =
          config_.lookahead > 0.0 ? t + config_.lookahead : t;
      round_window_ = std::min(round_window_, until);
      watermark_ = round_window_;
      round_active_ = true;
      round_cursor_ = 0;
    }
    while (round_cursor_ < config_.shards) {
      Shard& sh = shards_[static_cast<std::size_t>(round_cursor_)];
      if (sh.calendar.next_time() <= round_window_) {
        EventCalendar::Popped event;
        sh.calendar.pop(&event);
        now_ = std::max(now_, event.time);
        ++committed_processed_;
        ++sh.processed;
        execute(sh, round_cursor_, &event);
        return true;
      }
      ++round_cursor_;
    }
    round_active_ = false;
  }
}

std::uint64_t Engine::run_sequential(Time until) {
  std::uint64_t count = 0;
  while (advance_one(until, /*honor_stop=*/true)) ++count;
  return count;
}

// --- sharded parallel path (threads > 1) ----------------------------------

void Engine::ensure_workers() {
  if (!workers_.empty()) return;
  const int n = std::min(config_.threads, config_.shards);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w, n] { worker_loop(w, n); });
  }
}

void Engine::worker_loop(int worker, int stride) {
  std::uint64_t seen_generation = 0;
  while (true) {
    Time window = 0.0;
    {
      std::unique_lock lock(pool_mutex_);
      round_cv_.wait(lock, [&] {
        return pool_shutdown_ || round_generation_ != seen_generation;
      });
      if (pool_shutdown_) return;
      seen_generation = round_generation_;
      window = pool_window_;
    }
    for (int s = worker; s < config_.shards; s += stride) {
      drain_shard(s, window);
    }
    {
      std::lock_guard lock(pool_mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void Engine::drain_shard(ShardId shard_id, Time window_end) {
  Shard& sh = shards_[static_cast<std::size_t>(shard_id)];
  while (sh.calendar.next_time() <= window_end) {
    EventCalendar::Popped event;
    sh.calendar.pop(&event);
    ++sh.round_processed;
    execute(sh, shard_id, &event);
  }
}

std::uint64_t Engine::run_parallel(Time until) {
  // A sequential round left open by step() finishes on the caller before
  // the pool takes over — rounds never split across execution modes.
  std::uint64_t count = 0;
  while (round_active_) {
    if (!advance_one(until, /*honor_stop=*/true)) return count;
    ++count;
  }
  ensure_workers();
  const int n = static_cast<int>(workers_.size());
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    deliver_sends();
    const Time t = min_next_time();
    if (t == kInfiniteTime) break;
    if (t > until) {
      now_ = until;
      break;
    }
    Time window = config_.lookahead > 0.0 ? t + config_.lookahead : t;
    window = std::min(window, until);
    watermark_ = window;
    {
      std::unique_lock lock(pool_mutex_);
      pool_window_ = window;
      ++round_generation_;
      workers_done_ = 0;
      round_cv_.notify_all();
      done_cv_.wait(lock, [&] { return workers_done_ == n; });
    }
    for (Shard& sh : shards_) {
      count += sh.round_processed;
      committed_processed_ += sh.round_processed;
      sh.processed += sh.round_processed;
      sh.round_processed = 0;
      now_ = std::max(now_, sh.local_now);
    }
  }
  return count;
}

std::uint64_t Engine::run(Time until) {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (config_.shards == 1) return run_single(until);
  if (config_.threads == 1) return run_sequential(until);
  return run_parallel(until);
}

}  // namespace flotilla::sim
