#include "sim/server.hpp"

#include "util/error.hpp"

namespace flotilla::sim {

Server::Server(Engine& engine, int parallelism)
    : engine_(engine), parallelism_(parallelism) {
  FLOT_CHECK(parallelism >= 1, "server parallelism must be >= 1, got ",
             parallelism);
}

void Server::submit(Time service_time, Done done) {
  FLOT_CHECK(service_time >= 0.0, "negative service time ", service_time);
  queue_.push_back(Item{service_time, std::move(done)});
  start_next();
}

void Server::start_next() {
  while (busy_ < parallelism_ && !queue_.empty()) {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    busy_accum_ += item.service_time;
    engine_.in(item.service_time,
               [this, st = item.service_time,
                done = std::move(item.done)]() mutable {
                 finish(st, std::move(done));
               });
  }
}

void Server::finish(Time /*service_time*/, Done done) {
  --busy_;
  ++completed_;
  if (done) done();
  start_next();
}

Time Server::busy_time() const { return busy_accum_; }

}  // namespace flotilla::sim
