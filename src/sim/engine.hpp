// Deterministic discrete-event simulation engine, optionally partitioned
// into shards drained by a small worker pool (docs/sharding.md).
//
// Single-shard mode (the default Config) is the historical engine: one
// calendar ordered by (time, insertion sequence); ties at equal time
// resolve in insertion order, which makes every simulation fully
// deterministic for a given seed — a property the regression tests rely
// on. This path is bit-identical to the pre-sharding engine, so golden
// traces and calibration baselines carry over unchanged.
//
// Sharded mode (Config{shards > 1}) partitions the calendar by event
// affinity: every event belongs to a shard, chosen by the scheduler
// (backend/cluster/node-group affinity via affinity()), and each shard's
// events stay ordered by (time, shard-local sequence). Shards advance in
// conservative lookahead windows: each round drains, per shard, every
// event inside [T, T + lookahead] where T is the global minimum next
// event time. With lookahead == 0 the round degenerates to the
// same-timestamp batch drain — all shards drain exactly the events at T,
// which keeps global virtual time monotone and is the mode the full
// Flotilla stack runs under. Cross-shard scheduling is buffered in
// per-(source, destination) ordered mailboxes during a round and merged
// deterministically (destination-major, then source, then FIFO) at the
// round barrier, clamped to the window end so no delivery can land inside
// a window another shard already drained.
//
// Threads: Config{threads > 1} drains the shards of a round concurrently
// on a persistent worker pool (shard s is owned by worker s % threads).
// Because each calendar has a single owner per round, mailboxes are
// single-writer, and the merge is deterministic, the observable execution
// is byte-identical for any thread count — the shards×threads matrix test
// in tests/sharded_engine_test.cpp asserts exactly that, for the raw
// storm kernel and for the full Flotilla stack. Callbacks that run under
// threads > 1 must confine their writes to shard-local state: every class
// on the shared-state inventory (scripts/run_analyze.sh) carries a
// confinement claim in analyze/confined.txt, and flotilla-analyze's
// conf-* passes machine-check the `verified` ones on every CI run
// (docs/correctness.md#confinement-proofs). That proof is what lets
// core::Session expose engine_threads to the full stack.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/calendar.hpp"

namespace flotilla::sim {

// Shard handle. Shard 0 is the control shard: events scheduled outside
// any event context land there, and the full RP core (agent, task
// manager, session services) is pinned to it.
using ShardId = int;
inline constexpr ShardId kControlShard = 0;

class Engine {
 public:
  using Callback = sim::Callback;

  struct Config {
    int shards = 1;
    // Worker threads draining shards inside run(); clamped to [1, shards].
    int threads = 1;
    // Conservative lookahead window width. 0 selects the same-timestamp
    // batch-drain fallback (global time stays monotone). A positive
    // window requires every cross-shard delay to be >= lookahead for the
    // schedule to be unaffected by the shard count; sub-window sends are
    // clamped to the window end (see docs/sharding.md).
    Time lookahead = 0.0;
  };

  struct EventId {
    std::uint64_t seq = 0;
    ShardId shard = 0;
    friend bool operator==(EventId a, EventId b) {
      return a.seq == b.seq && a.shard == b.shard;
    }
  };

  Engine();
  explicit Engine(Config config);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  int shards() const { return config_.shards; }
  int threads() const { return config_.threads; }
  Time lookahead() const { return config_.lookahead; }

  // Inside an event callback: the time of the executing event (its
  // shard's local clock). Outside: the committed global clock.
  Time now() const;

  // Shard of the executing event, or kControlShard outside callbacks.
  ShardId current_shard() const;

  // Stable affinity for a component key ("flux.0", "dragon.1", ...):
  // FNV-1a over the key onto the worker shards 1..shards-1, so backends
  // spread over shards without any registration-order dependence.
  // Single-shard engines map everything to the control shard.
  ShardId affinity(std::string_view key) const;

  // Schedules `cb` at absolute virtual time `t` (>= now, else clamped to
  // now: an event can never fire in the past) on the current shard.
  EventId at(Time t, Callback cb);

  // Schedules `cb` after `delay` virtual seconds (negative delays clamp
  // to zero) on the current shard.
  EventId in(Time delay, Callback cb) { return at(now() + delay, std::move(cb)); }

  // Shard-targeted scheduling. From outside a callback, or from a
  // callback on the same shard, this inserts directly into the target
  // calendar. From a callback on a *different* shard it becomes a
  // mailbox send: buffered in the per-(source, destination) FIFO and
  // merged at the round barrier, with the delivery time clamped to the
  // current window end. Either way the returned id cancels it.
  EventId at(ShardId shard, Time t, Callback cb);
  EventId in(ShardId shard, Time delay, Callback cb) {
    return at(shard, now() + delay, std::move(cb));
  }

  // Runs `cb` immediately when already on `shard` (or when the engine is
  // single-shard — the historical direct-call path, bit-identical to the
  // unsharded engine); otherwise posts it to `shard` at the current time
  // via the mailbox. The agent uses this to hop backend completion
  // events back onto the control shard.
  void invoke_on(ShardId shard, Callback cb);

  // Cancels a pending event; cancelling an already-fired or unknown event
  // is a harmless no-op and returns false. Cross-shard cancellation is
  // only safe from the coordinator (between rounds) or under threads==1.
  bool cancel(EventId id);

  // Runs until the event queue drains, `until` is reached, or stop() is
  // called. Events scheduled exactly at `until` do fire. Returns the
  // number of events processed by this call.
  std::uint64_t run(Time until = kInfiniteTime);

  // Processes exactly one event (in deterministic global order, also in
  // sharded mode); returns false if the queue is empty. Stepping always
  // executes on the calling thread regardless of Config::threads.
  bool step();

  // Requests that the current run() invocation return early: after the
  // current event in single-shard mode, after the current drain round in
  // sharded mode.
  void stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  bool empty() const;
  std::size_t pending() const;
  std::uint64_t processed() const;

  // Virtual time of the earliest pending event, or kInfiniteTime.
  // Non-const: peeking prunes cancellation tombstones (observable state
  // is unchanged). Undelivered mailbox sends are not visible here; they
  // only exist transiently inside a drain round.
  Time next_event_time();

  // Post-event hook: invoked after every processed event's callback
  // returns, with now() still at the event's time. Single consumer —
  // invariant monitors (src/check) use it to audit the simulation between
  // events. Pass an empty callback to clear. Never fires for events that
  // were cancelled. Under threads > 1 the hook fires on worker threads
  // and must be thread-safe — threaded consumers keep to atomics (the
  // check runner's event-budget counter); order-sensitive consumers like
  // the invariant monitor require threads == 1.
  void set_post_event_hook(Callback hook) { post_event_hook_ = std::move(hook); }

  // Trace probe: like the post-event hook but reserved for the tracing
  // subsystem (src/obs), which samples event-loop progress through it —
  // keeping both consumers independent. Fires after the post-event hook
  // with the cumulative committed processed-event count.
  using TraceProbe = std::function<void(Time now, std::uint64_t processed)>;
  void set_trace_probe(TraceProbe probe) { trace_probe_ = std::move(probe); }

 private:
  // Cross-shard send ids live in a distinct keyspace from calendar
  // sequence numbers so EventId stays a plain pair.
  static constexpr std::uint64_t kSendBit = 1ull << 63;

  struct PendingSend {
    Time time;
    std::uint64_t id;  // kSendBit-tagged registry key
    Callback callback;
  };

  // Cache-line aligned so adjacent shards' hot counters never false-share
  // when different workers drain them concurrently.
  struct alignas(64) Shard {
    EventCalendar calendar;
    std::uint64_t next_seq = 1;
    // Owner-confined during a round; read by the coordinator between
    // rounds (the round barrier publishes them).
    Time local_now = 0.0;
    std::uint64_t processed = 0;
    std::uint64_t round_processed = 0;
    // Outboxes, destination-indexed: sends buffered during a round, in
    // the deterministic order this shard issued them.
    std::vector<std::vector<PendingSend>> outbox;
    // Delivered-send cancellation index: send id -> calendar seq.
    std::unordered_map<std::uint64_t, std::uint64_t> delivered_sends;
  };

  struct ExecContext {  // thread-local active-event frame
    const Engine* engine = nullptr;
    ShardId shard = kControlShard;
    Time now = 0.0;
  };
  static thread_local ExecContext tls_ctx_;
  const ExecContext* context() const;

  void execute(Shard& shard, ShardId shard_id, EventCalendar::Popped* event);
  EventId enqueue_send(ShardId to, Time t, Callback cb);
  void deliver_sends();
  bool advance_one(Time until, bool honor_stop);  // sequential sharded stepper
  std::uint64_t run_single(Time until);
  std::uint64_t run_sequential(Time until);
  std::uint64_t run_parallel(Time until);
  Time min_next_time();
  void ensure_workers();
  void worker_loop(int worker, int stride);
  void drain_shard(ShardId shard_id, Time window_end);

  Config config_;
  Time now_ = 0.0;  // committed global clock (max processed event time)
  std::uint64_t committed_processed_ = 0;
  std::atomic<bool> stop_requested_{false};
  Callback post_event_hook_;
  TraceProbe trace_probe_;
  std::vector<Shard> shards_;

  // Sequential sharded stepping state (threads == 1 / step()).
  bool round_active_ = false;
  ShardId round_cursor_ = 0;
  Time round_window_ = 0.0;
  Time watermark_ = 0.0;  // end of the last opened window; delivery clamp

  // Cross-shard send registry: id -> live. Guarded — the only engine
  // state that two threads may touch in the same instant (cancel vs
  // delivery); everything else is owner-confined per round.
  mutable std::mutex send_mutex_;
  std::uint64_t next_send_id_ = 1;
  std::unordered_map<std::uint64_t, char> live_sends_;

  // Worker pool (lazily started by the first parallel run()).
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable round_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_generation_ = 0;
  int workers_done_ = 0;
  Time pool_window_ = 0.0;
  bool pool_shutdown_ = false;
};

}  // namespace flotilla::sim
