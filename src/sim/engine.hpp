// Deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event queue ordered by
// (time, insertion sequence); ties at equal time resolve in insertion order,
// which makes every simulation fully deterministic for a given seed — a
// property the regression tests rely on.
//
// The engine is single-threaded by design (CP.2: no shared mutable state to
// race on); the real-threaded Dragon function executor lives outside the
// simulation domain.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace flotilla::sim {

using Time = double;  // virtual seconds

inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();

class Engine {
 public:
  using Callback = std::function<void()>;

  struct EventId {
    std::uint64_t seq = 0;
    friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedules `cb` at absolute virtual time `t` (>= now, else clamped to
  // now: an event can never fire in the past).
  EventId at(Time t, Callback cb);

  // Schedules `cb` after `delay` virtual seconds (negative delays clamp
  // to zero).
  EventId in(Time delay, Callback cb) { return at(now_ + delay, std::move(cb)); }

  // Cancels a pending event; cancelling an already-fired or unknown event is
  // a harmless no-op and returns false.
  bool cancel(EventId id);

  // Runs until the event queue drains, `until` is reached, or stop() is
  // called. Events scheduled exactly at `until` do fire. Returns the number
  // of events processed by this call.
  std::uint64_t run(Time until = kInfiniteTime);

  // Processes exactly one event; returns false if the queue is empty.
  bool step();

  // Requests that the current run() invocation return after the event being
  // processed completes.
  void stop() { stop_requested_ = true; }

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }
  std::uint64_t processed() const { return processed_; }

  // Virtual time of the earliest pending event, or kInfiniteTime.
  Time next_event_time() const;

  // Post-event hook: invoked after every processed event's callback
  // returns, with now() still at the event's time. Single consumer —
  // invariant monitors (src/check) use it to audit the simulation between
  // events. Pass an empty callback to clear. Never fires for events that
  // were cancelled.
  void set_post_event_hook(Callback hook) { post_event_hook_ = std::move(hook); }

  // Trace probe: like the post-event hook but reserved for the tracing
  // subsystem (src/obs), which samples event-loop progress through it —
  // keeping both consumers independent. Fires after the post-event hook
  // with the cumulative processed-event count.
  using TraceProbe = std::function<void(Time now, std::uint64_t processed)>;
  void set_trace_probe(TraceProbe probe) { trace_probe_ = std::move(probe); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    // Min-heap by (time, seq).
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void pop_cancelled();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;
  bool stop_requested_ = false;
  Callback post_event_hook_;
  TraceProbe trace_probe_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace flotilla::sim
