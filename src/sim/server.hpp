// Serialized service center (c-server FIFO queue).
//
// Models the control-plane bottlenecks whose queueing behaviour drives every
// throughput result in the paper: slurmctld's step-creation RPC handler,
// a Flux instance's rank-0 broker loop, Dragon's central dispatcher. Work
// items carry their own service time; the center runs `parallelism` of them
// concurrently and the rest wait FIFO.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace flotilla::sim {

class Server {
 public:
  using Done = std::function<void()>;

  Server(Engine& engine, int parallelism = 1);

  // Enqueues a work item that will occupy one server slot for
  // `service_time` virtual seconds, then fire `done`.
  void submit(Time service_time, Done done);

  // Items waiting for a slot (excludes items in service).
  std::size_t backlog() const { return queue_.size(); }
  int in_service() const { return busy_; }
  bool idle() const { return busy_ == 0 && queue_.empty(); }

  // Cumulative observability for overhead accounting.
  std::uint64_t completed() const { return completed_; }
  Time busy_time() const;

 private:
  struct Item {
    Time service_time;
    Done done;
  };

  void start_next();
  void finish(Time service_time, Done done);

  Engine& engine_;
  int parallelism_;
  int busy_ = 0;
  std::uint64_t completed_ = 0;
  Time busy_accum_ = 0.0;
  std::deque<Item> queue_;
};

}  // namespace flotilla::sim
