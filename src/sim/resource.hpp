// Counting resource with FIFO grant order.
//
// Models capacity-limited facilities: the platform-wide concurrent-srun
// ceiling, per-node core pools, dispatcher slots. Waiters are granted
// strictly in arrival order (no skipping), which is how Slurm's step
// admission behaves and what produces the paper's hard 50% utilization
// plateau in Experiment srun.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace flotilla::sim {

class Resource {
 public:
  using Granted = std::function<void()>;

  Resource(Engine& engine, std::int64_t capacity);

  // Requests `amount` units; `granted` fires (via the event queue, never
  // inline) once the units are assigned. Returns a ticket usable with
  // cancel_wait().
  std::uint64_t acquire(std::int64_t amount, Granted granted);

  // Immediately takes `amount` units if available *and* no one is queued
  // ahead; returns false otherwise.
  bool try_acquire(std::int64_t amount);

  // Returns `amount` units and grants as many queued waiters as now fit,
  // in FIFO order.
  void release(std::int64_t amount);

  // Removes a queued (not yet granted) request; returns false if the ticket
  // already fired or is unknown.
  bool cancel_wait(std::uint64_t ticket);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t available() const { return available_; }
  std::int64_t in_use() const { return capacity_ - available_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::uint64_t ticket;
    std::int64_t amount;
    Granted granted;
  };

  void grant_waiters();

  Engine& engine_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::uint64_t next_ticket_ = 1;
  std::deque<Waiter> waiters_;
};

}  // namespace flotilla::sim
