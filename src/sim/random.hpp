// Deterministic per-component random streams.
//
// Each simulation component derives its own stream from (master seed,
// component name), so adding a component or reordering draws in one
// component never perturbs another — essential for reproducible experiment
// sweeps. The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

namespace flotilla::sim {

class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) { reseed(seed); }
  RngStream(std::uint64_t master_seed, std::string_view component) {
    reseed(master_seed ^ hash(component));
  }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Exponential with the given mean (not rate).
  double exponential(double mean);

  // Standard normal via Box–Muller (stateless variant: two draws per call).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Lognormal parameterized by the mean of the *resulting* distribution and
  // the coefficient of variation (sigma of the underlying normal derived
  // from cv). Convenient for service-time jitter: jittered(m, 0.2) has mean
  // m and ~20% relative spread.
  double lognormal_mean_cv(double mean, double cv);

  // True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  static std::uint64_t hash(std::string_view s);

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace flotilla::sim
