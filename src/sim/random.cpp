#include "sim/random.hpp"

namespace flotilla::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t RngStream::hash(std::string_view s) {
  // FNV-1a, then one splitmix64 round for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

void RngStream::reseed(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t RngStream::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double RngStream::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double RngStream::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double RngStream::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
  return mean + stddev * z;
}

double RngStream::lognormal_mean_cv(double mean, double cv) {
  if (mean <= 0.0) return 0.0;
  if (cv <= 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

}  // namespace flotilla::sim
