// Typed FIFO channel between simulation components.
//
// Producers push(); consumers either pop() one item (callback fires once an
// item is available) or drain() with a persistent receiver invoked for every
// item. Deliveries always go through the event queue, never inline, so a
// producer's state is never reentered from consumer code. Models the ZeroMQ
// pipes between RP and the Dragon runtime and the internal component queues
// of the RP agent.
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace flotilla::sim {

template <typename T>
class Channel {
 public:
  using Receiver = std::function<void(T)>;

  explicit Channel(Engine& engine) : engine_(engine) {}

  void push(T item) {
    if (persistent_) {
      deliver(persistent_, std::move(item));
      return;
    }
    if (!consumers_.empty()) {
      Receiver receiver = std::move(consumers_.front());
      consumers_.pop_front();
      deliver(std::move(receiver), std::move(item));
      return;
    }
    items_.push_back(std::move(item));
  }

  // Registers a one-shot consumer for the next item.
  void pop(Receiver receiver) {
    FLOT_CHECK(receiver, "Channel::pop with empty receiver");
    FLOT_CHECK(!persistent_, "Channel::pop on a drained channel");
    if (!items_.empty()) {
      T item = std::move(items_.front());
      items_.pop_front();
      deliver(std::move(receiver), std::move(item));
      return;
    }
    consumers_.push_back(std::move(receiver));
  }

  // Registers a persistent consumer invoked for every current and future
  // item. Mutually exclusive with pop().
  void drain(Receiver receiver) {
    FLOT_CHECK(receiver, "Channel::drain with empty receiver");
    FLOT_CHECK(!persistent_, "Channel already has a persistent consumer");
    FLOT_CHECK(consumers_.empty(),
               "Channel::drain while one-shot consumers are waiting");
    persistent_ = std::move(receiver);
    while (!items_.empty()) {
      T item = std::move(items_.front());
      items_.pop_front();
      deliver(persistent_, std::move(item));
    }
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting_consumers() const { return consumers_.size(); }

 private:
  void deliver(Receiver receiver, T item) {
    engine_.in(0.0, [receiver = std::move(receiver),
                     item = std::move(item)]() mutable {
      receiver(std::move(item));
    });
  }

  Engine& engine_;
  std::deque<T> items_;
  std::deque<Receiver> consumers_;
  Receiver persistent_;
};

}  // namespace flotilla::sim
