// Append-only event trace, the substrate of RP-style profiling.
//
// Every component records (time, component, event, entity, info) tuples;
// analytics derives throughput/utilization/overhead from them post hoc, the
// way RADICAL-Analytics consumes RP profiles. Records are kept in memory and
// can be dumped as CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace flotilla::sim {

struct TraceRecord {
  Time time = 0.0;
  std::string component;  // e.g. "agent.scheduler", "flux.0"
  std::string event;      // e.g. "task_launch", "job_complete"
  std::string entity;     // e.g. "task.000017"
  double value = 0.0;     // optional numeric payload (cores, rc, ...)
};

class Trace {
 public:
  explicit Trace(Engine& engine) : engine_(&engine) {}

  void record(std::string component, std::string event, std::string entity,
              double value = 0.0) {
    records_.push_back(TraceRecord{engine_->now(), std::move(component),
                                   std::move(event), std::move(entity),
                                   value});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  // Records matching the given event name (and optionally component).
  std::vector<TraceRecord> select(const std::string& event,
                                  const std::string& component = "") const;

  // First record time for (entity, event); returns false if absent.
  bool first_time(const std::string& entity, const std::string& event,
                  Time& out) const;

  void write_csv(std::ostream& os) const;

  // One JSON object per line ({"time":..,"comp":..,"event":..,
  // "entity":..,"value":..}) for ingestion by analysis notebooks.
  void write_jsonl(std::ostream& os) const;

 private:
  Engine* engine_;
  std::vector<TraceRecord> records_;
};

}  // namespace flotilla::sim
