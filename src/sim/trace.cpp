#include "sim/trace.hpp"

#include <ostream>

namespace flotilla::sim {

std::vector<TraceRecord> Trace::select(const std::string& event,
                                       const std::string& component) const {
  std::vector<TraceRecord> result;
  for (const auto& r : records_) {
    if (r.event != event) continue;
    if (!component.empty() && r.component != component) continue;
    result.push_back(r);
  }
  return result;
}

bool Trace::first_time(const std::string& entity, const std::string& event,
                       Time& out) const {
  for (const auto& r : records_) {
    if (r.entity == entity && r.event == event) {
      out = r.time;
      return true;
    }
  }
  return false;
}

namespace {

// Minimal JSON string escaping for trace fields (component/event/entity
// names are identifiers; this covers the few characters that could sneak
// in through task names).
void json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

void Trace::write_jsonl(std::ostream& os) const {
  for (const auto& r : records_) {
    os << "{\"time\":" << r.time << ",\"comp\":";
    json_escaped(os, r.component);
    os << ",\"event\":";
    json_escaped(os, r.event);
    os << ",\"entity\":";
    json_escaped(os, r.entity);
    os << ",\"value\":" << r.value << "}\n";
  }
}

void Trace::write_csv(std::ostream& os) const {
  os << "time,component,event,entity,value\n";
  for (const auto& r : records_) {
    os << r.time << ',' << r.component << ',' << r.event << ',' << r.entity
       << ',' << r.value << '\n';
  }
}

}  // namespace flotilla::sim
