// Event storm: a synthetic, shard-confined workload for exercising the
// partitioned engine (docs/sharding.md).
//
// `actors` independent event chains, each pinned to shard (actor % shards),
// step through `steps` events. Every step mixes the actor's running FNV
// hash with the event time and step index, then schedules the next step
// after an exponential inter-event delay drawn from the actor's own
// RngStream. With probability `send_probability` a step also posts a
// cross-actor message (delay >= `min_send_delay`), which mixes the
// sender's identity into the receiver's hash when it fires on the
// receiver's shard.
//
// The construction makes the observable execution invariant under the
// shard count and thread count:
//  * all RNG draws happen on an actor's own sequential chain, so draw
//    order never depends on cross-actor interleaving;
//  * all timestamps are continuous-valued draws, so cross-shard heap ties
//    (the one place per-shard sequence numbers could show through) have
//    probability zero;
//  * every cross-actor delay is at least `min_send_delay`, so as long as
//    the engine lookahead stays <= that floor no delivery is ever clamped
//    to a window end.
// The fingerprint — per-actor hashes folded in actor-id order — is
// therefore byte-identical for any shards x threads combination, which is
// exactly what tests/sharded_engine_test.cpp's matrix asserts and what the
// fuzz harness cross-checks against a sequential reference run.
//
// Actor state is written only by events on the owning actor's shard, so
// the storm is safe (and TSan-clean) under Config::threads > 1 even
// though the wider Flotilla stack is still pinned to one thread.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace flotilla::sim {

struct StormConfig {
  int actors = 64;
  int steps = 100;
  int shards = 1;
  int threads = 1;
  Time lookahead = 0.0;        // engine window width; keep <= min_send_delay
  Time mean_period = 1.0e-3;   // mean inter-step delay per actor
  Time min_send_delay = 2.0e-3;
  double send_probability = 0.25;
  std::uint64_t seed = 42;
};

struct StormResult {
  std::uint64_t fingerprint = 0;  // FNV fold of per-actor hashes
  std::uint64_t events = 0;       // events processed by the engine
  Time makespan = 0.0;            // engine clock when the storm drained
};

// Runs the storm to completion on a fresh engine and returns the
// deterministic fingerprint. Invariant: for a fixed (seed, actors, steps,
// mean_period, min_send_delay, send_probability) the result is identical
// for every shards/threads/lookahead <= min_send_delay combination.
StormResult run_storm(const StormConfig& config);

}  // namespace flotilla::sim
