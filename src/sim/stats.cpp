#include "sim/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace flotilla::sim {

void Tally::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Tally::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double Tally::stddev() const { return std::sqrt(variance()); }

void TimeWeighted::set(Time t, double value) {
  if (!started_) {
    started_ = true;
    first_time_ = t;
    last_time_ = t;
    value_ = value;
    max_ = value;
    return;
  }
  FLOT_CHECK(t >= last_time_, "TimeWeighted updates must be ordered: ", t,
             " < ", last_time_);
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeighted::integral(Time t) const {
  if (!started_) return 0.0;
  FLOT_CHECK(t >= last_time_, "integral endpoint before last update");
  return integral_ + value_ * (t - last_time_);
}

double TimeWeighted::time_average(Time t) const {
  if (!started_ || t <= first_time_) return value_;
  return integral(t) / (t - first_time_);
}

void RateSeries::record(Time t, std::uint64_t count) {
  FLOT_CHECK(t >= 0.0, "negative event time ", t);
  const auto bin = static_cast<std::size_t>(t / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += count;
  total_ += count;
  first_ = std::min(first_, t);
  last_ = std::max(last_, t);
}

double RateSeries::peak_rate() const {
  std::uint64_t best = 0;
  for (const auto b : bins_) best = std::max(best, b);
  return static_cast<double>(best) / bin_width_;
}

double RateSeries::mean_nonzero_rate() const {
  std::uint64_t sum = 0;
  std::size_t nonzero = 0;
  for (const auto b : bins_) {
    if (b) {
      sum += b;
      ++nonzero;
    }
  }
  if (!nonzero) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(nonzero) / bin_width_;
}

double RateSeries::window_rate() const {
  if (total_ < 2 || last_ <= first_) return 0.0;
  return static_cast<double>(total_) / (last_ - first_);
}

}  // namespace flotilla::sim
