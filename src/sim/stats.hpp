// Statistics accumulators for simulation metrics.
//
//  - Tally: scalar samples (Welford mean/variance, min/max).
//  - TimeWeighted: a step function of virtual time, integrated exactly;
//    backs utilization and concurrency metrics.
//  - RateSeries: per-bin event counts over virtual time; backs throughput
//    (tasks/s) metrics. "Average rate" follows the paper's convention:
//    mean over *nonzero* bins; "peak" is the max bin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/engine.hpp"

namespace flotilla::sim {

class Tally {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class TimeWeighted {
 public:
  explicit TimeWeighted(double initial = 0.0) : value_(initial) {}

  // Records that the tracked quantity changed to `value` at time `t`.
  // Times must be non-decreasing.
  void set(Time t, double value);
  void add(Time t, double delta) { set(t, value_ + delta); }

  double value() const { return value_; }
  double max_value() const { return max_; }

  // Integral of the step function over [start, t]; `t` must be >= the last
  // update time.
  double integral(Time t) const;
  // Mean value over [t0, t]; t0 defaults to the first update time.
  double time_average(Time t) const;

  Time first_time() const { return first_time_; }
  Time last_time() const { return last_time_; }

 private:
  double value_;
  double max_ = -std::numeric_limits<double>::infinity();
  double integral_ = 0.0;
  Time first_time_ = 0.0;
  Time last_time_ = 0.0;
  bool started_ = false;
};

class RateSeries {
 public:
  explicit RateSeries(Time bin_width = 1.0) : bin_width_(bin_width) {}

  void record(Time t, std::uint64_t count = 1);

  std::uint64_t total() const { return total_; }
  Time bin_width() const { return bin_width_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }

  // Max events per bin, scaled to events/second.
  double peak_rate() const;
  // Mean rate over nonzero bins (paper convention for "avg throughput").
  double mean_nonzero_rate() const;
  // total / (last event time - first event time); 0 if fewer than 2 events.
  double window_rate() const;

  Time first_event() const { return first_; }
  Time last_event() const { return last_; }

 private:
  Time bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  Time first_ = kInfiniteTime;
  Time last_ = -kInfiniteTime;
};

}  // namespace flotilla::sim
