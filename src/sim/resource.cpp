#include "sim/resource.hpp"

#include "util/error.hpp"

namespace flotilla::sim {

Resource::Resource(Engine& engine, std::int64_t capacity)
    : engine_(engine), capacity_(capacity), available_(capacity) {
  FLOT_CHECK(capacity >= 0, "negative resource capacity ", capacity);
}

std::uint64_t Resource::acquire(std::int64_t amount, Granted granted) {
  FLOT_CHECK(amount >= 0, "negative acquire amount ", amount);
  FLOT_CHECK(amount <= capacity_, "acquire ", amount, " exceeds capacity ",
             capacity_);
  const std::uint64_t ticket = next_ticket_++;
  waiters_.push_back(Waiter{ticket, amount, std::move(granted)});
  grant_waiters();
  return ticket;
}

bool Resource::try_acquire(std::int64_t amount) {
  FLOT_CHECK(amount >= 0, "negative acquire amount ", amount);
  if (!waiters_.empty() || amount > available_) return false;
  available_ -= amount;
  return true;
}

void Resource::release(std::int64_t amount) {
  FLOT_CHECK(amount >= 0, "negative release amount ", amount);
  available_ += amount;
  FLOT_CHECK(available_ <= capacity_, "resource over-released: available ",
             available_, " > capacity ", capacity_);
  grant_waiters();
}

bool Resource::cancel_wait(std::uint64_t ticket) {
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->ticket == ticket) {
      waiters_.erase(it);
      // A cancellation at the head may unblock smaller requests behind it.
      grant_waiters();
      return true;
    }
  }
  return false;
}

void Resource::grant_waiters() {
  while (!waiters_.empty() && waiters_.front().amount <= available_) {
    Waiter waiter = std::move(waiters_.front());
    waiters_.pop_front();
    available_ -= waiter.amount;
    // Deliver through the event queue so grants never reenter caller code
    // mid-operation (CP.22: no unknown code under our own state mutation).
    engine_.in(0.0, std::move(waiter.granted));
  }
}

}  // namespace flotilla::sim
