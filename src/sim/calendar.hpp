// EventCalendar: one shard's slice of the simulation's event set.
//
// A calendar owns a (time, seq) min-heap plus the live-callback map that
// implements tombstone cancellation. The sequence numbers that break ties
// at equal times are assigned by the owner (sim::Engine): globally in
// single-shard mode (bit-identical to the historical engine) and per shard
// in sharded mode, so every calendar's pop order is deterministic without
// any cross-shard coordination.
//
// Threading contract: a calendar has exactly one owner at any instant —
// the engine's coordinator between drain rounds, or the one worker
// draining this shard during a round. It is never locked; the sharded
// engine's round barrier is what publishes calendar state between owners.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace flotilla::sim {

using Time = double;  // virtual seconds

inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();

using Callback = std::function<void()>;

class EventCalendar {
 public:
  struct Popped {
    Time time = 0.0;
    std::uint64_t seq = 0;
    Callback callback;
  };

  // Inserts an event; `seq` must be unique within this calendar and
  // strictly increasing between pushes at equal times (the owner's
  // counter guarantees both).
  void push(Time time, std::uint64_t seq, Callback callback) {
    heap_.push(Entry{time, seq});
    callbacks_.emplace(seq, std::move(callback));
  }

  // Tombstones a pending event; returns false if `seq` is unknown or
  // already fired.
  bool cancel(std::uint64_t seq) {
    const auto it = callbacks_.find(seq);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    return true;
  }

  // Virtual time of the earliest live event, or kInfiniteTime. Prunes
  // tombstones off the heap top, which is why this is genuinely
  // non-const: peeking compacts, it never changes observable state.
  Time next_time() {
    pop_cancelled();
    return heap_.empty() ? kInfiniteTime : heap_.top().time;
  }

  // Removes and returns the earliest live event; false when empty.
  bool pop(Popped* out) {
    pop_cancelled();
    if (heap_.empty()) return false;
    const Entry entry = heap_.top();
    heap_.pop();
    const auto it = callbacks_.find(entry.seq);
    out->time = entry.time;
    out->seq = entry.seq;
    out->callback = std::move(it->second);
    callbacks_.erase(it);
    return true;
  }

  bool empty() const { return callbacks_.empty(); }
  std::size_t live() const { return callbacks_.size(); }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    // Min-heap by (time, seq).
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void pop_cancelled() {
    while (!heap_.empty() &&
           callbacks_.find(heap_.top().seq) == callbacks_.end()) {
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace flotilla::sim
