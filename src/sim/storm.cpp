#include "sim/storm.hpp"

#include <bit>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "util/error.hpp"

namespace flotilla::sim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t time_bits(Time t) { return std::bit_cast<std::uint64_t>(t); }

// Cache-line aligned: actors are assigned to shards round-robin, so
// adjacent elements of the actor vector are mutated by different worker
// threads — without the alignment every event false-shares its
// neighbours' RNG state.
struct alignas(64) Actor {
  RngStream rng{0};
  std::uint64_t hash = kFnvOffset;
};

// Owns the actors and the engine for one storm run. Actor state is only
// ever touched by events on the actor's own shard (actor % shards), so
// nothing here needs a lock even under Config::threads > 1.
class Storm {
 public:
  explicit Storm(const StormConfig& config)
      : config_(config),
        engine_(Engine::Config{config.shards, config.threads,
                               config.lookahead}) {
    FLOT_CHECK(config_.actors > 0, "storm needs at least one actor");
    FLOT_CHECK(config_.steps > 0, "storm needs at least one step");
    FLOT_CHECK(config_.lookahead <= config_.min_send_delay,
               "storm lookahead ", config_.lookahead,
               " exceeds the cross-send delay floor ",
               config_.min_send_delay,
               " -- deliveries would clamp and the fingerprint would ",
               "depend on the shard count");
    actors_.reserve(static_cast<std::size_t>(config_.actors));
    for (int a = 0; a < config_.actors; ++a) {
      Actor actor;
      actor.rng.reseed(config_.seed ^
                       RngStream::hash("storm." + std::to_string(a)));
      actors_.push_back(std::move(actor));
    }
  }

  StormResult run() {
    for (int a = 0; a < config_.actors; ++a) {
      // First steps are staggered by actor-local draws so no two chains
      // ever share a timestamp.
      const Time t0 = actors_[static_cast<std::size_t>(a)].rng.exponential(
          config_.mean_period);
      engine_.at(shard_of(a), t0, [this, a] { step(a, 0); });
    }
    StormResult result;
    result.events = engine_.run();
    result.makespan = engine_.now();
    result.fingerprint = kFnvOffset;
    for (const Actor& actor : actors_) {
      result.fingerprint = mix(result.fingerprint, actor.hash);
    }
    return result;
  }

 private:
  ShardId shard_of(int actor) const {
    return static_cast<ShardId>(actor % config_.shards);
  }

  void step(int a, int s) {
    Actor& actor = actors_[static_cast<std::size_t>(a)];
    const Time now = engine_.now();
    actor.hash = mix(actor.hash, time_bits(now));
    actor.hash = mix(actor.hash, static_cast<std::uint64_t>(s));
    // Draws happen unconditionally and in a fixed order so the actor's
    // stream position depends only on its own step count.
    const Time next_delay = actor.rng.exponential(config_.mean_period);
    const bool send = actor.rng.bernoulli(config_.send_probability);
    const int target = static_cast<int>(
        actor.rng.uniform_int(0, config_.actors - 1));
    const Time send_delay =
        config_.min_send_delay + actor.rng.exponential(config_.mean_period);
    if (send) {
      engine_.at(shard_of(target), now + send_delay,
                 [this, a, target, stamp = time_bits(now)] {
                   Actor& receiver = actors_[static_cast<std::size_t>(target)];
                   receiver.hash = mix(receiver.hash,
                                       static_cast<std::uint64_t>(a));
                   receiver.hash = mix(receiver.hash, stamp);
                 });
    }
    if (s + 1 < config_.steps) {
      engine_.at(shard_of(a), now + next_delay,
                 [this, a, s] { step(a, s + 1); });
    }
  }

  StormConfig config_;
  std::vector<Actor> actors_;
  Engine engine_;  // declared last: destroyed (pool joined) before actors_
};

}  // namespace

StormResult run_storm(const StormConfig& config) {
  Storm storm(config);
  return storm.run();
}

}  // namespace flotilla::sim
