#include <gtest/gtest.h>

#include <set>

#include "core/flotilla.hpp"
#include "util/strfmt.hpp"
#include "workloads/impeccable.hpp"
#include "workloads/synthetic.hpp"

namespace flotilla::workloads {
namespace {

TEST(Synthetic, UniformTasksHaveRequestedShape) {
  const auto tasks = uniform_tasks(10, 180.0, 2,
                                   platform::TaskModality::kFunction, "dragon");
  ASSERT_EQ(tasks.size(), 10u);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.demand.cores, 2);
    EXPECT_DOUBLE_EQ(t.duration, 180.0);
    EXPECT_EQ(t.modality, platform::TaskModality::kFunction);
    EXPECT_EQ(t.backend_hint, "dragon");
  }
}

TEST(Synthetic, PaperTaskCountFormula) {
  // Table 1: n_nodes * cpn * 4; the srun experiment runs 896 tasks on 4
  // nodes (Fig 4).
  EXPECT_EQ(paper_task_count(4), 896);
  EXPECT_EQ(paper_task_count(1), 224);
  EXPECT_EQ(paper_task_count(1024), 229376);
}

TEST(Synthetic, MixedTasksAlternateModalities) {
  const auto tasks = mixed_tasks(6);
  int execs = 0, funcs = 0;
  for (const auto& t : tasks) {
    t.modality == platform::TaskModality::kExecutable ? ++execs : ++funcs;
  }
  EXPECT_EQ(execs, 3);
  EXPECT_EQ(funcs, 3);
}

TEST(ImpeccablePlan, MatchesTable1TaskCounts) {
  const auto plan256 = impeccable_plan(256);
  EXPECT_NEAR(plan256.total_tasks(), 550, 60);  // "~550"
  const auto plan1024 = impeccable_plan(1024);
  EXPECT_NEAR(plan1024.total_tasks(), 1800, 150);  // "~1800"
  // Adaptive: wider allocation, fatter iterations, fewer of them.
  EXPECT_GT(plan1024.tasks_per_iteration(),
            2 * plan256.tasks_per_iteration());
  EXPECT_LT(plan1024.iterations, plan256.iterations);
}

TEST(ImpeccablePlan, ResourceEnvelopesMatchPaper) {
  const auto plan = impeccable_plan(256);
  std::int64_t max_cores = 0, max_gpus_task = 0, total_gpus = 0;
  bool has_mpi = false, has_single_core_scale = false;
  for (const auto& stage : plan.per_iteration) {
    max_cores = std::max(max_cores, stage.cores);
    max_gpus_task = std::max(max_gpus_task, stage.gpus);
    total_gpus += stage.gpus * stage.tasks;
    if (stage.cores_per_node > 0) has_mpi = true;
    if (stage.cores <= 8) has_single_core_scale = true;
  }
  EXPECT_EQ(max_cores, 7168);  // Table 1: 1-7,168 cores per task
  EXPECT_TRUE(has_mpi);
  EXPECT_TRUE(has_single_core_scale);
  EXPECT_GE(total_gpus, 1024);  // Table 1: up to 1,024 GPUs in flight
  EXPECT_DOUBLE_EQ(plan.task_duration, 180.0);  // dummy sleep tasks
}

TEST(ImpeccableBuild, CreatesStagesWithFeedbackLoop) {
  core::Session session(platform::frontier_spec(), 64, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 64, .backends = {{"flux", 1}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow workflow(tmgr);

  auto plan = impeccable_plan(256);
  plan.iterations = 2;  // keep the test small
  build_impeccable(workflow, plan);
  EXPECT_EQ(workflow.stages_total(), 14u);  // 7 families x 2 iterations
  EXPECT_FALSE(workflow.started());
}

TEST(ImpeccableRun, SmallCampaignRunsToCompletionWithOrdering) {
  core::Session session(platform::frontier_spec(), 256, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 256, .backends = {{"flux", 1}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow workflow(tmgr);

  auto plan = impeccable_plan(256);
  plan.iterations = 3;
  plan.task_duration = 30.0;  // shrink the sleep for test speed
  build_impeccable(workflow, plan);

  std::vector<std::string> completed;
  workflow.on_stage_complete(
      [&](const std::string& s) { completed.push_back(s); });
  workflow.start();
  session.run();

  EXPECT_EQ(workflow.stages_completed(), workflow.stages_total());
  EXPECT_EQ(workflow.tasks_failed(), 0u);

  auto position = [&](const std::string& name) {
    for (std::size_t i = 0; i < completed.size(); ++i) {
      if (completed[i] == name) return static_cast<long>(i);
    }
    return -1L;
  };
  // Feedback ordering: train.N after dock.N, infer.N after train.N,
  // dock.N+1 after infer.N.
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(position(util::cat("dock.", i)),
              position(util::cat("train.", i)));
    EXPECT_LT(position(util::cat("train.", i)),
              position(util::cat("infer.", i)));
    if (i > 0) {
      EXPECT_LT(position(util::cat("infer.", i - 1)),
                position(util::cat("dock.", i)));
    }
  }
  // Utilization is meaningful: heterogeneous tasks kept cores busy.
  const auto& metrics = pilot.agent().profiler().metrics();
  EXPECT_GT(metrics.core_utilization(pilot.total_cores()), 0.2);
  EXPECT_GT(metrics.gpu_utilization(pilot.total_gpus()), 0.05);
}

TEST(ImpeccablePlan, RealismKnobsPropagateToTasks) {
  core::Session session(platform::frontier_spec(), 64, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 64, .backends = {{"flux", 1}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow workflow(tmgr);

  auto plan = impeccable_plan(256);
  plan.iterations = 1;
  plan.duration_cv = 0.3;
  plan.stage_in_mb = 64.0;
  plan.stage_out_mb = 32.0;
  plan.fail_probability = 0.05;
  build_impeccable(workflow, plan, 7);

  std::vector<double> durations;
  workflow.on_task([&](const core::Task& task) {
    durations.push_back(task.description().duration);
    EXPECT_DOUBLE_EQ(task.description().input_mb, 64.0);
    EXPECT_DOUBLE_EQ(task.description().output_mb, 32.0);
    EXPECT_DOUBLE_EQ(task.description().fail_probability, 0.05);
  });
  workflow.start();
  session.run();

  // Durations are jittered around 180 s, not constant.
  ASSERT_GT(durations.size(), 10u);
  double lo = 1e9, hi = 0, sum = 0;
  for (const double d : durations) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    sum += d;
  }
  EXPECT_LT(lo, hi - 10.0);  // genuine spread
  EXPECT_NEAR(sum / static_cast<double>(durations.size()), 180.0, 40.0);
}

TEST(ImpeccablePlan, DeterministicForSameSeed) {
  auto build_durations = [](std::uint64_t seed) {
    core::Session session(platform::frontier_spec(), 64, 42);
    core::PilotManager pmgr(session);
    auto& pilot = pmgr.submit({.nodes = 64, .backends = {{"flux", 1}}});
    pilot.launch([](bool, const std::string&) {});
    session.run(240.0);
    core::TaskManager tmgr(session, pilot.agent());
    core::Workflow workflow(tmgr);
    auto plan = impeccable_plan(256);
    plan.iterations = 1;
    plan.duration_cv = 0.4;
    plan.task_duration = 10.0;
    build_impeccable(workflow, plan, seed);
    std::vector<double> durations;
    workflow.on_task([&](const core::Task& task) {
      durations.push_back(task.description().duration);
    });
    workflow.start();
    session.run();
    return durations;
  };
  EXPECT_EQ(build_durations(5), build_durations(5));
  EXPECT_NE(build_durations(5), build_durations(6));
}

TEST(ImpeccablePlan, CoscheduledEsmacsFormsGangsThatStartTogether) {
  core::Session session(platform::frontier_spec(), 256, 42);
  core::PilotManager pmgr(session);
  auto& pilot = pmgr.submit({.nodes = 256, .backends = {{"flux", 1}}});
  pilot.launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
  session.run(240.0);
  core::TaskManager tmgr(session, pilot.agent());
  core::Workflow workflow(tmgr);
  auto plan = impeccable_plan(256);
  plan.iterations = 1;
  plan.task_duration = 30.0;
  plan.coscheduled_esmacs = true;
  build_impeccable(workflow, plan);

  std::vector<sim::Time> esmacs_starts;
  pilot.agent().on_task_start([&](const core::Task& task) {
    if (task.description().stage.rfind("esmacs", 0) == 0) {
      esmacs_starts.push_back(session.now());
    }
  });
  workflow.on_task([](const core::Task& task) {
    EXPECT_EQ(task.state(), core::TaskState::kDone);
  });
  workflow.start();
  session.run();
  ASSERT_EQ(esmacs_starts.size(), 3u);
  for (const auto t : esmacs_starts) {
    EXPECT_DOUBLE_EQ(t, esmacs_starts.front());  // gang-synchronized
  }
}

}  // namespace
}  // namespace flotilla::workloads
