#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dragon/dragon_backend.hpp"
#include "dragon/runtime.hpp"
#include "platform/calibration.hpp"
#include "platform/cluster.hpp"
#include "sim/stats.hpp"
#include "util/strfmt.hpp"

namespace flotilla::dragon {
namespace {

using platform::Cluster;
using platform::NodeRange;
using platform::TaskModality;
using platform::frontier_calibration;
using platform::frontier_spec;

platform::LaunchRequest make_task(int i, double duration, std::int64_t cores,
                                  TaskModality modality =
                                      TaskModality::kExecutable) {
  platform::LaunchRequest req;
  req.id = util::cat("task.", i);
  req.demand.cores = cores;
  req.duration = duration;
  req.modality = modality;
  return req;
}

struct Fixture {
  sim::Engine engine;
  Cluster cluster;
  DragonBackend backend;

  explicit Fixture(int nodes)
      : cluster(frontier_spec(), nodes),
        backend(engine, cluster, NodeRange{0, nodes},
                frontier_calibration().dragon, 42) {
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(30.0);
    EXPECT_TRUE(ready);
  }
};

TEST(DragonRuntime, BootstrapTakesAbout9Seconds) {
  Fixture fx(4);
  // Fig 7: ~9 s, roughly independent of node count.
  EXPECT_NEAR(fx.backend.bootstrap_duration(), 9.0, 2.5);
}

TEST(DragonBackend, AcceptsBothModalities) {
  Fixture fx(1);
  EXPECT_TRUE(fx.backend.accepts(TaskModality::kExecutable));
  EXPECT_TRUE(fx.backend.accepts(TaskModality::kFunction));
}

TEST(DragonBackend, ExecThroughputFlatSmallThenDropsAt64Nodes) {
  // Fig 5(c): 343/380/204 tasks/s at 4/16/64 nodes for executable tasks.
  auto rate_at = [](int nodes) {
    Fixture fx(nodes);
    sim::RateSeries starts(1.0);
    fx.backend.on_task_start(
        [&](const std::string&) { starts.record(fx.engine.now()); });
    fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
    const int n = 5000;
    for (int i = 0; i < n; ++i) fx.backend.submit(make_task(i, 0.0, 1));
    fx.engine.run();
    EXPECT_EQ(starts.total(), static_cast<std::uint64_t>(n));
    return starts.window_rate();
  };
  const double r4 = rate_at(4);
  const double r16 = rate_at(16);
  const double r64 = rate_at(64);
  EXPECT_NEAR(r4, 343.0, 60.0);
  EXPECT_NEAR(r16, 343.0, 70.0);  // flat-ish through 16 nodes
  EXPECT_NEAR(r64, 204.0, 50.0);  // centralized drag at 64 nodes
  EXPECT_LT(r64, 0.75 * r4);
}

TEST(DragonBackend, FunctionTasksDispatchFasterThanExec) {
  auto rate_for = [](TaskModality modality) {
    Fixture fx(16);
    sim::RateSeries starts(1.0);
    fx.backend.on_task_start(
        [&](const std::string&) { starts.record(fx.engine.now()); });
    fx.backend.on_task_complete([](const platform::LaunchOutcome&) {});
    for (int i = 0; i < 4000; ++i) {
      fx.backend.submit(make_task(i, 0.0, 1, modality));
    }
    fx.engine.run();
    return starts.window_rate();
  };
  const double exec = rate_for(TaskModality::kExecutable);
  const double func = rate_for(TaskModality::kFunction);
  EXPECT_GT(func, 1.5 * exec);
}

TEST(DragonBackend, TasksQueueWhenCapacityExhausted) {
  Fixture fx(1);  // 56 cores
  std::vector<sim::Time> starts;
  int done = 0;
  fx.backend.on_task_start(
      [&](const std::string&) { starts.push_back(fx.engine.now()); });
  fx.backend.on_task_complete(
      [&](const platform::LaunchOutcome&) { ++done; });
  for (int i = 0; i < 60; ++i) fx.backend.submit(make_task(i, 100.0, 1));
  fx.engine.run(50.0);
  EXPECT_EQ(starts.size(), 56u);  // node full; 4 tasks wait
  EXPECT_EQ(fx.backend.runtime().pending(), 4u);
  fx.engine.run();
  EXPECT_EQ(done, 60);
  // The waiters started only after the first wave released capacity.
  EXPECT_GE(starts[56], 100.0);
}

TEST(DragonBackend, StartupTimeoutFiresOnHungBootstrap) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 2);
  DragonBackend backend(engine, cluster, NodeRange{0, 2},
                        frontier_calibration().dragon, 42);
  backend.set_fail_bootstrap();
  bool ok = true;
  std::string error;
  backend.bootstrap([&](bool success, const std::string& e) {
    ok = success;
    error = e;
  });
  engine.run();
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("timed out"), std::string::npos);
  // The timeout fired at the calibrated startup deadline.
  EXPECT_NEAR(engine.now(), frontier_calibration().dragon.startup_timeout,
              1.0);
  EXPECT_FALSE(backend.healthy());
}

TEST(DragonBackend, CrashFailsInflightTasks) {
  Fixture fx(2);
  int ok = 0, failed = 0;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
  });
  for (int i = 0; i < 150; ++i) fx.backend.submit(make_task(i, 500.0, 1));
  fx.engine.run(100.0);
  fx.backend.crash();
  fx.engine.run();
  EXPECT_FALSE(fx.backend.healthy());
  EXPECT_EQ(ok + failed, 150);
  EXPECT_GT(failed, 0);
  EXPECT_EQ(fx.backend.inflight(), 0u);
  // Crashed runtime released all cores.
  EXPECT_EQ(fx.cluster.free_cores(NodeRange{0, 2}), 112);
}

TEST(DragonBackend, SubmitAfterCrashFailsFast) {
  Fixture fx(1);
  platform::LaunchOutcome last;
  fx.backend.on_task_complete(
      [&](const platform::LaunchOutcome& outcome) { last = outcome; });
  fx.backend.crash();
  fx.backend.submit(make_task(0, 1.0, 1));
  fx.engine.run();
  EXPECT_FALSE(last.success);
  EXPECT_EQ(fx.backend.inflight(), 0u);
}

TEST(DragonBackend, FailureInjectionReportsErrors) {
  Fixture fx(4);
  int ok = 0, failed = 0;
  fx.backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
  });
  for (int i = 0; i < 500; ++i) {
    auto req = make_task(i, 0.0, 1);
    req.fail_probability = 0.2;
    fx.backend.submit(req);
  }
  fx.engine.run();
  EXPECT_EQ(ok + failed, 500);
  EXPECT_NEAR(static_cast<double>(failed), 100.0, 45.0);
}

// ---------------------------------------------------- partitioned dragon

TEST(DragonPartitions, PartitionedRuntimesScaleExecThroughput) {
  // The paper's future work (§4.1.4): partitioning should lift the
  // centralized 64-node ceiling.
  auto rate_with = [](int partitions) {
    sim::Engine engine;
    Cluster cluster(frontier_spec(), 64);
    DragonBackend backend(engine, cluster, NodeRange{0, 64},
                          frontier_calibration().dragon, 42, partitions);
    bool ready = false;
    backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
    engine.run(30.0);
    EXPECT_TRUE(ready);
    sim::RateSeries starts(1.0);
    backend.on_task_start(
        [&](const std::string&) { starts.record(engine.now()); });
    backend.on_task_complete([](const platform::LaunchOutcome&) {});
    for (int i = 0; i < 8000; ++i) backend.submit(make_task(i, 0.0, 1));
    engine.run();
    return starts.window_rate();
  };
  const double one = rate_with(1);
  const double eight = rate_with(8);
  EXPECT_NEAR(one, 204.0, 50.0);  // Fig 5c centralized ceiling
  EXPECT_GT(eight, 3.0 * one);    // partitioning restores scaling
}

TEST(DragonPartitions, RoundRobinSpreadsLoad) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 8);
  DragonBackend backend(engine, cluster, NodeRange{0, 8},
                        frontier_calibration().dragon, 42, 4);
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run(30.0);
  ASSERT_TRUE(ready);
  backend.on_task_complete([](const platform::LaunchOutcome&) {});
  for (int i = 0; i < 400; ++i) backend.submit(make_task(i, 0.0, 1));
  engine.run();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(backend.runtime(i).completed()), 100.0,
                1.0);
  }
}

TEST(DragonPartitions, InstanceCrashIsIsolated) {
  sim::Engine engine;
  Cluster cluster(frontier_spec(), 8);
  DragonBackend backend(engine, cluster, NodeRange{0, 8},
                        frontier_calibration().dragon, 42, 2);
  bool ready = false;
  backend.bootstrap([&](bool ok, const std::string&) { ready = ok; });
  engine.run(30.0);
  ASSERT_TRUE(ready);
  int ok = 0, failed = 0;
  backend.on_task_complete([&](const platform::LaunchOutcome& outcome) {
    outcome.success ? ++ok : ++failed;
  });
  for (int i = 0; i < 10; ++i) backend.submit(make_task(i, 500.0, 1));
  engine.run(engine.now() + 100.0);
  backend.crash("power fault", 0);
  EXPECT_TRUE(backend.healthy());  // the second runtime survives
  engine.run();
  EXPECT_EQ(ok + failed, 10);
  EXPECT_EQ(failed, 5);  // round-robin put half on the crashed runtime
  // Oversized tasks are rejected cleanly when no partition fits them.
  backend.submit(make_task(99, 1.0, 8 * 56));
  engine.run();
  EXPECT_EQ(failed, 6);
}

}  // namespace
}  // namespace flotilla::dragon
