// Service-mode ingress tests (docs/ingress.md): arrival determinism,
// intake batching, admission edge cases, and the conservation-under-
// rejection invariant the fuzz harness checks at scale.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flotilla.hpp"
#include "ingress/ingress.hpp"
#include "util/error.hpp"

namespace flotilla::ingress {
namespace {

using platform::frontier_spec;

// ---------------------------------------------------------------- arrivals

TEST(ArrivalProcess, PoissonGapsAreDeterministicAndPositive) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.rate = 500.0;
  ArrivalProcess a(config, 7), b(config, 7);
  double mean = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double gap = a.next_gap(0.0);
    EXPECT_GT(gap, 0.0);
    EXPECT_DOUBLE_EQ(gap, b.next_gap(0.0));
    mean += gap;
  }
  mean /= 2000.0;
  // Mean inter-arrival of a Poisson stream at rate R is 1/R.
  EXPECT_NEAR(mean, 1.0 / config.rate, 0.2 / config.rate);
}

TEST(ArrivalProcess, DiurnalLongRunRateTracksTheConfiguredAverage) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kDiurnal;
  config.rate = 200.0;
  ArrivalProcess a(config, 11);
  // Integrate over many whole periods: the sinusoid averages out, so the
  // arrival count over T approaches rate * T.
  double t = 0.0;
  int n = 0;
  while (t < 10.0 * config.diurnal_period) {
    t += a.next_gap(t);
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n) / t, config.rate, 0.05 * config.rate);
}

TEST(ArrivalProcess, BurstyLongRunRateTracksTheConfiguredAverage) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.rate = 300.0;
  ArrivalProcess a(config, 13);
  double t = 0.0;
  int n = 0;
  while (n < 60000) {
    t += a.next_gap(t);
    ++n;
  }
  EXPECT_NEAR(static_cast<double>(n) / t, config.rate, 0.08 * config.rate);
}

TEST(ArrivalProcess, ClosedLoopHasNoGapProcess) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kClosed;
  EXPECT_THROW(ArrivalProcess(config, 1), util::Error);
}

TEST(ArrivalConfig, TokenRoundTrip) {
  auto c = ArrivalConfig::parse("bursty:750.5");
  EXPECT_EQ(c.kind, ArrivalKind::kBursty);
  EXPECT_DOUBLE_EQ(c.rate, 750.5);
  EXPECT_EQ(ArrivalConfig::parse(c.to_string()).rate, c.rate);
  auto closed = ArrivalConfig::parse("closed:0.125");
  EXPECT_DOUBLE_EQ(closed.think, 0.125);
  EXPECT_THROW(ArrivalConfig::parse("weibull:3"), util::Error);
  EXPECT_THROW(ArrivalConfig::parse("poisson:-5"), util::Error);
}

TEST(AdmitConfig, TokenRoundTrip) {
  auto c = AdmitConfig::parse("defer:32");
  EXPECT_EQ(c.policy, AdmitPolicy::kDefer);
  EXPECT_EQ(c.capacity, 32u);
  EXPECT_EQ(AdmitConfig::parse(c.to_string()).capacity, c.capacity);
  EXPECT_THROW(AdmitConfig::parse("drop:1"), util::Error);
  EXPECT_THROW(AdmitConfig::parse("reject:-1"), util::Error);
}

// ------------------------------------------------------------ full stack

struct IngressFixture {
  core::Session session;
  core::PilotManager pmgr;
  core::Pilot* pilot = nullptr;
  std::unique_ptr<core::TaskManager> tmgr;
  std::unique_ptr<IngressService> svc;

  explicit IngressFixture(int nodes = 4, std::uint64_t seed = 42,
                          int shards = 1)
      : session(frontier_spec(), nodes, seed,
                platform::frontier_calibration(), shards),
        pmgr(session) {
    core::PilotDescription pd;
    pd.nodes = nodes;
    pd.backends = {{"dragon"}};
    pilot = &pmgr.submit(std::move(pd));
    bool ok = false;
    pilot->launch([&](bool success, const std::string&) { ok = success; });
    session.run(240.0);
    EXPECT_TRUE(ok);
    tmgr = std::make_unique<core::TaskManager>(session, pilot->agent());
  }

  void start(IngressConfig config, int tasks) {
    config.total_offers = tasks;
    svc = std::make_unique<IngressService>(session, *tmgr, config);
    core::TaskDescription proto;
    proto.demand.cores = 1;
    svc->start({proto});
    session.run();
  }
};

TEST(IngressService, OpenLoopDeliversEveryOfferWithAmpleCapacity) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 1000;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 400.0;
  fx.start(config, 200);

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.offered, 200u);
  EXPECT_EQ(stats.accepted, 200u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(fx.tmgr->submitted(), 200u);
  EXPECT_EQ(stats.launched, 200u);
  EXPECT_EQ(stats.completed, 200u);
  EXPECT_TRUE(fx.svc->quiescent());
  // Batching amortized: fewer intake transactions than tasks, none above
  // the configured maximum.
  EXPECT_LT(stats.batches, stats.accepted);
  EXPECT_LE(stats.max_batch, config.batch.max_batch);
  EXPECT_EQ(stats.batched_tasks, stats.accepted);
  // Every accepted task recorded a submit->launch sample.
  EXPECT_EQ(fx.svc->submit_to_launch().count(), 200u);
}

TEST(IngressService, ZeroCapacityRejectsEverythingExactlyOnce) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 8;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 1000.0;
  config.admit.capacity = 0;
  fx.start(config, 150);

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.offered, 150u);
  EXPECT_EQ(stats.rejected, 150u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(fx.tmgr->submitted(), 0u);
  EXPECT_EQ(fx.svc->submit_to_launch().count(), 0u);
  EXPECT_TRUE(fx.svc->quiescent());
}

TEST(IngressService, ZeroCapacityDeferExhaustsItsRetryBudgetThenRejects) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 4;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 500.0;
  config.admit.policy = AdmitPolicy::kDefer;
  config.admit.capacity = 0;
  fx.start(config, 40);

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  // Every fresh request is deferred max_defers times, then rejected: the
  // offer count is fresh * (max_defers + 1), with one terminal verdict
  // (reject) per fresh request and zero accepts.
  const auto fresh = 40u;
  const auto retries =
      static_cast<std::uint64_t>(config.admit.max_defers);
  EXPECT_EQ(stats.offered, fresh * (retries + 1));
  EXPECT_EQ(stats.deferred, fresh * retries);
  EXPECT_EQ(stats.rejected, fresh);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(fx.tmgr->submitted(), 0u);
  EXPECT_TRUE(fx.svc->quiescent());
}

TEST(IngressService, TightCapacityUnderBurstRejectsButConserves) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 100;
  config.arrival.kind = ArrivalKind::kBursty;
  config.arrival.rate = 2000.0;
  config.admit.capacity = 4;
  fx.start(config, 400);

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.offered, 400u);
  EXPECT_GT(stats.rejected, 0u);  // saturation must actually bite
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_EQ(stats.accepted, fx.tmgr->submitted());
  EXPECT_TRUE(fx.svc->quiescent());
}

TEST(IngressService, ClosedLoopClientsHonorTheirInFlightBound) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 12;
  config.arrival.kind = ArrivalKind::kClosed;
  config.arrival.think = 0.05;
  config.in_flight_limit = 2;
  fx.start(config, 120);

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.offered, 120u);
  EXPECT_LE(stats.max_client_in_flight,
            static_cast<std::size_t>(config.in_flight_limit));
  EXPECT_EQ(stats.accepted, fx.tmgr->submitted());
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_TRUE(fx.svc->quiescent());
}

TEST(IngressService, ClosedLoopRejectedClientsRetryWithFreshOffers) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 6;
  config.arrival.kind = ArrivalKind::kClosed;
  config.arrival.think = 0.01;
  config.admit.capacity = 0;  // reject everything; clients keep retrying
  fx.start(config, 60);

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.offered, 60u);
  EXPECT_EQ(stats.rejected, 60u);
  EXPECT_EQ(fx.tmgr->submitted(), 0u);
  EXPECT_TRUE(fx.svc->quiescent());
}

// Deterministic backpressure-release ordering under a partitioned engine:
// the accepted-uid sequence and the ingress counters must be identical
// for shards=1 and shards>1 (the defer timers and batch flushes all live
// on the control shard).
TEST(IngressService, DeferReleaseOrderingIsShardInvariant) {
  std::vector<std::string> uid_sequences[2];
  std::uint64_t offered[2] = {0, 0};
  const int shard_counts[2] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    IngressFixture fx(4, 42, shard_counts[i]);
    IngressConfig config;
    config.clients = 50;
    config.arrival.kind = ArrivalKind::kPoisson;
    config.arrival.rate = 3000.0;  // saturate the small intake bound
    config.admit.policy = AdmitPolicy::kDefer;
    config.admit.capacity = 8;
    fx.start(config, 300);
    const auto stats = fx.svc->stats();
    EXPECT_TRUE(stats.conserved());
    EXPECT_GT(stats.deferred, 0u);  // backpressure must actually engage
    uid_sequences[i] = fx.svc->accepted_uids();
    offered[i] = stats.offered;
  }
  EXPECT_EQ(offered[0], offered[1]);
  EXPECT_EQ(uid_sequences[0], uid_sequences[1]);
}

TEST(IngressService, SameSeedRunsAreIdenticalDifferentSeedsDiverge) {
  std::ostringstream fingerprints[3];
  const std::uint64_t seeds[3] = {42, 42, 43};
  for (int i = 0; i < 3; ++i) {
    IngressFixture fx(4, seeds[i]);
    IngressConfig config;
    config.clients = 64;
    config.arrival.kind = ArrivalKind::kDiurnal;
    config.arrival.rate = 600.0;
    config.admit.capacity = 16;
    fx.start(config, 250);
    const auto stats = fx.svc->stats();
    fingerprints[i] << stats.offered << "|" << stats.accepted << "|"
                    << stats.rejected << "|" << stats.deferred << "|"
                    << stats.batches << "|"
                    << fx.svc->submit_to_launch().percentile(0.99) << "|";
    for (const auto& uid : fx.svc->accepted_uids()) {
      fingerprints[i] << uid << ",";
    }
  }
  EXPECT_EQ(fingerprints[0].str(), fingerprints[1].str());
  EXPECT_NE(fingerprints[0].str(), fingerprints[2].str());
}

TEST(IngressService, MillionClientOpenLoopIsCheapAndConserved) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 1000000;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 2000.0;
  fx.start(config, 500);  // population size, not offer count, is 10^6

  const auto stats = fx.svc->stats();
  EXPECT_TRUE(stats.conserved());
  EXPECT_EQ(stats.offered, 500u);
  EXPECT_EQ(stats.accepted, fx.tmgr->submitted());
  EXPECT_TRUE(fx.svc->quiescent());
}

TEST(IngressService, StartValidatesItsArguments) {
  IngressFixture fx;
  IngressConfig config;
  config.clients = 1;
  config.total_offers = 10;
  IngressService svc(fx.session, *fx.tmgr, config);
  EXPECT_THROW(svc.start({}), util::Error);
  core::TaskDescription proto;
  svc.start({proto});
  EXPECT_THROW(svc.start({proto}), util::Error);
}

// ----------------------------------------------------------- batch intake

TEST(TaskManagerBatch, SubmitBatchDeliversInOrderWithOneIntakeCost) {
  IngressFixture fx;
  std::vector<core::TaskDescription> batch(10);
  for (auto& d : batch) d.demand.cores = 1;
  const auto uids = fx.tmgr->submit_batch(batch);
  EXPECT_EQ(uids.size(), 10u);
  EXPECT_EQ(fx.tmgr->submitted(), 10u);
  EXPECT_GE(fx.tmgr->intake_backlog(), 1u);  // one transaction in service
  fx.session.run();
  EXPECT_EQ(fx.tmgr->finished(), 10u);
  for (const auto& uid : uids) {
    EXPECT_EQ(fx.tmgr->task(uid).state(), core::TaskState::kDone);
  }
  EXPECT_EQ(fx.tmgr->submit_batch({}).size(), 0u);
}

}  // namespace
}  // namespace flotilla::ingress
