// Agent routing edge cases and process-pool reentrancy.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <string>

#include "core/flotilla.hpp"
#include "local/process_pool.hpp"

namespace flotilla {
namespace {

struct AgentFixture {
  core::Session session{platform::frontier_spec(), 4, 42};
  core::PilotManager pmgr{session};
  core::Pilot* pilot = nullptr;
  std::unique_ptr<core::TaskManager> tmgr;

  AgentFixture() {
    pilot = &pmgr.submit(
        {.nodes = 4,
         .backends = {{.type = "flux", .partitions = 1, .nodes = 2},
                      {.type = "dragon", .nodes = 2}}});
    pilot->launch([](bool ok, const std::string&) { EXPECT_TRUE(ok); });
    session.run(240.0);
    tmgr = std::make_unique<core::TaskManager>(session, pilot->agent());
  }
};

TEST(AgentEdge, TypoHintFallsBackToCompatibleBackend) {
  AgentFixture fx;
  std::string backend_used;
  core::TaskState final_state = core::TaskState::kNew;
  fx.tmgr->on_complete([&](const core::Task& task) {
    backend_used = task.backend();
    final_state = task.state();
  });
  core::TaskDescription desc;
  desc.demand.cores = 1;
  desc.backend_hint = "fluxx";  // typo: no such backend
  fx.tmgr->submit(std::move(desc));
  fx.session.run();
  EXPECT_EQ(final_state, core::TaskState::kDone);
  EXPECT_EQ(backend_used, "flux");  // first compatible wins
}

TEST(AgentEdge, SubmitBurstDuringBackendCrashIsFullyAccounted) {
  AgentFixture fx;
  int finals = 0;
  fx.tmgr->on_complete([&](const core::Task&) { ++finals; });
  // Crash dragon right after a function-task burst heads its way.
  for (int i = 0; i < 100; ++i) {
    core::TaskDescription desc;
    desc.demand.cores = 1;
    desc.duration = 50.0;
    desc.modality = platform::TaskModality::kFunction;
    desc.max_retries = 1;
    fx.tmgr->submit(std::move(desc));
  }
  fx.session.run(fx.session.now() + 10.0);
  fx.pilot->agent().backend("dragon")->shutdown();
  fx.session.run();
  // Every task reached a final state exactly once (no lost or duplicated
  // completions), even though the only function-capable backend died.
  EXPECT_EQ(finals, 100);
  EXPECT_EQ(fx.tmgr->finished(), 100u);
}

TEST(AgentEdge, ZeroCoreTaskRunsToCompletion) {
  AgentFixture fx;
  core::TaskState final_state = core::TaskState::kNew;
  fx.tmgr->on_complete(
      [&](const core::Task& task) { final_state = task.state(); });
  core::TaskDescription desc;
  desc.demand.cores = 0;  // pure control task
  desc.duration = 1.0;
  fx.tmgr->submit(std::move(desc));
  fx.session.run();
  EXPECT_EQ(final_state, core::TaskState::kDone);
}

TEST(ProcessPoolEdge, CompletionCallbackCanSpawnFollowUps) {
  local::ProcessPool pool(2);
  std::atomic<int> chain{0};
  std::function<void(const local::ProcessResult&)> next =
      [&](const local::ProcessResult& r) {
        EXPECT_TRUE(r.success());
        if (chain.fetch_add(1) + 1 < 5) {
          pool.spawn({"/bin/true"}, next);
        }
      };
  pool.spawn({"/bin/true"}, next);
  // wait_all must observe work spawned from reaper-thread callbacks.
  while (chain.load() < 5) {
    pool.wait_all();
  }
  EXPECT_EQ(chain.load(), 5);
  EXPECT_EQ(pool.completed(), 5u);
}

}  // namespace
}  // namespace flotilla
